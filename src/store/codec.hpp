// Versioned text codecs for store payloads (docs/MODEL.md §15).
//
// Profiles and tier estimates round-trip bit-exactly: every double is
// serialized as a C99 hex-float ("%a"), which strtod parses back to the
// identical bit pattern, and every counter as a decimal integer. Encoding
// the decode of an entry reproduces the original payload byte for byte —
// the property the restart-reproducibility tests assert.
//
// Decoders are total: any malformed payload returns an empty result
// instead of throwing, so a damaged store entry degrades to a cache miss.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "apps/app.hpp"
#include "tiers/analytic.hpp"

namespace hybridic::store {

/// Serialize everything downstream consumers read from a profiled app:
/// the profile snapshot (graph, footprints, call order), calibration,
/// environment, and verification outcome.
[[nodiscard]] std::string encode_profile(const apps::ProfiledApp& app);

/// Rebuild a profiled app (profiler restored via
/// QuadProfiler::from_snapshot); nullptr when the payload is malformed.
[[nodiscard]] std::shared_ptr<const apps::ProfiledApp> decode_profile(
    const std::string& payload);

[[nodiscard]] std::string encode_estimate(const tiers::TierEstimate& e);

/// nullopt when the payload is malformed.
[[nodiscard]] std::optional<tiers::TierEstimate> decode_estimate(
    const std::string& payload);

/// Bit-exact double formatting ("%a" hex-float) shared by the codecs.
[[nodiscard]] std::string hexf(double value);

}  // namespace hybridic::store
