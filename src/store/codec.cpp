#include "store/codec.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hybridic::store {

namespace {

constexpr const char* kProfileMagic = "profile 1";
constexpr const char* kEstimateMagic = "estimate 2";

/// Sequential line/token reader over a payload. Every take_* returns
/// false on any shape violation; callers bail out to "malformed".
class Reader {
public:
  explicit Reader(const std::string& text) : text_(text) {}

  bool take_line(std::string& line) {
    const std::size_t nl = text_.find('\n', pos_);
    if (nl == std::string::npos) {
      return false;
    }
    line.assign(text_, pos_, nl - pos_);
    pos_ = nl + 1;
    return true;
  }

  /// A line "<tag> <rest>"; fails unless the tag matches.
  bool take_tagged(const std::string& tag, std::string& rest) {
    std::string line;
    if (!take_line(line) || line.rfind(tag + " ", 0) != 0) {
      return false;
    }
    rest = line.substr(tag.size() + 1);
    return true;
  }

  bool take_exact(const std::string& expected) {
    std::string line;
    return take_line(line) && line == expected;
  }

  /// "<tag> <len>" line followed by exactly len raw bytes and a newline.
  bool take_sized(const std::string& tag, std::string& value) {
    std::string rest;
    std::uint64_t len = 0;
    if (!take_tagged(tag, rest) || !parse_u64(rest, len)) {
      return false;
    }
    if (pos_ + len + 1 > text_.size() || text_[pos_ + len] != '\n') {
      return false;
    }
    value.assign(text_, pos_, len);
    pos_ += len + 1;
    return true;
  }

  [[nodiscard]] bool at_end() const { return pos_ == text_.size(); }

  static bool parse_u64(const std::string& text, std::uint64_t& value) {
    if (text.empty()) {
      return false;
    }
    value = 0;
    for (const char c : text) {
      if (c < '0' || c > '9') {
        return false;
      }
      if (value > (UINT64_MAX - static_cast<std::uint64_t>(c - '0')) / 10) {
        return false;
      }
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
  }

  static bool parse_double(const std::string& text, double& value) {
    if (text.empty()) {
      return false;
    }
    char* end = nullptr;
    value = std::strtod(text.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Split a space-separated line into fields (no empty fields allowed).
std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t sp = line.find(' ', pos);
    const std::size_t end = sp == std::string::npos ? line.size() : sp;
    if (end == pos) {
      return {};  // Empty field — malformed.
    }
    fields.push_back(line.substr(pos, end - pos));
    pos = end + (sp == std::string::npos ? 0 : 1);
    if (sp != std::string::npos && pos == line.size()) {
      return {};  // Trailing space.
    }
  }
  return fields;
}

bool parse_bool(const std::string& text, bool& value) {
  if (text == "0") {
    value = false;
    return true;
  }
  if (text == "1") {
    value = true;
    return true;
  }
  return false;
}

}  // namespace

std::string hexf(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return std::string{buf};
}

std::string encode_profile(const apps::ProfiledApp& app) {
  const prof::ProfileSnapshot snap = app.profiler->snapshot();
  std::ostringstream out;
  out << kProfileMagic << '\n';
  out << "name " << app.name.size() << '\n' << app.name << '\n';
  out << "verified " << (app.verified ? 1 : 0) << '\n';
  out << "note " << app.verification_note.size() << '\n'
      << app.verification_note << '\n';
  out << "env " << app.environment.base_infrastructure.luts << ' '
      << app.environment.base_infrastructure.regs << ' '
      << hexf(app.environment.power.static_watts) << ' '
      << hexf(app.environment.power.watts_per_kilo_lut) << ' '
      << hexf(app.environment.power.watts_per_kilo_reg) << '\n';
  out << "functions " << snap.functions.size() << '\n';
  for (const prof::ProfileSnapshot::Function& fn : snap.functions) {
    out << "fn " << fn.name.size() << '\n' << fn.name << '\n';
    out << fn.work_units << ' ' << fn.reads << ' ' << fn.writes << ' '
        << fn.calls << ' ' << fn.unique_bytes_read << ' '
        << fn.unique_bytes_written << '\n';
  }
  out << "edges " << snap.edges.size() << '\n';
  for (const prof::ProfileSnapshot::Edge& edge : snap.edges) {
    out << edge.producer << ' ' << edge.consumer << ' ' << edge.bytes << ' '
        << edge.unique_addresses << '\n';
  }
  out << "order " << snap.call_order.size() << '\n';
  for (const prof::FunctionId id : snap.call_order) {
    out << "o " << id << '\n';
  }
  out << "calibration " << app.calibration.size() << '\n';
  for (const sys::CalibrationEntry& cal : app.calibration) {
    out << "cal " << cal.function.size() << '\n' << cal.function << '\n';
    out << hexf(cal.host_cycles_per_work_unit) << ' '
        << hexf(cal.kernel_cycles_per_work_unit) << ' ' << cal.area_luts
        << ' ' << cal.area_regs << ' ' << (cal.is_kernel ? 1 : 0) << ' '
        << (cal.duplicable ? 1 : 0) << ' ' << (cal.streaming ? 1 : 0)
        << '\n';
  }
  return out.str();
}

std::shared_ptr<const apps::ProfiledApp> decode_profile(
    const std::string& payload) {
  Reader reader{payload};
  if (!reader.take_exact(kProfileMagic)) {
    return nullptr;
  }
  apps::ProfiledApp app;
  std::string rest;
  if (!reader.take_sized("name", app.name)) {
    return nullptr;
  }
  bool verified = false;
  if (!reader.take_tagged("verified", rest) ||
      !parse_bool(rest, verified)) {
    return nullptr;
  }
  app.verified = verified;
  if (!reader.take_sized("note", app.verification_note)) {
    return nullptr;
  }
  if (!reader.take_tagged("env", rest)) {
    return nullptr;
  }
  {
    const auto fields = split_fields(rest);
    if (fields.size() != 5 ||
        !Reader::parse_u64(fields[0],
                           app.environment.base_infrastructure.luts) ||
        !Reader::parse_u64(fields[1],
                           app.environment.base_infrastructure.regs) ||
        !Reader::parse_double(fields[2],
                              app.environment.power.static_watts) ||
        !Reader::parse_double(fields[3],
                              app.environment.power.watts_per_kilo_lut) ||
        !Reader::parse_double(fields[4],
                              app.environment.power.watts_per_kilo_reg)) {
      return nullptr;
    }
  }

  prof::ProfileSnapshot snap;
  std::uint64_t count = 0;
  if (!reader.take_tagged("functions", rest) ||
      !Reader::parse_u64(rest, count) || count > 1'000'000) {
    return nullptr;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    prof::ProfileSnapshot::Function fn;
    if (!reader.take_sized("fn", fn.name) || !reader.take_line(rest)) {
      return nullptr;
    }
    const auto fields = split_fields(rest);
    if (fields.size() != 6 || !Reader::parse_u64(fields[0], fn.work_units) ||
        !Reader::parse_u64(fields[1], fn.reads) ||
        !Reader::parse_u64(fields[2], fn.writes) ||
        !Reader::parse_u64(fields[3], fn.calls) ||
        !Reader::parse_u64(fields[4], fn.unique_bytes_read) ||
        !Reader::parse_u64(fields[5], fn.unique_bytes_written)) {
      return nullptr;
    }
    snap.functions.push_back(std::move(fn));
  }
  if (!reader.take_tagged("edges", rest) ||
      !Reader::parse_u64(rest, count) || count > 100'000'000) {
    return nullptr;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    prof::ProfileSnapshot::Edge edge;
    std::uint64_t producer = 0;
    std::uint64_t consumer = 0;
    if (!reader.take_line(rest)) {
      return nullptr;
    }
    const auto fields = split_fields(rest);
    if (fields.size() != 4 || !Reader::parse_u64(fields[0], producer) ||
        !Reader::parse_u64(fields[1], consumer) ||
        !Reader::parse_u64(fields[2], edge.bytes) ||
        !Reader::parse_u64(fields[3], edge.unique_addresses) ||
        producer >= snap.functions.size() ||
        consumer >= snap.functions.size()) {
      return nullptr;
    }
    edge.producer = static_cast<prof::FunctionId>(producer);
    edge.consumer = static_cast<prof::FunctionId>(consumer);
    snap.edges.push_back(edge);
  }
  if (!reader.take_tagged("order", rest) ||
      !Reader::parse_u64(rest, count) || count > snap.functions.size()) {
    return nullptr;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    if (!reader.take_tagged("o", rest) || !Reader::parse_u64(rest, id) ||
        id >= snap.functions.size()) {
      return nullptr;
    }
    snap.call_order.push_back(static_cast<prof::FunctionId>(id));
  }
  if (!reader.take_tagged("calibration", rest) ||
      !Reader::parse_u64(rest, count) || count > 1'000'000) {
    return nullptr;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    sys::CalibrationEntry cal;
    if (!reader.take_sized("cal", cal.function) ||
        !reader.take_line(rest)) {
      return nullptr;
    }
    const auto fields = split_fields(rest);
    std::uint64_t luts = 0;
    std::uint64_t regs = 0;
    if (fields.size() != 7 ||
        !Reader::parse_double(fields[0], cal.host_cycles_per_work_unit) ||
        !Reader::parse_double(fields[1], cal.kernel_cycles_per_work_unit) ||
        !Reader::parse_u64(fields[2], luts) ||
        !Reader::parse_u64(fields[3], regs) ||
        !parse_bool(fields[4], cal.is_kernel) ||
        !parse_bool(fields[5], cal.duplicable) ||
        !parse_bool(fields[6], cal.streaming) || luts > UINT32_MAX ||
        regs > UINT32_MAX) {
      return nullptr;
    }
    cal.area_luts = static_cast<std::uint32_t>(luts);
    cal.area_regs = static_cast<std::uint32_t>(regs);
    app.calibration.push_back(std::move(cal));
  }
  if (!reader.at_end()) {
    return nullptr;  // Trailing garbage: treat as damage.
  }
  try {
    app.profiler = prof::QuadProfiler::from_snapshot(snap);
  } catch (...) {
    return nullptr;  // Inconsistent snapshot (e.g. duplicate names).
  }
  return std::make_shared<const apps::ProfiledApp>(std::move(app));
}

std::string encode_estimate(const tiers::TierEstimate& e) {
  std::ostringstream out;
  out << kEstimateMagic << '\n';
  out << "tag " << e.solution_tag.size() << '\n' << e.solution_tag << '\n';
  out << "theta " << hexf(e.theta_seconds_per_byte) << '\n';
  out << "baseline " << hexf(e.baseline_kernel_seconds) << '\n';
  out << "designed " << hexf(e.designed_kernel_seconds) << '\n';
  out << "band " << hexf(e.designed_lower_seconds) << ' '
      << hexf(e.designed_upper_seconds) << ' '
      << hexf(e.baseline_lower_seconds) << ' '
      << hexf(e.baseline_upper_seconds) << '\n';
  out << "noc " << e.noc_edges << ' ' << e.noc_volume_bytes << ' '
      << e.noc_hop_bytes << ' ' << e.noc_max_link_bytes << '\n';
  out << "noct " << hexf(e.noc_transfer_seconds) << '\n';
  out << "iboard " << e.inter_board_edges << ' ' << e.inter_board_bytes
      << ' ' << e.inter_board_hop_bytes << '\n';
  out << "iboardt " << hexf(e.inter_board_seconds) << '\n';
  out << "ckey " << e.congruence_key << '\n';
  return out.str();
}

std::optional<tiers::TierEstimate> decode_estimate(
    const std::string& payload) {
  Reader reader{payload};
  if (!reader.take_exact(kEstimateMagic)) {
    return std::nullopt;
  }
  tiers::TierEstimate e;
  std::string rest;
  if (!reader.take_sized("tag", e.solution_tag) ||
      !reader.take_tagged("theta", rest) ||
      !Reader::parse_double(rest, e.theta_seconds_per_byte) ||
      !reader.take_tagged("baseline", rest) ||
      !Reader::parse_double(rest, e.baseline_kernel_seconds) ||
      !reader.take_tagged("designed", rest) ||
      !Reader::parse_double(rest, e.designed_kernel_seconds)) {
    return std::nullopt;
  }
  if (!reader.take_tagged("band", rest)) {
    return std::nullopt;
  }
  {
    const auto fields = split_fields(rest);
    if (fields.size() != 4 ||
        !Reader::parse_double(fields[0], e.designed_lower_seconds) ||
        !Reader::parse_double(fields[1], e.designed_upper_seconds) ||
        !Reader::parse_double(fields[2], e.baseline_lower_seconds) ||
        !Reader::parse_double(fields[3], e.baseline_upper_seconds)) {
      return std::nullopt;
    }
  }
  if (!reader.take_tagged("noc", rest)) {
    return std::nullopt;
  }
  {
    const auto fields = split_fields(rest);
    if (fields.size() != 4 ||
        !Reader::parse_u64(fields[0], e.noc_edges) ||
        !Reader::parse_u64(fields[1], e.noc_volume_bytes) ||
        !Reader::parse_u64(fields[2], e.noc_hop_bytes) ||
        !Reader::parse_u64(fields[3], e.noc_max_link_bytes)) {
      return std::nullopt;
    }
  }
  if (!reader.take_tagged("noct", rest) ||
      !Reader::parse_double(rest, e.noc_transfer_seconds)) {
    return std::nullopt;
  }
  if (!reader.take_tagged("iboard", rest)) {
    return std::nullopt;
  }
  {
    const auto fields = split_fields(rest);
    if (fields.size() != 3 ||
        !Reader::parse_u64(fields[0], e.inter_board_edges) ||
        !Reader::parse_u64(fields[1], e.inter_board_bytes) ||
        !Reader::parse_u64(fields[2], e.inter_board_hop_bytes)) {
      return std::nullopt;
    }
  }
  if (!reader.take_tagged("iboardt", rest) ||
      !Reader::parse_double(rest, e.inter_board_seconds) ||
      !reader.take_tagged("ckey", rest) ||
      !Reader::parse_u64(rest, e.congruence_key) || !reader.at_end()) {
    return std::nullopt;
  }
  return e;
}

}  // namespace hybridic::store
