// Off-chip SDRAM main-memory timing model (the ML510's host memory).
//
// Accesses pay a fixed row/controller latency plus per-beat streaming at the
// memory clock. Requests are serialized through a single channel, which is
// what the PLB bus sees on the far side of the memory controller.
#pragma once

#include <cstdint>
#include <string>

#include "mem/port.hpp"
#include "sim/clock.hpp"
#include "util/units.hpp"

namespace hybridic::faults {
class FaultInjector;
}  // namespace hybridic::faults

namespace hybridic::mem {

/// SDRAM timing parameters.
struct SdramConfig {
  std::uint32_t width_bytes = 8;   ///< Beats of 64 bits.
  Cycles access_latency{20};       ///< Controller + row activation latency.
};

/// Single-channel SDRAM with fixed access latency and streaming throughput.
class Sdram {
public:
  Sdram(std::string name, const sim::ClockDomain& clock, SdramConfig config);

  /// Reserve a burst of `bytes`; returns time the last beat is delivered.
  Picoseconds access(Picoseconds earliest, Bytes bytes);

  /// Latency-inclusive duration of an isolated burst.
  [[nodiscard]] Picoseconds burst_time(Bytes bytes) const;

  [[nodiscard]] Bytes bytes_transferred() const {
    return channel_.bytes_transferred();
  }
  [[nodiscard]] const std::string& name() const { return name_; }

  void reset() { channel_.reset(); }

  /// Enable bit-flip fault injection on this controller (null disables).
  void set_faults(faults::FaultInjector* injector) { faults_ = injector; }

private:
  std::string name_;
  const sim::ClockDomain* clock_;
  SdramConfig config_;
  Port channel_;
  faults::FaultInjector* faults_ = nullptr;
};

}  // namespace hybridic::mem
