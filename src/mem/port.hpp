// Memory-port timing model.
//
// The simulator moves byte counts, not payloads (functional correctness of
// the applications is validated separately by the profiler runtime, which
// executes the real algorithms). A Port serializes transfers through a
// memory port at a fixed width per clock cycle, tracking when the port is
// next free and how many bytes it has moved.
#pragma once

#include <cstdint>
#include <string>

#include "sim/clock.hpp"
#include "util/units.hpp"

namespace hybridic::mem {

/// One physical memory port: `width_bytes` transferred per cycle of `clock`.
class Port {
public:
  Port(std::string name, const sim::ClockDomain& clock,
       std::uint32_t width_bytes);

  /// Reserve the port for a transfer of `bytes` starting no earlier than
  /// `earliest`. Returns the completion time; the port is busy until then.
  Picoseconds reserve(Picoseconds earliest, Bytes bytes);

  /// Time at which the port next becomes free.
  [[nodiscard]] Picoseconds free_at() const { return free_at_; }

  /// Duration a transfer of `bytes` occupies the port (no queueing).
  [[nodiscard]] Picoseconds transfer_time(Bytes bytes) const;

  [[nodiscard]] Bytes bytes_transferred() const { return bytes_transferred_; }
  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t width_bytes() const { return width_bytes_; }

  void reset();

private:
  std::string name_;
  const sim::ClockDomain* clock_;
  std::uint32_t width_bytes_;
  Picoseconds free_at_{0};
  Bytes bytes_transferred_{0};
  std::uint64_t transfers_ = 0;
};

}  // namespace hybridic::mem
