#include "mem/sdram.hpp"

#include <algorithm>

#include "faults/injector.hpp"

namespace hybridic::mem {

Sdram::Sdram(std::string name, const sim::ClockDomain& clock,
             SdramConfig config)
    : name_(std::move(name)),
      clock_(&clock),
      config_(config),
      channel_(name_ + ".chan", clock, config.width_bytes) {}

Picoseconds Sdram::access(Picoseconds earliest, Bytes bytes) {
  // The access latency is paid before the beats stream out; the channel is
  // held for latency + data so back-to-back bursts cannot overlap inside
  // the controller. Port::reserve serializes the data window; shifting the
  // earliest-start by the latency serializes the latency window with it.
  const Picoseconds latency = clock_->span(config_.access_latency);
  const Picoseconds start = std::max(earliest, channel_.free_at());
  if (faults_ != nullptr &&
      faults_->draw(faults::SiteKind::kSdram, 0,
                    faults_->spec().sdram_bitflip_rate)) {
    ++faults_->stats().mem_bitflips;
    faults_->record(faults::FaultKind::kSdramBitFlip, start.seconds(),
                    bytes.count(),
                    name_ + ": bit flip in a " +
                        std::to_string(bytes.count()) + " B burst");
  }
  return channel_.reserve(start + latency, bytes);
}

Picoseconds Sdram::burst_time(Bytes bytes) const {
  return channel_.transfer_time(bytes) + clock_->span(config_.access_latency);
}

}  // namespace hybridic::mem
