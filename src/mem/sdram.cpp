#include "mem/sdram.hpp"

#include <algorithm>

namespace hybridic::mem {

Sdram::Sdram(std::string name, const sim::ClockDomain& clock,
             SdramConfig config)
    : name_(std::move(name)),
      clock_(&clock),
      config_(config),
      channel_(name_ + ".chan", clock, config.width_bytes) {}

Picoseconds Sdram::access(Picoseconds earliest, Bytes bytes) {
  // The access latency is paid before the beats stream out; the channel is
  // held for latency + data so back-to-back bursts cannot overlap inside
  // the controller. Port::reserve serializes the data window; shifting the
  // earliest-start by the latency serializes the latency window with it.
  const Picoseconds latency = clock_->span(config_.access_latency);
  const Picoseconds start = std::max(earliest, channel_.free_at());
  return channel_.reserve(start + latency, bytes);
}

Picoseconds Sdram::burst_time(Bytes bytes) const {
  return channel_.transfer_time(bytes) + clock_->span(config_.access_latency);
}

}  // namespace hybridic::mem
