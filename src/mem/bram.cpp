#include "mem/bram.hpp"

#include "faults/injector.hpp"
#include "util/error.hpp"

namespace hybridic::mem {

Bram::Bram(std::string name, const sim::ClockDomain& clock, Bytes capacity,
           std::uint32_t port_width_bytes)
    : name_(std::move(name)),
      capacity_(capacity),
      ports_{Port{name_ + ".A", clock, port_width_bytes},
             Port{name_ + ".B", clock, port_width_bytes}} {
  require(capacity.count() > 0, "BRAM capacity must be non-zero");
}

Picoseconds Bram::access(BramPort port, Picoseconds earliest, Bytes bytes) {
  if (faults_ != nullptr &&
      faults_->draw(faults::SiteKind::kBram, fault_site_,
                    faults_->spec().bram_bitflip_rate)) {
    ++faults_->stats().mem_bitflips;
    faults_->record(faults::FaultKind::kBramBitFlip, earliest.seconds(),
                    bytes.count(),
                    name_ + ": bit flip in a " +
                        std::to_string(bytes.count()) + " B access");
  }
  return ports_[static_cast<std::size_t>(port)].reserve(earliest, bytes);
}

Picoseconds Bram::port_free_at(BramPort port) const {
  return ports_[static_cast<std::size_t>(port)].free_at();
}

Picoseconds Bram::transfer_time(Bytes bytes) const {
  return ports_[0].transfer_time(bytes);
}

Bytes Bram::bytes_through(BramPort port) const {
  return ports_[static_cast<std::size_t>(port)].bytes_transferred();
}

void Bram::reset() {
  ports_[0].reset();
  ports_[1].reset();
}

}  // namespace hybridic::mem
