// Port multiplexer.
//
// BRAM has only two physical ports; when three clients need access (the
// host bus, the NoC adapter and the kernel core — the duplicated
// huff_ac_dec kernels in the paper's Fig. 6), a multiplexer time-shares one
// physical port. Switching costs one cycle of the port's clock when the
// granted client changes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/bram.hpp"
#include "sim/clock.hpp"
#include "util/units.hpp"

namespace hybridic::mem {

/// N-way multiplexer in front of one BRAM port.
class PortMux {
public:
  PortMux(std::string name, const sim::ClockDomain& clock, Bram& memory,
          BramPort port, std::uint32_t client_count);

  /// Access through client `client`; pays a 1-cycle switch penalty when the
  /// previous grant belonged to a different client.
  Picoseconds access(std::uint32_t client, Picoseconds earliest, Bytes bytes);

  [[nodiscard]] std::uint64_t switches() const { return switches_; }
  [[nodiscard]] std::uint32_t client_count() const { return client_count_; }
  [[nodiscard]] const std::string& name() const { return name_; }

private:
  std::string name_;
  const sim::ClockDomain* clock_;
  Bram* memory_;
  BramPort port_;
  std::uint32_t client_count_;
  std::uint32_t last_client_ = UINT32_MAX;
  std::uint64_t switches_ = 0;
};

}  // namespace hybridic::mem
