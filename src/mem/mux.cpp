#include "mem/mux.hpp"

#include "util/error.hpp"

namespace hybridic::mem {

PortMux::PortMux(std::string name, const sim::ClockDomain& clock, Bram& memory,
                 BramPort port, std::uint32_t client_count)
    : name_(std::move(name)),
      clock_(&clock),
      memory_(&memory),
      port_(port),
      client_count_(client_count) {
  require(client_count >= 2, "PortMux needs at least two clients");
}

Picoseconds PortMux::access(std::uint32_t client, Picoseconds earliest,
                            Bytes bytes) {
  require(client < client_count_, "PortMux client out of range");
  Picoseconds start = earliest;
  if (client != last_client_) {
    if (last_client_ != UINT32_MAX) {
      start += clock_->span(Cycles{1});
      ++switches_;
    }
    last_client_ = client;
  }
  return memory_->access(port_, start, bytes);
}

}  // namespace hybridic::mem
