// Full N-port crossbar — the fourth interconnect class of the paper's
// related-work taxonomy (§II-A group 4, the Betkaoui-style "GPEs connected
// with memory modules through a full crossbar").
//
// Any kernel-side port can reach any memory-side port; distinct targets
// transfer concurrently, while accesses to the same memory serialize on
// that memory's port. Switching adds no cycles (like the 2x2 crossbar),
// but the area grows with the port product — which is exactly why the
// paper prefers the hybrid solution for larger systems.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/bram.hpp"
#include "sim/clock.hpp"
#include "util/units.hpp"

namespace hybridic::mem {

/// N kernel ports x M memory ports, each memory being a caller-owned BRAM
/// whose port B the crossbar drives.
class FullCrossbar {
public:
  FullCrossbar(std::string name, std::vector<Bram*> memories);

  /// Route an access from kernel side `source` to memory `target`;
  /// returns the completion time (pure BRAM port time, zero switch cost).
  Picoseconds access(std::uint32_t source, std::uint32_t target,
                     Picoseconds earliest, Bytes bytes);

  [[nodiscard]] std::uint32_t ports() const {
    return static_cast<std::uint32_t>(memories_.size());
  }
  [[nodiscard]] std::uint64_t routed_accesses() const { return routed_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// LUT/register estimate: the paper's 2x2 crossbar (201/200) scaled by
  /// the crosspoint count (N*M / 4) — the quadratic growth that makes
  /// full crossbars uneconomical beyond a handful of ports.
  [[nodiscard]] static std::uint64_t estimate_luts(std::uint32_t kernel_ports,
                                                   std::uint32_t memory_ports);
  [[nodiscard]] static std::uint64_t estimate_regs(std::uint32_t kernel_ports,
                                                   std::uint32_t memory_ports);

private:
  std::string name_;
  std::vector<Bram*> memories_;
  std::uint64_t routed_ = 0;
};

}  // namespace hybridic::mem
