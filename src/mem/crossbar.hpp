// 2x2 crossbar for the shared-local-memory solution.
//
// Paper §IV-A1: two kernels that communicate exclusively share their local
// memories through a 2x2 crossbar (201 LUTs / 200 registers, Table II). The
// crossbar switches accesses by address and "does not introduce any
// communication overhead because it does not change the structure of data" —
// so the timing model adds zero latency; its value is that the consumer reads
// the producer's output in place, eliminating the two bus trips
// (Δc = 2·D_ij·θ in the paper's model).
//
// When the consumer kernel has no host traffic at all (D^H = 0), the pair
// shares the BRAM directly and not even the crossbar is instantiated
// (kernel 3 / kernel 4 in the paper's Fig. 2).
#pragma once

#include <cstdint>
#include <string>

#include "mem/bram.hpp"
#include "util/units.hpp"

namespace hybridic::mem {

/// How a shared-local-memory pair is wired.
enum class SharingStyle : std::uint8_t {
  kCrossbar,  ///< 2x2 crossbar; both kernels still reachable from the host.
  kDirect,    ///< BRAM port shared directly; consumer has no host traffic.
};

/// A 2x2 crossbar connecting two kernel cores to two BRAMs.
///
/// Accesses route by address range: each kernel reaches both BRAMs with no
/// added cycles. The model exposes the two BRAM sides; contention is
/// resolved by the BRAM ports themselves.
class Crossbar2x2 {
public:
  Crossbar2x2(std::string name, Bram& memory0, Bram& memory1);

  /// Route an access from kernel side `side` (0 or 1) to memory `target`
  /// (0 or 1). Zero switching latency; returns the BRAM completion time.
  Picoseconds access(std::uint32_t side, std::uint32_t target,
                     Picoseconds earliest, Bytes bytes);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t routed_accesses() const { return routed_; }
  [[nodiscard]] Bram& memory(std::uint32_t index);

private:
  std::string name_;
  Bram* memories_[2];
  std::uint64_t routed_ = 0;
};

}  // namespace hybridic::mem
