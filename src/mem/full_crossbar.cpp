#include "mem/full_crossbar.hpp"

#include "util/error.hpp"

namespace hybridic::mem {

FullCrossbar::FullCrossbar(std::string name, std::vector<Bram*> memories)
    : name_(std::move(name)), memories_(std::move(memories)) {
  require(!memories_.empty(), "full crossbar needs at least one memory");
  for (const Bram* memory : memories_) {
    require(memory != nullptr, "full crossbar memory must not be null");
  }
}

Picoseconds FullCrossbar::access(std::uint32_t source, std::uint32_t target,
                                 Picoseconds earliest, Bytes bytes) {
  require(target < memories_.size(), "full crossbar target out of range");
  (void)source;  // Any source reaches any target; contention is per target.
  ++routed_;
  return memories_[target]->access(BramPort::kB, earliest, bytes);
}

std::uint64_t FullCrossbar::estimate_luts(std::uint32_t kernel_ports,
                                          std::uint32_t memory_ports) {
  // 2x2 = 4 crosspoints = 201 LUTs -> ~50.25 LUTs per crosspoint.
  return static_cast<std::uint64_t>(kernel_ports) * memory_ports * 201 / 4;
}

std::uint64_t FullCrossbar::estimate_regs(std::uint32_t kernel_ports,
                                          std::uint32_t memory_ports) {
  return static_cast<std::uint64_t>(kernel_ports) * memory_ports * 200 / 4;
}

}  // namespace hybridic::mem
