#include "mem/crossbar.hpp"

#include "util/error.hpp"

namespace hybridic::mem {

Crossbar2x2::Crossbar2x2(std::string name, Bram& memory0, Bram& memory1)
    : name_(std::move(name)), memories_{&memory0, &memory1} {}

Picoseconds Crossbar2x2::access(std::uint32_t side, std::uint32_t target,
                                Picoseconds earliest, Bytes bytes) {
  require(side < 2 && target < 2, "Crossbar2x2 side/target must be 0 or 1");
  ++routed_;
  // Kernel-side clients use port B; port A stays with the host/bus.
  return memories_[target]->access(BramPort::kB, earliest, bytes);
}

Bram& Crossbar2x2::memory(std::uint32_t index) {
  require(index < 2, "Crossbar2x2 memory index must be 0 or 1");
  return *memories_[index];
}

}  // namespace hybridic::mem
