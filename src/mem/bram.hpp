// Dual-port Block RAM local memory.
//
// Paper §IV-A1: "When implemented on FPGAs, most accelerator systems use
// block RAM (BRAM) as the local memory. BRAM in modern FPGA usually has two
// ports." One port usually serves the host/system bus, the other the kernel
// core; when a third client is attached (e.g. a NoC adapter plus host plus
// kernel, as for the duplicated huff_ac_dec kernels in Fig. 6) a multiplexer
// shares a physical port.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "mem/port.hpp"
#include "sim/clock.hpp"
#include "util/units.hpp"

namespace hybridic::faults {
class FaultInjector;
}  // namespace hybridic::faults

namespace hybridic::mem {

/// Which physical BRAM port a client is attached to.
enum class BramPort : std::uint8_t { kA = 0, kB = 1 };

/// A dual-port BRAM with a fixed capacity and per-port width.
class Bram {
public:
  Bram(std::string name, const sim::ClockDomain& clock, Bytes capacity,
       std::uint32_t port_width_bytes);

  /// Reserve a transfer on the given port; returns completion time.
  Picoseconds access(BramPort port, Picoseconds earliest, Bytes bytes);

  [[nodiscard]] Picoseconds port_free_at(BramPort port) const;
  [[nodiscard]] Picoseconds transfer_time(Bytes bytes) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes bytes_through(BramPort port) const;

  void reset();

  /// Enable bit-flip fault injection; `site` identifies this BRAM's RNG
  /// stream (the owning kernel-instance index). Null disables.
  void set_faults(faults::FaultInjector* injector, std::uint64_t site) {
    faults_ = injector;
    fault_site_ = site;
  }

private:
  std::string name_;
  Bytes capacity_;
  std::array<Port, 2> ports_;
  faults::FaultInjector* faults_ = nullptr;
  std::uint64_t fault_site_ = 0;
};

}  // namespace hybridic::mem
