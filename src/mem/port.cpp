#include "mem/port.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hybridic::mem {

Port::Port(std::string name, const sim::ClockDomain& clock,
           std::uint32_t width_bytes)
    : name_(std::move(name)), clock_(&clock), width_bytes_(width_bytes) {
  require(width_bytes > 0, "Port width must be non-zero");
}

Picoseconds Port::transfer_time(Bytes bytes) const {
  const std::uint64_t beats =
      (bytes.count() + width_bytes_ - 1) / width_bytes_;
  return clock_->span(Cycles{beats});
}

Picoseconds Port::reserve(Picoseconds earliest, Bytes bytes) {
  const Picoseconds start =
      clock_->align_up(std::max(earliest, free_at_));
  const Picoseconds done = start + transfer_time(bytes);
  free_at_ = done;
  bytes_transferred_ += bytes;
  ++transfers_;
  return done;
}

void Port::reset() {
  free_at_ = Picoseconds{0};
  bytes_transferred_ = Bytes{0};
  transfers_ = 0;
}

}  // namespace hybridic::mem
