// Bit-exact text codec for journaled CaseOutcomes (docs/MODEL.md §17).
//
// The run journal records one encoded CaseOutcome per completed job so a
// resumed campaign can rebuild the row — and therefore the CSV and the
// REPORT tables — byte for byte. Doubles serialize as C99 hex-floats
// ("%a", via store::hexf) and round-trip to the identical bit pattern;
// the analytic estimate embeds the store's versioned estimate codec.
//
// Fields the campaign recomputes serially after all rows exist
// (profile_key, congruent, profile_reused) are deliberately NOT encoded:
// they are pure functions of the full row set and the config.
//
// The decoder is total: any malformed payload returns nullopt, so a
// damaged journal record degrades to re-executing that job.
#pragma once

#include <optional>
#include <string>

#include "dse/campaign.hpp"

namespace hybridic::dse {

[[nodiscard]] std::string encode_outcome(const CaseOutcome& outcome);

/// nullopt when the payload is malformed.
[[nodiscard]] std::optional<CaseOutcome> decode_outcome(
    const std::string& payload);

}  // namespace hybridic::dse
