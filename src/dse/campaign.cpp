#include "dse/campaign.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "dse/case_runner.hpp"
#include "dse/shrinker.hpp"
#include "store/adapters.hpp"
#include "sys/batch_runner.hpp"
#include "util/error.hpp"

namespace hybridic::dse {
namespace {

std::string fmt(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

std::string hex_key(std::uint64_t key) {
  std::ostringstream out;
  out << std::hex << key;
  return out.str();
}

/// 16-hex content hash of a row's profile identity: the exact string the
/// profile cache (and the L2 store, revision aside) keys the config by.
std::string profile_key_of(const apps::SyntheticConfig& config) {
  static const char* kDigits = "0123456789abcdef";
  const std::uint64_t h =
      store::fnv1a64(apps::ProfileCache::synthetic_key(config));
  std::string out(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[i] = kDigits[(h >> (60 - 4 * i)) & 0xF];
  }
  return out;
}

/// CSV-safe rendering of a free-form message (no commas, no newlines).
std::string csv_safe(std::string text) {
  for (char& ch : text) {
    if (ch == ',' || ch == '\n' || ch == '\r') {
      ch = ';';
    }
  }
  return text;
}

std::uint64_t effective_rank_cap(const CampaignOptions& options) {
  if (options.max_rank_escalations != 0) {
    return options.max_rank_escalations;
  }
  // 2% of the sweep: escalated designs skew expensive to simulate (the
  // lowest analytic lower bounds are the high-volume, high-savings
  // candidates), so a wider cap erodes the tier speedup quickly.
  return std::max<std::uint64_t>(4, options.count / 50);
}

/// One full cycle-accurate evaluation (the pre-tier job body), plus the
/// tier record: the analytic estimate is attached from the case's own
/// schedule and design — no second profiling run — so every simulated row
/// carries a band check.
CaseOutcome run_cycle_outcome(std::uint64_t index,
                              const CampaignOptions& options,
                              tiers::TieredEvaluator& evaluator,
                              apps::ProfileCache* cache,
                              tiers::EscalationReason reason) {
  CaseOutcome outcome;
  outcome.index = index;
  outcome.config = sample_config(options.space, options.campaign_seed, index);
  outcome.escalation = reason;
  outcome.simulated = true;  ///< The cycle engine owns this row (even on
                             ///< error, so auto rows mirror cycle rows).
  try {
    const DesignCase c = run_design_case(outcome.config, cache);
    outcome.solution_tag = c.exp.proposed_design.solution_tag();
    outcome.baseline_seconds = c.exp.baseline.total_seconds;
    outcome.designed_seconds = c.exp.proposed.total_seconds;
    outcome.crossbar_seconds = c.crossbar.total_seconds;
    outcome.pipelined_makespan_seconds = c.pipelined.makespan_seconds;
    outcome.oracles = run_all_oracles(c, options.bounds);
    if (c.multi_run != nullptr) {
      outcome.multi_total_seconds = c.multi_run->run.total_seconds;
      outcome.inter_board_bytes = c.multi_run->inter_board_bytes;
      outcome.board_link_reroutes = c.multi_run->board_link_reroutes;
    }
    if (c.multi_design != nullptr) {
      outcome.cut_bytes = c.multi_design->partition.cut_bytes.count();
    }
    outcome.analytic =
        evaluator.estimate(c.schedule, c.exp.proposed_design);
    outcome.measured_designed_kernel_seconds =
        c.exp.proposed.kernel_seconds();
    outcome.band_violation = !outcome.analytic->contains_designed(
        outcome.measured_designed_kernel_seconds);
  } catch (const std::exception& e) {
    outcome.error = e.what();
  }
  return outcome;
}

/// The analytic-tier job body: profile + Algorithm 1 + estimate + the
/// sim-free oracles, never an event queue.
CaseOutcome run_analytic_outcome(std::uint64_t index,
                                 const CampaignOptions& options,
                                 tiers::TieredEvaluator& evaluator,
                                 apps::ProfileCache* cache) {
  CaseOutcome outcome;
  outcome.index = index;
  outcome.config = sample_config(options.space, options.campaign_seed, index);
  try {
    tiers::AnalyticCase analytic = evaluator.analyze(outcome.config, cache);
    outcome.solution_tag = analytic.proposed.solution_tag();
    outcome.analytic = analytic.estimate;

    // Sim-free oracles run on a partial case: schedule + designs only.
    // The graph pointer stays valid across the moves (the profiler that
    // owns it is held by the shared ProfiledApp).
    DesignCase c;
    c.config = outcome.config;
    c.app = std::move(analytic.app);
    c.schedule = std::move(analytic.schedule);
    c.exp.proposed_design = std::move(analytic.proposed);
    c.exp.noc_only_design = std::move(analytic.noc_only);
    c.theta_seconds_per_byte = analytic.theta_seconds_per_byte;
    if (outcome.config.board_count > 1) {
      // The two-level partition + per-board designs are sim-free, so the
      // analytic tier can run the board-conservation oracle too.
      core::MultiBoardDesignInput input;
      input.base =
          sys::make_design_input(c.schedule, sys::PlatformConfig{});
      input.board_count = outcome.config.board_count;
      c.multi_design = std::make_shared<const core::MultiBoardDesign>(
          core::design_multi_board(input));
      outcome.cut_bytes = c.multi_design->partition.cut_bytes.count();
    }
    for (const Oracle& oracle :
         oracle_library(options.bounds, c.multi_design != nullptr)) {
      if (!oracle.needs_cycle) {
        outcome.oracles.push_back(oracle.check(c));
      }
    }
  } catch (const std::exception& e) {
    outcome.error = e.what();
  }
  return outcome;
}

/// Serial post-pass: congruent/profile_reused flags + tier stats, in index
/// order.
void finalize_tier_record(CampaignResult& result,
                          const CampaignOptions& options) {
  TierStats& stats = result.tier_stats;
  stats.mode = options.tier;
  std::set<std::string> seen_profiles;
  for (CaseOutcome& outcome : result.cases) {
    outcome.profile_key = profile_key_of(outcome.config);
    outcome.profile_reused = !seen_profiles.insert(outcome.profile_key).second;
    if (outcome.profile_reused) {
      ++stats.reused_profiles;
    }
  }
  stats.distinct_profiles = seen_profiles.size();
  std::set<std::uint64_t> seen_keys;
  for (CaseOutcome& outcome : result.cases) {
    if (!outcome.analytic.has_value()) {
      continue;
    }
    ++stats.analytic_evals;
    outcome.congruent =
        !seen_keys.insert(outcome.analytic->congruence_key).second;
    if (outcome.congruent) {
      ++stats.congruent_designs;
    }
    if (outcome.simulated) {
      ++stats.band_checks;
      if (outcome.band_violation) {
        ++stats.band_violations;
      }
      const double measured = outcome.measured_designed_kernel_seconds;
      const double mid = outcome.analytic->designed_kernel_seconds;
      if (mid > 0.0) {
        stats.worst_measured_over_analytic =
            std::max(stats.worst_measured_over_analytic, measured / mid);
      }
      if (measured > 0.0) {
        stats.worst_analytic_over_measured =
            std::max(stats.worst_analytic_over_measured, mid / measured);
      }
    }
  }
  stats.distinct_signatures = seen_keys.size();
  for (const CaseOutcome& outcome : result.cases) {
    if (outcome.simulated) {
      ++stats.cycle_evals;
    }
    if (outcome.escalation == tiers::EscalationReason::kRankOverlap) {
      ++stats.escalated_rank;
    }
    if (outcome.escalation == tiers::EscalationReason::kOracle) {
      ++stats.escalated_oracle;
    }
  }
}

}  // namespace

apps::SyntheticConfig sample_config(const SweepSpace& space,
                                    std::uint64_t campaign_seed,
                                    std::uint64_t index) {
  // One private stream per (campaign, index); splitmix seeding decorrelates
  // neighbouring indices.
  Rng rng{campaign_seed * 0x9E3779B97F4A7C15ULL + index + 1};

  apps::SyntheticConfig config;
  config.kernel_count = static_cast<std::uint32_t>(
      rng.between(space.min_kernels, space.max_kernels));
  config.kernel_edge_probability =
      space.min_edge_probability +
      rng.uniform() * (space.max_edge_probability -
                       space.min_edge_probability);
  const std::uint64_t bytes_a = rng.between(space.min_edge_bytes_floor,
                                            space.max_edge_bytes_ceiling);
  const std::uint64_t bytes_b = rng.between(space.min_edge_bytes_floor,
                                            space.max_edge_bytes_ceiling);
  config.min_edge_bytes = std::min(bytes_a, bytes_b);
  config.max_edge_bytes = std::max(bytes_a, bytes_b);
  const std::uint64_t work_a = rng.between(space.min_work_units_floor,
                                           space.max_work_units_ceiling);
  const std::uint64_t work_b = rng.between(space.min_work_units_floor,
                                           space.max_work_units_ceiling);
  config.min_work_units = std::min(work_a, work_b);
  config.max_work_units = std::max(work_a, work_b);
  config.duplicable_probability = rng.uniform();
  config.streaming_probability = rng.uniform();
  config.seed = rng.next();

  // Board draws come strictly AFTER every existing field and only when
  // the space actually sweeps boards: a single-board campaign consumes
  // the identical RNG stream it always did, so its configs (and
  // therefore its CSV) replay byte for byte.
  if (space.multi_board()) {
    config.board_count = static_cast<std::uint32_t>(
        rng.between(std::max<std::uint32_t>(1, space.min_boards),
                    space.max_boards));
    const auto& topologies = space.board_topologies;
    if (!topologies.empty()) {
      config.board_topology = topologies[static_cast<std::size_t>(
          rng.between(0, static_cast<std::uint64_t>(topologies.size()) - 1))];
    }
  }
  return config;
}

bool CaseOutcome::all_pass() const {
  if (!ran()) {
    return false;
  }
  return std::all_of(oracles.begin(), oracles.end(),
                     [](const OracleResult& r) { return r.pass; });
}

std::uint64_t CampaignResult::pass_count(const std::string& oracle) const {
  std::uint64_t n = 0;
  for (const CaseOutcome& c : cases) {
    for (const OracleResult& r : c.oracles) {
      if (r.oracle == oracle && r.pass) {
        ++n;
      }
    }
  }
  return n;
}

std::uint64_t CampaignResult::fail_count(const std::string& oracle) const {
  std::uint64_t n = 0;
  for (const CaseOutcome& c : cases) {
    for (const OracleResult& r : c.oracles) {
      if (r.oracle == oracle && !r.pass) {
        ++n;
      }
    }
  }
  return n;
}

std::uint64_t CampaignResult::error_count() const {
  std::uint64_t n = 0;
  for (const CaseOutcome& c : cases) {
    if (!c.ran()) {
      ++n;
    }
  }
  return n;
}

CampaignResult run_campaign(const CampaignOptions& options) {
  require(options.shard_count >= 1, "shard count must be >= 1");
  require(options.shard_index < options.shard_count,
          "shard index must be < shard count");
  // Auto-tier escalation ranks every estimate against every other; a
  // shard only holds its own, so the selection (and thus the merged CSV)
  // would differ from an unsharded run. Shard analytic or cycle sweeps.
  require(options.shard_count == 1 || options.tier != tiers::TierMode::kAuto,
          "--shard requires --tier=analytic or --tier=cycle: auto-mode "
          "escalation selection is global");

  CampaignResult result;
  result.multi_board = options.space.multi_board();
  for (const Oracle& oracle :
       oracle_library(options.bounds, result.multi_board)) {
    result.oracle_names.push_back(oracle.name);
  }

  // This shard's slice of the sweep, with global indices preserved so the
  // merged CSV is indistinguishable from an unsharded run.
  std::vector<std::uint64_t> owned;
  owned.reserve(static_cast<std::size_t>(
      options.count / options.shard_count + 1));
  for (std::uint64_t index = options.shard_index; index < options.count;
       index += options.shard_count) {
    owned.push_back(index);
  }

  // One evaluator for the whole campaign: one theta probe, one congruence
  // cache. estimate() is thread-safe and pure, so sharing it across jobs
  // never breaks the determinism contract. The profile cache memoizes
  // QUAD runs across design points; with a store attached both caches
  // gain a persistent L2 tier shared across processes and shards.
  tiers::TieredEvaluator evaluator;
  apps::ProfileCache profile_cache;
  profile_cache.set_capacity(
      static_cast<std::size_t>(options.profile_cache_max_entries),
      options.profile_cache_max_bytes);
  std::shared_ptr<store::Store> disk;
  if (!options.store_dir.empty()) {
    disk = std::make_shared<store::Store>(options.store_dir);
    profile_cache.set_l2(std::make_shared<store::ProfileStoreL2>(disk));
    evaluator.set_estimate_l2(std::make_shared<store::EstimateStoreL2>(
        disk,
        store::estimate_scope(evaluator.platform(),
                              evaluator.calibration())));
  }
  apps::ProfileCache* cache = &profile_cache;
  sys::BatchRunner runner{options.threads};
  const CampaignOptions& opts = options;

  const auto cycle_key = [&options](std::uint64_t index) {
    // The same key in cycle mode and for auto-mode escalations: escalated
    // rows replay the identical RNG stream, so their CSV rows match a
    // pure --tier=cycle campaign byte for byte.
    return "dse/" + std::to_string(options.campaign_seed) + "/" +
           std::to_string(index);
  };

  if (options.tier == tiers::TierMode::kCycle) {
    std::vector<sys::BatchRunner::Job<CaseOutcome>> jobs;
    jobs.reserve(owned.size());
    for (const std::uint64_t index : owned) {
      jobs.push_back({cycle_key(index), [index, &opts, &evaluator, cache](
                                            sys::JobContext&) {
                        return run_cycle_outcome(
                            index, opts, evaluator, cache,
                            tiers::EscalationReason::kRequested);
                      }});
    }
    result.cases = runner.run(std::move(jobs));
  } else {
    // Phase 1: the analytic tier over every owned design point.
    std::vector<sys::BatchRunner::Job<CaseOutcome>> probes;
    probes.reserve(owned.size());
    for (const std::uint64_t index : owned) {
      const std::string key = "tier/" +
                              std::to_string(options.campaign_seed) + "/" +
                              std::to_string(index);
      probes.push_back({key,
                        [index, &opts, &evaluator, cache](sys::JobContext&) {
                          return run_analytic_outcome(index, opts, evaluator,
                                                      cache);
                        }});
    }
    result.cases = runner.run(std::move(probes));

    // Phase 2 (serial): pick the designs that must climb to the cycle
    // tier — sim-free oracle failures and ranked contenders.
    if (options.tier == tiers::TierMode::kAuto) {
      std::vector<const tiers::TierEstimate*> estimates;
      std::vector<bool> oracle_demands;
      estimates.reserve(result.cases.size());
      oracle_demands.reserve(result.cases.size());
      for (const CaseOutcome& outcome : result.cases) {
        estimates.push_back(outcome.analytic.has_value()
                                ? &*outcome.analytic
                                : nullptr);
        bool demand = false;
        for (const OracleResult& r : outcome.oracles) {
          demand = demand || !r.pass;
        }
        oracle_demands.push_back(demand);
      }
      const std::uint64_t cap = effective_rank_cap(options);
      result.tier_stats.rank_cap = cap;
      double best_upper = 0.0;
      bool have_upper = false;
      for (const tiers::TierEstimate* estimate : estimates) {
        if (estimate != nullptr &&
            (!have_upper ||
             estimate->designed_upper_seconds < best_upper)) {
          best_upper = estimate->designed_upper_seconds;
          have_upper = true;
        }
      }
      for (std::size_t i = 0; i < estimates.size(); ++i) {
        if (estimates[i] != nullptr && !oracle_demands[i] &&
            estimates[i]->designed_lower_seconds <= best_upper) {
          ++result.tier_stats.rank_contenders;
        }
      }
      const std::vector<tiers::EscalationReason> reasons =
          tiers::select_escalations(estimates, oracle_demands, cap);

      // Phase 3: cycle-accurate evaluation of the escalated designs.
      std::vector<std::uint64_t> escalated;
      for (std::uint64_t index = 0; index < reasons.size(); ++index) {
        if (reasons[index] != tiers::EscalationReason::kNone) {
          escalated.push_back(index);
        }
      }
      std::vector<sys::BatchRunner::Job<CaseOutcome>> cycles;
      cycles.reserve(escalated.size());
      for (const std::uint64_t index : escalated) {
        const tiers::EscalationReason reason = reasons[index];
        cycles.push_back({cycle_key(index),
                          [index, &opts, &evaluator, cache, reason](
                              sys::JobContext&) {
                            return run_cycle_outcome(index, opts, evaluator,
                                                     cache, reason);
                          }});
      }
      std::vector<CaseOutcome> escalated_outcomes =
          runner.run(std::move(cycles));
      for (std::size_t slot = 0; slot < escalated.size(); ++slot) {
        result.cases[escalated[slot]] =
            std::move(escalated_outcomes[slot]);
      }
    }
  }

  finalize_tier_record(result, options);

  // Live counters for stdout reporting (never the CSV/REPORT: they vary
  // with thread count, shard split, and store warmth).
  result.profile_cache_stats = profile_cache.stats();
  result.estimate_l2_hits = evaluator.cache().l2_hits();
  result.estimate_l2_stores = evaluator.cache().l2_stores();
  if (disk != nullptr) {
    result.store_stats = disk->stats();
  }

  // Shrink the first failure of each distinct oracle (index order), up to
  // the budget. Serial and deterministic.
  std::set<std::string> shrunk_oracles;
  for (const CaseOutcome& outcome : result.cases) {
    if (result.reproducers.size() >= options.max_shrinks) {
      break;
    }
    if (!outcome.ran()) {
      continue;
    }
    for (const OracleResult& r : outcome.oracles) {
      if (r.pass || shrunk_oracles.count(r.oracle) != 0) {
        continue;
      }
      shrunk_oracles.insert(r.oracle);
      const Oracle oracle = find_oracle(r.oracle, options.bounds);
      const ShrinkResult shrunk = shrink(outcome.config, oracle);
      Reproducer reproducer;
      reproducer.oracle = r.oracle;
      reproducer.expect = Expectation::kPass;  ///< Green once fixed.
      reproducer.message = shrunk.failure.message;
      reproducer.config = shrunk.config;
      result.reproducers.push_back(std::move(reproducer));
      if (result.reproducers.size() >= options.max_shrinks) {
        break;
      }
    }
  }
  return result;
}

std::string campaign_csv(const CampaignResult& result) {
  std::ostringstream out;
  out << "index,seed,kernels,edge_p,min_edge_bytes,max_edge_bytes,"
         "min_work,max_work,dup_p,stream_p,solution,baseline_s,designed_s,"
         "crossbar_s,pipelined_makespan_s,measured_kernel_s";
  for (const std::string& oracle : result.oracle_names) {
    out << ',' << oracle;
  }
  out << ",tier,escalation,analytic_baseline_s,analytic_designed_s,"
         "analytic_lo_s,analytic_hi_s,noc_hop_bytes,congruence_key,"
         "congruent,profile_key,profile_reused,band_violation";
  // Board columns exist only in multi-board campaigns: single-board CSVs
  // keep their historical schema byte for byte (and merge_shards.py
  // refuses to mix the two schemas).
  if (result.multi_board) {
    out << ",boards,board_topology,cut_bytes,multi_total_s,"
           "inter_board_bytes,board_reroutes";
  }
  out << ",error\n";
  for (const CaseOutcome& c : result.cases) {
    out << c.index << ',' << c.config.seed << ',' << c.config.kernel_count
        << ',' << fmt(c.config.kernel_edge_probability) << ','
        << c.config.min_edge_bytes << ',' << c.config.max_edge_bytes << ','
        << c.config.min_work_units << ',' << c.config.max_work_units << ','
        << fmt(c.config.duplicable_probability) << ','
        << fmt(c.config.streaming_probability) << ','
        << csv_safe(c.solution_tag);
    // Analytic-only rows never ran a simulator: their cycle timings are
    // "-" (absent), not zero.
    if (c.simulated) {
      out << ',' << fmt(c.baseline_seconds) << ',' << fmt(c.designed_seconds)
          << ',' << fmt(c.crossbar_seconds) << ','
          << fmt(c.pipelined_makespan_seconds) << ','
          << fmt(c.measured_designed_kernel_seconds);
    } else {
      out << ",-,-,-,-,-";
    }
    for (const std::string& oracle : result.oracle_names) {
      const OracleResult* found = nullptr;
      for (const OracleResult& r : c.oracles) {
        if (r.oracle == oracle) {
          found = &r;
        }
      }
      out << ',' << (found == nullptr ? "-" : found->pass ? "1" : "0");
    }
    out << ',' << c.tier_name() << ',' << to_string(c.escalation);
    if (c.analytic.has_value()) {
      out << ',' << fmt(c.analytic->baseline_kernel_seconds) << ','
          << fmt(c.analytic->designed_kernel_seconds) << ','
          << fmt(c.analytic->designed_lower_seconds) << ','
          << fmt(c.analytic->designed_upper_seconds) << ','
          << c.analytic->noc_hop_bytes << ','
          << hex_key(c.analytic->congruence_key) << ','
          << (c.congruent ? '1' : '0');
    } else {
      out << ",-,-,-,-,-,-,-";
    }
    out << ',' << c.profile_key << ',' << (c.profile_reused ? '1' : '0');
    out << ','
        << (c.simulated && c.analytic.has_value()
                ? (c.band_violation ? "1" : "0")
                : "-");
    if (result.multi_board) {
      out << ',' << c.config.board_count << ',' << c.config.board_topology
          << ',' << c.cut_bytes;
      // The multi run only exists on simulated multi-board rows.
      if (c.simulated && c.config.board_count > 1) {
        out << ',' << fmt(c.multi_total_seconds) << ','
            << c.inter_board_bytes << ',' << c.board_link_reroutes;
      } else {
        out << ",-,-,-";
      }
    }
    out << ',' << csv_safe(c.error) << '\n';
  }
  return out.str();
}

const char* campaign_section_marker() {
  return "## Design-space exploration campaign";
}

std::string campaign_markdown(const CampaignResult& result,
                              const CampaignOptions& options) {
  std::ostringstream md;
  md << campaign_section_marker() << "\n\n";
  md << result.cases.size() << " synthetic designs swept (campaign seed "
     << options.campaign_seed << ", kernels "
     << options.space.min_kernels << "-" << options.space.max_kernels
     << ", edge density " << options.space.min_edge_probability << "-"
     << options.space.max_edge_probability
     << "), each run through profiling and Algorithm 1, priced by the "
        "tiered evaluation engine (docs/MODEL.md §14), and checked "
        "against the invariant-oracle library (docs/TESTING.md); "
        "cycle-tier rows additionally run all five system variants.\n\n";
  if (result.multi_board) {
    md << "Board dimension swept: " << options.space.min_boards << "-"
       << options.space.max_boards << " boards over topologies {";
    for (std::size_t i = 0; i < options.space.board_topologies.size(); ++i) {
      md << (i == 0 ? "" : ", ") << options.space.board_topologies[i];
    }
    md << "}; multi-board rows run the two-level design (min-cut board "
          "partition, then per-board Algorithm 1) and the inter-board "
          "link simulation, checked by the board-byte-conservation "
          "oracle.\n\n";
  }
  md << "| oracle | pass | fail | rate |\n|---|---|---|---|\n";
  for (const std::string& oracle : result.oracle_names) {
    const std::uint64_t pass = result.pass_count(oracle);
    const std::uint64_t failed = result.fail_count(oracle);
    const std::uint64_t total = pass + failed;
    std::ostringstream rate;
    rate.precision(4);
    rate << (total == 0
                 ? 0.0
                 : 100.0 * static_cast<double>(pass) /
                       static_cast<double>(total));
    md << "| " << oracle << " | " << pass << " | " << failed << " | "
       << rate.str() << "% |\n";
  }
  md << "\nCases erroring before the oracles ran: " << result.error_count()
     << ".\n";

  // Tier-disagreement table (docs/MODEL.md §14): how often the analytic
  // tier sufficed, why rows escalated, and how honest the band is.
  const TierStats& tiers_stats = result.tier_stats;
  std::ostringstream rate;
  rate.precision(4);
  rate << 100.0 * tiers_stats.escalation_rate(result.cases.size());
  md << "\n### Tier disagreement (`--tier=" << to_string(tiers_stats.mode)
     << "`)\n\n"
     << "| quantity | value |\n|---|---|\n"
     << "| analytic evaluations | " << tiers_stats.analytic_evals << " |\n"
     << "| cycle evaluations | " << tiers_stats.cycle_evals << " |\n"
     << "| escalations (rank-overlap / oracle) | "
     << tiers_stats.escalated_rank << " / " << tiers_stats.escalated_oracle
     << " |\n"
     << "| rank contenders before cap (cap) | "
     << tiers_stats.rank_contenders << " (" << tiers_stats.rank_cap
     << ") |\n"
     << "| escalation rate | " << rate.str() << "% |\n"
     << "| band checks / violations | " << tiers_stats.band_checks << " / "
     << tiers_stats.band_violations << " |\n";
  {
    std::ostringstream worst;
    worst.precision(4);
    worst << tiers_stats.worst_measured_over_analytic << "x / "
          << tiers_stats.worst_analytic_over_measured << "x";
    md << "| worst measured/analytic, analytic/measured | " << worst.str()
       << " |\n";
  }
  md << "| congruent designs / distinct signatures | "
     << tiers_stats.congruent_designs << " / "
     << tiers_stats.distinct_signatures << " |\n";
  md << "| reused profiles / distinct profiles | "
     << tiers_stats.reused_profiles << " / "
     << tiers_stats.distinct_profiles << " |\n";
  if (!result.reproducers.empty()) {
    md << "\nShrunk reproducers (replayed by `test_dse_regressions` once "
          "checked in under `tests/fixtures/dse/`):\n\n";
    for (const Reproducer& r : result.reproducers) {
      md << "- `" << reproducer_file_name(r) << "` — " << r.oracle << ": "
         << r.message << "\n";
    }
  }
  md << "\nFull per-design rows: `bench_results/dse_campaign.csv`.\n";
  return md.str();
}

std::vector<std::string> save_reproducers(const CampaignResult& result,
                                          const std::string& dir) {
  std::vector<std::string> paths;
  if (result.reproducers.empty()) {
    return paths;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  for (const Reproducer& reproducer : result.reproducers) {
    const std::string path = dir + "/" + reproducer_file_name(reproducer);
    std::ofstream out{path};
    require(out.good(), "cannot write reproducer: " + path);
    out << to_json(reproducer);
    paths.push_back(path);
  }
  return paths;
}

}  // namespace hybridic::dse
