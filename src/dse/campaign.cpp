#include "dse/campaign.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "dse/case_runner.hpp"
#include "dse/shrinker.hpp"
#include "sys/batch_runner.hpp"
#include "util/error.hpp"

namespace hybridic::dse {
namespace {

std::string fmt(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

/// CSV-safe rendering of a free-form message (no commas, no newlines).
std::string csv_safe(std::string text) {
  for (char& ch : text) {
    if (ch == ',' || ch == '\n' || ch == '\r') {
      ch = ';';
    }
  }
  return text;
}

}  // namespace

apps::SyntheticConfig sample_config(const SweepSpace& space,
                                    std::uint64_t campaign_seed,
                                    std::uint64_t index) {
  // One private stream per (campaign, index); splitmix seeding decorrelates
  // neighbouring indices.
  Rng rng{campaign_seed * 0x9E3779B97F4A7C15ULL + index + 1};

  apps::SyntheticConfig config;
  config.kernel_count = static_cast<std::uint32_t>(
      rng.between(space.min_kernels, space.max_kernels));
  config.kernel_edge_probability =
      space.min_edge_probability +
      rng.uniform() * (space.max_edge_probability -
                       space.min_edge_probability);
  const std::uint64_t bytes_a = rng.between(space.min_edge_bytes_floor,
                                            space.max_edge_bytes_ceiling);
  const std::uint64_t bytes_b = rng.between(space.min_edge_bytes_floor,
                                            space.max_edge_bytes_ceiling);
  config.min_edge_bytes = std::min(bytes_a, bytes_b);
  config.max_edge_bytes = std::max(bytes_a, bytes_b);
  const std::uint64_t work_a = rng.between(space.min_work_units_floor,
                                           space.max_work_units_ceiling);
  const std::uint64_t work_b = rng.between(space.min_work_units_floor,
                                           space.max_work_units_ceiling);
  config.min_work_units = std::min(work_a, work_b);
  config.max_work_units = std::max(work_a, work_b);
  config.duplicable_probability = rng.uniform();
  config.streaming_probability = rng.uniform();
  config.seed = rng.next();
  return config;
}

bool CaseOutcome::all_pass() const {
  if (!ran()) {
    return false;
  }
  return std::all_of(oracles.begin(), oracles.end(),
                     [](const OracleResult& r) { return r.pass; });
}

std::uint64_t CampaignResult::pass_count(const std::string& oracle) const {
  std::uint64_t n = 0;
  for (const CaseOutcome& c : cases) {
    for (const OracleResult& r : c.oracles) {
      if (r.oracle == oracle && r.pass) {
        ++n;
      }
    }
  }
  return n;
}

std::uint64_t CampaignResult::fail_count(const std::string& oracle) const {
  std::uint64_t n = 0;
  for (const CaseOutcome& c : cases) {
    for (const OracleResult& r : c.oracles) {
      if (r.oracle == oracle && !r.pass) {
        ++n;
      }
    }
  }
  return n;
}

std::uint64_t CampaignResult::error_count() const {
  std::uint64_t n = 0;
  for (const CaseOutcome& c : cases) {
    if (!c.ran()) {
      ++n;
    }
  }
  return n;
}

CampaignResult run_campaign(const CampaignOptions& options) {
  CampaignResult result;
  for (const Oracle& oracle : oracle_library(options.bounds)) {
    result.oracle_names.push_back(oracle.name);
  }

  sys::BatchRunner runner{options.threads};
  std::vector<sys::BatchRunner::Job<CaseOutcome>> jobs;
  jobs.reserve(options.count);
  for (std::uint64_t index = 0; index < options.count; ++index) {
    const std::string key = "dse/" +
                            std::to_string(options.campaign_seed) + "/" +
                            std::to_string(index);
    const CampaignOptions& opts = options;
    jobs.push_back({key, [index, &opts](sys::JobContext&) {
                      CaseOutcome outcome;
                      outcome.index = index;
                      outcome.config = sample_config(
                          opts.space, opts.campaign_seed, index);
                      try {
                        const DesignCase c =
                            run_design_case(outcome.config);
                        outcome.solution_tag =
                            c.exp.proposed_design.solution_tag();
                        outcome.baseline_seconds =
                            c.exp.baseline.total_seconds;
                        outcome.designed_seconds =
                            c.exp.proposed.total_seconds;
                        outcome.crossbar_seconds =
                            c.crossbar.total_seconds;
                        outcome.pipelined_makespan_seconds =
                            c.pipelined.makespan_seconds;
                        outcome.oracles =
                            run_all_oracles(c, opts.bounds);
                      } catch (const std::exception& e) {
                        outcome.error = e.what();
                      }
                      return outcome;
                    }});
  }
  result.cases = runner.run(std::move(jobs));

  // Shrink the first failure of each distinct oracle (index order), up to
  // the budget. Serial and deterministic.
  std::set<std::string> shrunk_oracles;
  for (const CaseOutcome& outcome : result.cases) {
    if (result.reproducers.size() >= options.max_shrinks) {
      break;
    }
    if (!outcome.ran()) {
      continue;
    }
    for (const OracleResult& r : outcome.oracles) {
      if (r.pass || shrunk_oracles.count(r.oracle) != 0) {
        continue;
      }
      shrunk_oracles.insert(r.oracle);
      const Oracle oracle = find_oracle(r.oracle, options.bounds);
      const ShrinkResult shrunk = shrink(outcome.config, oracle);
      Reproducer reproducer;
      reproducer.oracle = r.oracle;
      reproducer.expect = Expectation::kPass;  ///< Green once fixed.
      reproducer.message = shrunk.failure.message;
      reproducer.config = shrunk.config;
      result.reproducers.push_back(std::move(reproducer));
      if (result.reproducers.size() >= options.max_shrinks) {
        break;
      }
    }
  }
  return result;
}

std::string campaign_csv(const CampaignResult& result) {
  std::ostringstream out;
  out << "index,seed,kernels,edge_p,min_edge_bytes,max_edge_bytes,"
         "min_work,max_work,dup_p,stream_p,solution,baseline_s,designed_s,"
         "crossbar_s,pipelined_makespan_s";
  for (const std::string& oracle : result.oracle_names) {
    out << ',' << oracle;
  }
  out << ",error\n";
  for (const CaseOutcome& c : result.cases) {
    out << c.index << ',' << c.config.seed << ',' << c.config.kernel_count
        << ',' << fmt(c.config.kernel_edge_probability) << ','
        << c.config.min_edge_bytes << ',' << c.config.max_edge_bytes << ','
        << c.config.min_work_units << ',' << c.config.max_work_units << ','
        << fmt(c.config.duplicable_probability) << ','
        << fmt(c.config.streaming_probability) << ','
        << csv_safe(c.solution_tag) << ',' << fmt(c.baseline_seconds) << ','
        << fmt(c.designed_seconds) << ',' << fmt(c.crossbar_seconds) << ','
        << fmt(c.pipelined_makespan_seconds);
    for (const std::string& oracle : result.oracle_names) {
      const OracleResult* found = nullptr;
      for (const OracleResult& r : c.oracles) {
        if (r.oracle == oracle) {
          found = &r;
        }
      }
      out << ',' << (found == nullptr ? "-" : found->pass ? "1" : "0");
    }
    out << ',' << csv_safe(c.error) << '\n';
  }
  return out.str();
}

const char* campaign_section_marker() {
  return "## Design-space exploration campaign";
}

std::string campaign_markdown(const CampaignResult& result,
                              const CampaignOptions& options) {
  std::ostringstream md;
  md << campaign_section_marker() << "\n\n";
  md << result.cases.size() << " synthetic designs swept (campaign seed "
     << options.campaign_seed << ", kernels "
     << options.space.min_kernels << "-" << options.space.max_kernels
     << ", edge density " << options.space.min_edge_probability << "-"
     << options.space.max_edge_probability
     << "), each run through profiling, Algorithm 1 and all five system "
        "variants, then checked against the invariant-oracle library "
        "(docs/TESTING.md).\n\n";
  md << "| oracle | pass | fail | rate |\n|---|---|---|---|\n";
  for (const std::string& oracle : result.oracle_names) {
    const std::uint64_t pass = result.pass_count(oracle);
    const std::uint64_t failed = result.fail_count(oracle);
    const std::uint64_t total = pass + failed;
    std::ostringstream rate;
    rate.precision(4);
    rate << (total == 0
                 ? 0.0
                 : 100.0 * static_cast<double>(pass) /
                       static_cast<double>(total));
    md << "| " << oracle << " | " << pass << " | " << failed << " | "
       << rate.str() << "% |\n";
  }
  md << "\nCases erroring before the oracles ran: " << result.error_count()
     << ".\n";
  if (!result.reproducers.empty()) {
    md << "\nShrunk reproducers (replayed by `test_dse_regressions` once "
          "checked in under `tests/fixtures/dse/`):\n\n";
    for (const Reproducer& r : result.reproducers) {
      md << "- `" << reproducer_file_name(r) << "` — " << r.oracle << ": "
         << r.message << "\n";
    }
  }
  md << "\nFull per-design rows: `bench_results/dse_campaign.csv`.\n";
  return md.str();
}

std::vector<std::string> save_reproducers(const CampaignResult& result,
                                          const std::string& dir) {
  std::vector<std::string> paths;
  if (result.reproducers.empty()) {
    return paths;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  for (const Reproducer& reproducer : result.reproducers) {
    const std::string path = dir + "/" + reproducer_file_name(reproducer);
    std::ofstream out{path};
    require(out.good(), "cannot write reproducer: " + path);
    out << to_json(reproducer);
    paths.push_back(path);
  }
  return paths;
}

}  // namespace hybridic::dse
