#include "dse/campaign.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "dse/case_runner.hpp"
#include "dse/outcome_codec.hpp"
#include "dse/shrinker.hpp"
#include "store/adapters.hpp"
#include "store/codec.hpp"
#include "store/journal.hpp"
#include "sys/batch_runner.hpp"
#include "util/error.hpp"

namespace hybridic::dse {
namespace {

std::string fmt(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

std::string hex_key(std::uint64_t key) {
  std::ostringstream out;
  out << std::hex << key;
  return out.str();
}

std::string hex16(std::uint64_t h) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[i] = kDigits[(h >> (60 - 4 * i)) & 0xF];
  }
  return out;
}

/// 16-hex content hash of a row's profile identity: the exact string the
/// profile cache (and the L2 store, revision aside) keys the config by.
std::string profile_key_of(const apps::SyntheticConfig& config) {
  return hex16(store::fnv1a64(apps::ProfileCache::synthetic_key(config)));
}

/// CSV-safe rendering of a free-form message (no commas, no newlines).
std::string csv_safe(std::string text) {
  for (char& ch : text) {
    if (ch == ',' || ch == '\n' || ch == '\r') {
      ch = ';';
    }
  }
  return text;
}

std::uint64_t effective_rank_cap(const CampaignOptions& options) {
  if (options.max_rank_escalations != 0) {
    return options.max_rank_escalations;
  }
  // 2% of the sweep: escalated designs skew expensive to simulate (the
  // lowest analytic lower bounds are the high-volume, high-savings
  // candidates), so a wider cap erodes the tier speedup quickly.
  return std::max<std::uint64_t>(4, options.count / 50);
}

/// Run the annealed search for one settled case and attach its record.
/// The hard-constraint gate is the validator plus the simulation-free
/// oracle subset, evaluated on a candidate case that substitutes the
/// searched design for Algorithm 1's (the noc_only slot stays empty —
/// an instance-free design that validates clean). Single-board scope:
/// the searched design replaces the board-local Algorithm 1 run, so the
/// gate never needs the board-conservation oracle. Restarts run serially
/// (threads = 1) — the campaign already parallelizes across cases — and
/// the annealer seed is the case's own config seed, so the record
/// depends only on (config, search options), never on thread count.
void attach_search(CaseOutcome& outcome, const DesignCase& c,
                   const CampaignOptions& options) {
  search::AnnealOptions anneal;
  anneal.seed = outcome.config.seed;
  anneal.restarts = options.search_restarts;
  anneal.iterations = options.search_iterations;
  anneal.threads = 1;
  anneal.gate = [&options, &c](const sys::AppSchedule& schedule,
                               const core::DesignResult& design)
      -> std::optional<std::string> {
    if (std::optional<std::string> invalid =
            search::default_gate(schedule, design)) {
      return invalid;
    }
    DesignCase candidate;
    candidate.config = c.config;
    candidate.app = c.app;
    candidate.schedule = schedule;
    candidate.exp.proposed_design = design;
    candidate.theta_seconds_per_byte = c.theta_seconds_per_byte;
    for (const Oracle& oracle : oracle_library(options.bounds, false)) {
      if (oracle.needs_cycle) {
        continue;
      }
      const OracleResult verdict = oracle.check(candidate);
      if (!verdict.pass) {
        return verdict.oracle + ": " + verdict.message;
      }
    }
    return std::nullopt;
  };
  const sys::PlatformConfig platform;
  const core::DesignInput input = sys::make_design_input(c.schedule, platform);
  outcome.searched =
      search::anneal_interconnect(c.schedule, input, platform, anneal)
          .record();
}

/// One full cycle-accurate evaluation (the pre-tier job body), plus the
/// tier record: the analytic estimate is attached from the case's own
/// schedule and design — no second profiling run — so every simulated row
/// carries a band check.
CaseOutcome run_cycle_outcome(std::uint64_t index,
                              const CampaignOptions& options,
                              tiers::TieredEvaluator& evaluator,
                              apps::ProfileCache* cache,
                              tiers::EscalationReason reason) {
  CaseOutcome outcome;
  outcome.index = index;
  outcome.config = sample_config(options.space, options.campaign_seed, index);
  outcome.escalation = reason;
  outcome.simulated = true;  ///< The cycle engine owns this row (even on
                             ///< error, so auto rows mirror cycle rows).
  try {
    if (options.job_started_hook) {
      options.job_started_hook(index);
    }
    const DesignCase c = run_design_case(outcome.config, cache);
    outcome.solution_tag = c.exp.proposed_design.solution_tag();
    outcome.baseline_seconds = c.exp.baseline.total_seconds;
    outcome.designed_seconds = c.exp.proposed.total_seconds;
    outcome.crossbar_seconds = c.crossbar.total_seconds;
    outcome.pipelined_makespan_seconds = c.pipelined.makespan_seconds;
    outcome.oracles = run_all_oracles(c, options.bounds);
    if (c.multi_run != nullptr) {
      outcome.multi_total_seconds = c.multi_run->run.total_seconds;
      outcome.inter_board_bytes = c.multi_run->inter_board_bytes;
      outcome.board_link_reroutes = c.multi_run->board_link_reroutes;
    }
    if (c.multi_design != nullptr) {
      outcome.cut_bytes = c.multi_design->partition.cut_bytes.count();
    }
    outcome.analytic =
        evaluator.estimate(c.schedule, c.exp.proposed_design);
    outcome.measured_designed_kernel_seconds =
        c.exp.proposed.kernel_seconds();
    outcome.band_violation = !outcome.analytic->contains_designed(
        outcome.measured_designed_kernel_seconds);
    if (options.search) {
      attach_search(outcome, c, options);
    }
  } catch (const store::StoreError&) {
    // Transient by classification (a flaky filesystem, not a property of
    // the design): propagate so the supervisor can retry with backoff.
    throw;
  } catch (const std::exception& e) {
    outcome.error = e.what();
  }
  return outcome;
}

/// The analytic-tier job body: profile + Algorithm 1 + estimate + the
/// sim-free oracles, never an event queue.
CaseOutcome run_analytic_outcome(std::uint64_t index,
                                 const CampaignOptions& options,
                                 tiers::TieredEvaluator& evaluator,
                                 apps::ProfileCache* cache) {
  CaseOutcome outcome;
  outcome.index = index;
  outcome.config = sample_config(options.space, options.campaign_seed, index);
  try {
    if (options.job_started_hook) {
      options.job_started_hook(index);
    }
    tiers::AnalyticCase analytic = evaluator.analyze(outcome.config, cache);
    outcome.solution_tag = analytic.proposed.solution_tag();
    outcome.analytic = analytic.estimate;

    // Sim-free oracles run on a partial case: schedule + designs only.
    // The graph pointer stays valid across the moves (the profiler that
    // owns it is held by the shared ProfiledApp).
    DesignCase c;
    c.config = outcome.config;
    c.app = std::move(analytic.app);
    c.schedule = std::move(analytic.schedule);
    c.exp.proposed_design = std::move(analytic.proposed);
    c.exp.noc_only_design = std::move(analytic.noc_only);
    c.theta_seconds_per_byte = analytic.theta_seconds_per_byte;
    if (outcome.config.board_count > 1) {
      // The two-level partition + per-board designs are sim-free, so the
      // analytic tier can run the board-conservation oracle too.
      core::MultiBoardDesignInput input;
      input.base =
          sys::make_design_input(c.schedule, sys::PlatformConfig{});
      input.board_count = outcome.config.board_count;
      c.multi_design = std::make_shared<const core::MultiBoardDesign>(
          core::design_multi_board(input));
      outcome.cut_bytes = c.multi_design->partition.cut_bytes.count();
    }
    for (const Oracle& oracle :
         oracle_library(options.bounds, c.multi_design != nullptr)) {
      if (!oracle.needs_cycle) {
        outcome.oracles.push_back(oracle.check(c));
      }
    }
    if (options.search) {
      attach_search(outcome, c, options);
    }
  } catch (const store::StoreError&) {
    throw;  // Transient: the supervisor retries with backoff.
  } catch (const std::exception& e) {
    outcome.error = e.what();
  }
  return outcome;
}

/// Serial post-pass: congruent/profile_reused flags + tier stats, in index
/// order.
void finalize_tier_record(CampaignResult& result,
                          const CampaignOptions& options) {
  TierStats& stats = result.tier_stats;
  stats.mode = options.tier;
  std::set<std::string> seen_profiles;
  for (CaseOutcome& outcome : result.cases) {
    outcome.profile_key = profile_key_of(outcome.config);
    outcome.profile_reused = !seen_profiles.insert(outcome.profile_key).second;
    if (outcome.profile_reused) {
      ++stats.reused_profiles;
    }
  }
  stats.distinct_profiles = seen_profiles.size();
  std::set<std::uint64_t> seen_keys;
  for (CaseOutcome& outcome : result.cases) {
    if (!outcome.analytic.has_value()) {
      continue;
    }
    ++stats.analytic_evals;
    outcome.congruent =
        !seen_keys.insert(outcome.analytic->congruence_key).second;
    if (outcome.congruent) {
      ++stats.congruent_designs;
    }
    if (outcome.simulated) {
      ++stats.band_checks;
      if (outcome.band_violation) {
        ++stats.band_violations;
      }
      const double measured = outcome.measured_designed_kernel_seconds;
      const double mid = outcome.analytic->designed_kernel_seconds;
      if (mid > 0.0) {
        stats.worst_measured_over_analytic =
            std::max(stats.worst_measured_over_analytic, measured / mid);
      }
      if (measured > 0.0) {
        stats.worst_analytic_over_measured =
            std::max(stats.worst_analytic_over_measured, mid / measured);
      }
    }
  }
  stats.distinct_signatures = seen_keys.size();
  for (const CaseOutcome& outcome : result.cases) {
    if (outcome.simulated) {
      ++stats.cycle_evals;
    }
    if (outcome.escalation == tiers::EscalationReason::kRankOverlap) {
      ++stats.escalated_rank;
    }
    if (outcome.escalation == tiers::EscalationReason::kOracle) {
      ++stats.escalated_oracle;
    }
  }
}

/// Deterministic row for a poison job: config fields only, a stable
/// "quarantined: ..." note (no measured times), no verdicts — so a
/// wedged-then-resumed campaign and an uninterrupted one print the
/// identical row.
CaseOutcome quarantine_outcome(std::uint64_t index,
                               const CampaignOptions& options,
                               const std::string& error) {
  CaseOutcome outcome;
  outcome.index = index;
  outcome.config = sample_config(options.space, options.campaign_seed, index);
  outcome.quarantined = true;
  outcome.error = "quarantined: " + error;
  return outcome;
}

CaseOutcome skipped_outcome(std::uint64_t index,
                            const CampaignOptions& options) {
  CaseOutcome outcome;
  outcome.index = index;
  outcome.config = sample_config(options.space, options.campaign_seed, index);
  outcome.skipped = true;
  outcome.error = "skipped: interrupted before start";
  return outcome;
}

/// Everything a job body touches, heap-held behind one shared_ptr: a
/// watchdog-abandoned attempt may outlive run_campaign's frame, so job
/// closures capture this by value and never reference the stack.
struct CampaignState {
  CampaignOptions options;
  tiers::TieredEvaluator evaluator;
  apps::ProfileCache profile_cache;
  std::shared_ptr<store::Store> disk;
};

using CaseBody = std::function<CaseOutcome(
    const std::shared_ptr<CampaignState>&, std::uint64_t)>;

/// One supervised batch over `indices`: restored rows come straight from
/// the journal replay, live rows run under the watchdog/retry/stop-gate
/// supervisor, and every settled row (ok or quarantined) is journaled the
/// moment it finishes — a SIGKILL loses at most the in-flight jobs.
std::vector<CaseOutcome> run_case_batch(
    sys::BatchRunner& runner, const std::shared_ptr<CampaignState>& state,
    const std::vector<std::uint64_t>& indices,
    const std::function<std::string(std::uint64_t)>& key_of,
    const CaseBody& body,
    const std::map<std::string, CaseOutcome>& restored,
    store::Journal* journal, const std::string& fingerprint,
    CampaignResult& result) {
  std::vector<CaseOutcome> outcomes(indices.size());
  std::vector<std::uint64_t> live;
  std::vector<std::size_t> live_slot;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::uint64_t index = indices[i];
    const auto it = restored.find(key_of(index));
    if (it != restored.end()) {
      CaseOutcome outcome = it->second;
      outcome.resumed = true;
      ++result.resumed_count;
      if (outcome.quarantined) {
        ++result.quarantined_count;
      }
      outcomes[i] = std::move(outcome);
    } else {
      live.push_back(index);
      live_slot.push_back(i);
    }
  }
  if (live.empty()) {
    return outcomes;
  }

  sys::SuperviseOptions supervise;
  supervise.job_timeout_seconds = state->options.job_timeout_seconds;
  supervise.transient_retries = state->options.transient_retries;
  supervise.backoff_initial_seconds = state->options.backoff_initial_seconds;
  supervise.is_transient = [](const std::exception& e) {
    return dynamic_cast<const store::StoreError*>(&e) != nullptr;
  };
  supervise.stop_requested = state->options.stop_requested;

  std::vector<sys::BatchRunner::Job<CaseOutcome>> jobs;
  jobs.reserve(live.size());
  for (const std::uint64_t index : live) {
    // Value captures only: an abandoned attempt thread keeps its own
    // shared_ptr to the campaign state and its own copy of the body.
    jobs.push_back({key_of(index), [state, body, index](sys::JobContext&) {
                      return body(state, index);
                    }});
  }

  const auto on_settled =
      [&live, &state, journal, &fingerprint, &key_of](
          std::size_t slot, const sys::SupervisedResult<CaseOutcome>& r) {
        if (journal == nullptr || r.status == sys::JobStatus::kSkipped) {
          return;  // Skipped jobs are NOT journaled: a resume re-runs them.
        }
        const std::uint64_t index = live[slot];
        const CaseOutcome outcome =
            r.status == sys::JobStatus::kOk
                ? *r.value
                : quarantine_outcome(index, state->options, r.error);
        journal->append(fingerprint, key_of(index), encode_outcome(outcome));
      };

  std::vector<sys::SupervisedResult<CaseOutcome>> slots =
      runner.run_supervised(std::move(jobs), supervise, on_settled);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    sys::SupervisedResult<CaseOutcome>& slot = slots[i];
    CaseOutcome& outcome = outcomes[live_slot[i]];
    switch (slot.status) {
      case sys::JobStatus::kOk:
        outcome = std::move(*slot.value);
        break;
      case sys::JobStatus::kTimeout:
      case sys::JobStatus::kCrashed:
        outcome = quarantine_outcome(live[i], state->options, slot.error);
        ++result.quarantined_count;
        break;
      case sys::JobStatus::kSkipped:
        outcome = skipped_outcome(live[i], state->options);
        ++result.skipped_count;
        result.interrupted = true;
        break;
    }
  }
  return outcomes;
}

}  // namespace

std::string campaign_fingerprint(const CampaignOptions& options) {
  using store::hexf;
  const SweepSpace& space = options.space;
  const OracleBounds& bounds = options.bounds;
  std::ostringstream s;
  s << "campaign-fp 1"
    << "|rev " << store::kEngineRevision
    << "|tier " << tiers::to_string(options.tier)
    << "|seed " << options.campaign_seed
    << "|count " << options.count
    << "|shard " << options.shard_index << '/' << options.shard_count
    << "|kernels " << space.min_kernels << ' ' << space.max_kernels
    << "|edgep " << hexf(space.min_edge_probability) << ' '
    << hexf(space.max_edge_probability)
    << "|bytes " << space.min_edge_bytes_floor << ' '
    << space.max_edge_bytes_ceiling
    << "|work " << space.min_work_units_floor << ' '
    << space.max_work_units_ceiling
    << "|boards " << space.min_boards << ' ' << space.max_boards
    << "|topologies";
  for (const std::string& topology : space.board_topologies) {
    s << ' ' << topology;
  }
  s << "|bounds " << hexf(bounds.baseline_perf_band) << ' '
    << hexf(bounds.proposed_perf_band) << ' ' << hexf(bounds.speedup_slack)
    << ' ' << hexf(bounds.pipeline_slack)
    << "|watchdog " << hexf(options.job_timeout_seconds);
  // Appended only when search is on, so every pre-search campaign keeps
  // the fingerprint (and therefore the journal validity) it always had.
  if (options.search) {
    s << "|search anneal r" << options.search_restarts << " i"
      << options.search_iterations;
  }
  return hex16(store::fnv1a64(s.str()));
}

apps::SyntheticConfig sample_config(const SweepSpace& space,
                                    std::uint64_t campaign_seed,
                                    std::uint64_t index) {
  // One private stream per (campaign, index); splitmix seeding decorrelates
  // neighbouring indices.
  Rng rng{campaign_seed * 0x9E3779B97F4A7C15ULL + index + 1};

  apps::SyntheticConfig config;
  config.kernel_count = static_cast<std::uint32_t>(
      rng.between(space.min_kernels, space.max_kernels));
  config.kernel_edge_probability =
      space.min_edge_probability +
      rng.uniform() * (space.max_edge_probability -
                       space.min_edge_probability);
  const std::uint64_t bytes_a = rng.between(space.min_edge_bytes_floor,
                                            space.max_edge_bytes_ceiling);
  const std::uint64_t bytes_b = rng.between(space.min_edge_bytes_floor,
                                            space.max_edge_bytes_ceiling);
  config.min_edge_bytes = std::min(bytes_a, bytes_b);
  config.max_edge_bytes = std::max(bytes_a, bytes_b);
  const std::uint64_t work_a = rng.between(space.min_work_units_floor,
                                           space.max_work_units_ceiling);
  const std::uint64_t work_b = rng.between(space.min_work_units_floor,
                                           space.max_work_units_ceiling);
  config.min_work_units = std::min(work_a, work_b);
  config.max_work_units = std::max(work_a, work_b);
  config.duplicable_probability = rng.uniform();
  config.streaming_probability = rng.uniform();
  config.seed = rng.next();

  // Board draws come strictly AFTER every existing field and only when
  // the space actually sweeps boards: a single-board campaign consumes
  // the identical RNG stream it always did, so its configs (and
  // therefore its CSV) replay byte for byte.
  if (space.multi_board()) {
    config.board_count = static_cast<std::uint32_t>(
        rng.between(std::max<std::uint32_t>(1, space.min_boards),
                    space.max_boards));
    const auto& topologies = space.board_topologies;
    if (!topologies.empty()) {
      config.board_topology = topologies[static_cast<std::size_t>(
          rng.between(0, static_cast<std::uint64_t>(topologies.size()) - 1))];
    }
  }
  return config;
}

bool CaseOutcome::all_pass() const {
  if (!ran()) {
    return false;
  }
  return std::all_of(oracles.begin(), oracles.end(),
                     [](const OracleResult& r) { return r.pass; });
}

std::uint64_t CampaignResult::pass_count(const std::string& oracle) const {
  std::uint64_t n = 0;
  for (const CaseOutcome& c : cases) {
    for (const OracleResult& r : c.oracles) {
      if (r.oracle == oracle && r.pass) {
        ++n;
      }
    }
  }
  return n;
}

std::uint64_t CampaignResult::fail_count(const std::string& oracle) const {
  std::uint64_t n = 0;
  for (const CaseOutcome& c : cases) {
    for (const OracleResult& r : c.oracles) {
      if (r.oracle == oracle && !r.pass) {
        ++n;
      }
    }
  }
  return n;
}

std::uint64_t CampaignResult::error_count() const {
  std::uint64_t n = 0;
  for (const CaseOutcome& c : cases) {
    if (!c.ran()) {
      ++n;
    }
  }
  return n;
}

CampaignResult run_campaign(const CampaignOptions& options) {
  require(options.shard_count >= 1, "shard count must be >= 1");
  require(options.shard_index < options.shard_count,
          "shard index must be < shard count");
  // Auto-tier escalation ranks every estimate against every other; a
  // shard only holds its own, so the selection (and thus the merged CSV)
  // would differ from an unsharded run. Shard analytic or cycle sweeps.
  require(options.shard_count == 1 || options.tier != tiers::TierMode::kAuto,
          "--shard requires --tier=analytic or --tier=cycle: auto-mode "
          "escalation selection is global");
  // Journaling keys one ledger record per job; auto mode re-decides the
  // escalation set globally on every run, so a partial ledger could not
  // reproduce it. Same restriction (and reason) as sharding.
  require(options.journal_path.empty() ||
              options.tier != tiers::TierMode::kAuto,
          "--journal requires --tier=analytic or --tier=cycle: auto-mode "
          "escalation selection is global");
  require(!options.resume || !options.journal_path.empty(),
          "--resume requires --journal");

  CampaignResult result;
  result.multi_board = options.space.multi_board();
  result.searched = options.search;
  for (const Oracle& oracle :
       oracle_library(options.bounds, result.multi_board)) {
    result.oracle_names.push_back(oracle.name);
  }

  // This shard's slice of the sweep, with global indices preserved so the
  // merged CSV is indistinguishable from an unsharded run.
  std::vector<std::uint64_t> owned;
  owned.reserve(static_cast<std::size_t>(
      options.count / options.shard_count + 1));
  for (std::uint64_t index = options.shard_index; index < options.count;
       index += options.shard_count) {
    owned.push_back(index);
  }

  // One evaluator for the whole campaign: one theta probe, one congruence
  // cache. estimate() is thread-safe and pure, so sharing it across jobs
  // never breaks the determinism contract. The profile cache memoizes
  // QUAD runs across design points; with a store attached both caches
  // gain a persistent L2 tier shared across processes and shards. All of
  // it lives behind one shared_ptr (CampaignState) so watchdog-abandoned
  // attempts never dangle into this frame.
  auto state = std::make_shared<CampaignState>();
  state->options = options;
  state->profile_cache.set_capacity(
      static_cast<std::size_t>(options.profile_cache_max_entries),
      options.profile_cache_max_bytes);
  if (!options.store_dir.empty()) {
    state->disk = std::make_shared<store::Store>(options.store_dir);
    state->profile_cache.set_l2(
        std::make_shared<store::ProfileStoreL2>(state->disk));
    state->evaluator.set_estimate_l2(std::make_shared<store::EstimateStoreL2>(
        state->disk,
        store::estimate_scope(state->evaluator.platform(),
                              state->evaluator.calibration())));
  }
  sys::BatchRunner runner{options.threads};

  // Run journal (docs/MODEL.md §17): replay the ledger first when
  // resuming, then open it for appending. Records from a different
  // campaign fingerprint — or damaged beyond their checksum — are
  // ignored: a stale or torn ledger degrades to re-execution.
  const std::string fingerprint = campaign_fingerprint(options);
  std::unique_ptr<store::Journal> journal;
  std::map<std::string, CaseOutcome> restored;
  if (!options.journal_path.empty()) {
    if (options.resume) {
      store::Journal::ReadResult ledger =
          store::Journal::read(options.journal_path);
      result.journal_skipped_lines = ledger.skipped_lines;
      for (store::Journal::Entry& entry : ledger.entries) {
        if (entry.fingerprint != fingerprint ||
            restored.count(entry.key) != 0) {
          continue;  // Stale campaign, or a benign duplicate (first wins —
                     // re-appends of a completed job carry identical bytes).
        }
        std::optional<CaseOutcome> outcome = decode_outcome(entry.payload);
        if (!outcome.has_value()) {
          ++result.journal_skipped_lines;
          continue;
        }
        restored.emplace(entry.key, std::move(*outcome));
      }
    }
    journal = std::make_unique<store::Journal>(options.journal_path);
  }

  const std::uint64_t campaign_seed = options.campaign_seed;
  const std::function<std::string(std::uint64_t)> cycle_key =
      [campaign_seed](std::uint64_t index) {
        // The same key in cycle mode and for auto-mode escalations:
        // escalated rows replay the identical RNG stream, so their CSV
        // rows match a pure --tier=cycle campaign byte for byte.
        return "dse/" + std::to_string(campaign_seed) + "/" +
               std::to_string(index);
      };
  const std::function<std::string(std::uint64_t)> tier_key =
      [campaign_seed](std::uint64_t index) {
        return "tier/" + std::to_string(campaign_seed) + "/" +
               std::to_string(index);
      };

  if (options.tier == tiers::TierMode::kCycle) {
    const CaseBody body = [](const std::shared_ptr<CampaignState>& s,
                             std::uint64_t index) {
      return run_cycle_outcome(index, s->options, s->evaluator,
                               &s->profile_cache,
                               tiers::EscalationReason::kRequested);
    };
    result.cases = run_case_batch(runner, state, owned, cycle_key, body,
                                  restored, journal.get(), fingerprint,
                                  result);
  } else {
    // Phase 1: the analytic tier over every owned design point.
    const CaseBody body = [](const std::shared_ptr<CampaignState>& s,
                             std::uint64_t index) {
      return run_analytic_outcome(index, s->options, s->evaluator,
                                  &s->profile_cache);
    };
    result.cases = run_case_batch(runner, state, owned, tier_key, body,
                                  restored, journal.get(), fingerprint,
                                  result);

    // Phase 2 (serial): pick the designs that must climb to the cycle
    // tier — sim-free oracle failures and ranked contenders.
    if (options.tier == tiers::TierMode::kAuto) {
      std::vector<const tiers::TierEstimate*> estimates;
      std::vector<bool> oracle_demands;
      estimates.reserve(result.cases.size());
      oracle_demands.reserve(result.cases.size());
      for (const CaseOutcome& outcome : result.cases) {
        estimates.push_back(outcome.analytic.has_value()
                                ? &*outcome.analytic
                                : nullptr);
        bool demand = false;
        for (const OracleResult& r : outcome.oracles) {
          demand = demand || !r.pass;
        }
        oracle_demands.push_back(demand);
      }
      const std::uint64_t cap = effective_rank_cap(options);
      result.tier_stats.rank_cap = cap;
      double best_upper = 0.0;
      bool have_upper = false;
      for (const tiers::TierEstimate* estimate : estimates) {
        if (estimate != nullptr &&
            (!have_upper ||
             estimate->designed_upper_seconds < best_upper)) {
          best_upper = estimate->designed_upper_seconds;
          have_upper = true;
        }
      }
      for (std::size_t i = 0; i < estimates.size(); ++i) {
        if (estimates[i] != nullptr && !oracle_demands[i] &&
            estimates[i]->designed_lower_seconds <= best_upper) {
          ++result.tier_stats.rank_contenders;
        }
      }
      const std::vector<tiers::EscalationReason> reasons =
          tiers::select_escalations(estimates, oracle_demands, cap);

      // Phase 3: cycle-accurate evaluation of the escalated designs.
      std::vector<std::uint64_t> escalated;
      for (std::uint64_t index = 0; index < reasons.size(); ++index) {
        if (reasons[index] != tiers::EscalationReason::kNone) {
          escalated.push_back(index);
        }
      }
      auto shared_reasons =
          std::make_shared<std::vector<tiers::EscalationReason>>(reasons);
      const CaseBody cycle_body = [shared_reasons](
                                      const std::shared_ptr<CampaignState>& s,
                                      std::uint64_t index) {
        return run_cycle_outcome(index, s->options, s->evaluator,
                                 &s->profile_cache, (*shared_reasons)[index]);
      };
      std::vector<CaseOutcome> escalated_outcomes = run_case_batch(
          runner, state, escalated, cycle_key, cycle_body, restored,
          journal.get(), fingerprint, result);
      for (std::size_t slot = 0; slot < escalated.size(); ++slot) {
        if (escalated_outcomes[slot].skipped) {
          continue;  // Drained before its cycle run: keep the analytic row.
        }
        result.cases[escalated[slot]] =
            std::move(escalated_outcomes[slot]);
      }
    }
  }

  finalize_tier_record(result, options);

  // Live counters for stdout reporting (never the CSV/REPORT: they vary
  // with thread count, shard split, and store warmth).
  result.profile_cache_stats = state->profile_cache.stats();
  result.estimate_l2_hits = state->evaluator.cache().l2_hits();
  result.estimate_l2_stores = state->evaluator.cache().l2_stores();
  if (state->disk != nullptr) {
    result.store_stats = state->disk->stats();
  }
  if (options.stop_requested != nullptr &&
      options.stop_requested->load(std::memory_order_relaxed)) {
    result.interrupted = true;
  }

  // Shrink the first failure of each distinct oracle (index order), up to
  // the budget. Serial and deterministic. An interrupted (draining) run
  // skips all shrinking to exit promptly — the resumed run emits the full
  // set.
  std::set<std::string> shrunk_oracles;
  for (const CaseOutcome& outcome : result.cases) {
    if (result.interrupted ||
        result.reproducers.size() >= options.max_shrinks) {
      break;
    }
    if (!outcome.ran() || outcome.quarantined || outcome.skipped) {
      continue;
    }
    for (const OracleResult& r : outcome.oracles) {
      if (r.pass || shrunk_oracles.count(r.oracle) != 0) {
        continue;
      }
      shrunk_oracles.insert(r.oracle);
      const Oracle oracle = find_oracle(r.oracle, options.bounds);
      const ShrinkResult shrunk = shrink(outcome.config, oracle);
      Reproducer reproducer;
      reproducer.oracle = r.oracle;
      reproducer.expect = Expectation::kPass;  ///< Green once fixed.
      reproducer.message = shrunk.failure.message;
      reproducer.config = shrunk.config;
      result.reproducers.push_back(std::move(reproducer));
      if (result.reproducers.size() >= options.max_shrinks) {
        break;
      }
    }
  }

  // Every quarantined row (fresh or resumed) yields a reproducer so the
  // poison config is pinned in the checked-in JSON format. The shrink
  // probe is itself supervised — a candidate of a genuinely wedged config
  // wedges too, costing a full watchdog budget per probe, hence the
  // separate (small) attempt budget. A wedge keyed on the environment
  // rather than the config (e.g. the test harness wedging one index)
  // fails to reproduce under the probe and is pinned unshrunk. Not gated
  // by max_shrinks: a --smoke run (max_shrinks 0) must still pin poison
  // jobs. "quarantine-*" names are not library oracles — these files
  // document the quarantine, they do not replay.
  for (const CaseOutcome& outcome : result.cases) {
    if (!outcome.quarantined || result.interrupted) {
      continue;
    }
    const double probe_timeout = options.job_timeout_seconds;
    const auto still_wedged =
        [probe_timeout](const apps::SyntheticConfig& candidate) {
          // The probe's copy of the candidate keeps an abandoned probe
          // thread safe after this frame unwinds.
          return sys::probe_supervised(
                     [candidate] { (void)run_design_case(candidate); },
                     probe_timeout) != sys::JobStatus::kOk;
        };
    const ConfigShrink shrunk = shrink_config(
        outcome.config, still_wedged, options.quarantine_shrink_attempts);
    Reproducer reproducer;
    reproducer.oracle = outcome.error.find("watchdog") != std::string::npos
                            ? "quarantine-timeout"
                            : "quarantine-crash";
    reproducer.expect = Expectation::kFail;  ///< Pinned live failure.
    reproducer.message = outcome.error;
    reproducer.config = shrunk.config;
    result.reproducers.push_back(std::move(reproducer));
  }
  return result;
}

std::string campaign_csv(const CampaignResult& result) {
  std::ostringstream out;
  out << "index,seed,kernels,edge_p,min_edge_bytes,max_edge_bytes,"
         "min_work,max_work,dup_p,stream_p,solution,baseline_s,designed_s,"
         "crossbar_s,pipelined_makespan_s,measured_kernel_s";
  for (const std::string& oracle : result.oracle_names) {
    out << ',' << oracle;
  }
  out << ",tier,escalation,analytic_baseline_s,analytic_designed_s,"
         "analytic_lo_s,analytic_hi_s,noc_hop_bytes,congruence_key,"
         "congruent,profile_key,profile_reused,band_violation";
  // Searched columns exist only in --search campaigns: every other
  // campaign keeps its historical schema byte for byte.
  if (result.searched) {
    out << ",searched_solution,searched_analytic_s,searched_alg1_s,"
           "searched_luts,searched_alg1_luts,searched_gain,"
           "searched_restart,searched_proposed,searched_accepted,"
           "searched_rejected,searched_cache_hits";
  }
  // Board columns exist only in multi-board campaigns: single-board CSVs
  // keep their historical schema byte for byte (and merge_shards.py
  // refuses to mix the two schemas).
  if (result.multi_board) {
    out << ",boards,board_topology,cut_bytes,multi_total_s,"
           "inter_board_bytes,board_reroutes";
  }
  out << ",quarantined,error\n";
  for (const CaseOutcome& c : result.cases) {
    out << c.index << ',' << c.config.seed << ',' << c.config.kernel_count
        << ',' << fmt(c.config.kernel_edge_probability) << ','
        << c.config.min_edge_bytes << ',' << c.config.max_edge_bytes << ','
        << c.config.min_work_units << ',' << c.config.max_work_units << ','
        << fmt(c.config.duplicable_probability) << ','
        << fmt(c.config.streaming_probability) << ','
        << csv_safe(c.solution_tag);
    // Analytic-only rows never ran a simulator: their cycle timings are
    // "-" (absent), not zero.
    if (c.simulated) {
      out << ',' << fmt(c.baseline_seconds) << ',' << fmt(c.designed_seconds)
          << ',' << fmt(c.crossbar_seconds) << ','
          << fmt(c.pipelined_makespan_seconds) << ','
          << fmt(c.measured_designed_kernel_seconds);
    } else {
      out << ",-,-,-,-,-";
    }
    for (const std::string& oracle : result.oracle_names) {
      const OracleResult* found = nullptr;
      for (const OracleResult& r : c.oracles) {
        if (r.oracle == oracle) {
          found = &r;
        }
      }
      out << ',' << (found == nullptr ? "-" : found->pass ? "1" : "0");
    }
    // Quarantined/skipped rows never picked a tier — their tier cell is
    // "-", which also keeps the resumed CSV independent of which run
    // quarantined the job.
    if (c.quarantined || c.skipped) {
      out << ",-," << to_string(c.escalation);
    } else {
      out << ',' << c.tier_name() << ',' << to_string(c.escalation);
    }
    if (c.analytic.has_value()) {
      out << ',' << fmt(c.analytic->baseline_kernel_seconds) << ','
          << fmt(c.analytic->designed_kernel_seconds) << ','
          << fmt(c.analytic->designed_lower_seconds) << ','
          << fmt(c.analytic->designed_upper_seconds) << ','
          << c.analytic->noc_hop_bytes << ','
          << hex_key(c.analytic->congruence_key) << ','
          << (c.congruent ? '1' : '0');
    } else {
      out << ",-,-,-,-,-,-,-";
    }
    out << ',' << c.profile_key << ',' << (c.profile_reused ? '1' : '0');
    out << ','
        << (c.simulated && c.analytic.has_value()
                ? (c.band_violation ? "1" : "0")
                : "-");
    if (result.searched) {
      if (c.searched.has_value()) {
        const search::SearchRecord& s = *c.searched;
        out << ',' << csv_safe(s.solution_tag) << ','
            << fmt(s.analytic_seconds) << ','
            << fmt(s.algorithm1_analytic_seconds) << ',' << s.luts << ','
            << s.algorithm1_luts << ',' << fmt(s.gain) << ','
            << s.best_restart << ',' << s.proposed << ',' << s.accepted
            << ',' << s.rejected_illegal << ',' << s.cache_hits;
      } else {
        out << ",-,-,-,-,-,-,-,-,-,-,-";
      }
    }
    if (result.multi_board) {
      out << ',' << c.config.board_count << ',' << c.config.board_topology
          << ',' << c.cut_bytes;
      // The multi run only exists on simulated multi-board rows.
      if (c.simulated && c.config.board_count > 1) {
        out << ',' << fmt(c.multi_total_seconds) << ','
            << c.inter_board_bytes << ',' << c.board_link_reroutes;
      } else {
        out << ",-,-,-";
      }
    }
    out << ',' << (c.quarantined ? '1' : '0') << ',' << csv_safe(c.error)
        << '\n';
  }
  return out.str();
}

namespace {

/// Move-stat totals for the markdown digest.
struct SearchStatsTotals {
  std::uint64_t proposed = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_illegal = 0;
  std::uint64_t cache_hits = 0;
};

}  // namespace

const char* campaign_section_marker() {
  return "## Design-space exploration campaign";
}

std::string campaign_markdown(const CampaignResult& result,
                              const CampaignOptions& options) {
  std::ostringstream md;
  md << campaign_section_marker() << "\n\n";
  md << result.cases.size() << " synthetic designs swept (campaign seed "
     << options.campaign_seed << ", kernels "
     << options.space.min_kernels << "-" << options.space.max_kernels
     << ", edge density " << options.space.min_edge_probability << "-"
     << options.space.max_edge_probability
     << "), each run through profiling and Algorithm 1, priced by the "
        "tiered evaluation engine (docs/MODEL.md §14), and checked "
        "against the invariant-oracle library (docs/TESTING.md); "
        "cycle-tier rows additionally run all five system variants.\n\n";
  if (result.multi_board) {
    md << "Board dimension swept: " << options.space.min_boards << "-"
       << options.space.max_boards << " boards over topologies {";
    for (std::size_t i = 0; i < options.space.board_topologies.size(); ++i) {
      md << (i == 0 ? "" : ", ") << options.space.board_topologies[i];
    }
    md << "}; multi-board rows run the two-level design (min-cut board "
          "partition, then per-board Algorithm 1) and the inter-board "
          "link simulation, checked by the board-byte-conservation "
          "oracle.\n\n";
  }
  md << "| oracle | pass | fail | rate |\n|---|---|---|---|\n";
  for (const std::string& oracle : result.oracle_names) {
    const std::uint64_t pass = result.pass_count(oracle);
    const std::uint64_t failed = result.fail_count(oracle);
    const std::uint64_t total = pass + failed;
    std::ostringstream rate;
    rate.precision(4);
    rate << (total == 0
                 ? 0.0
                 : 100.0 * static_cast<double>(pass) /
                       static_cast<double>(total));
    md << "| " << oracle << " | " << pass << " | " << failed << " | "
       << rate.str() << "% |\n";
  }
  md << "\nCases erroring before the oracles ran: " << result.error_count()
     << ".\n";

  // Tier-disagreement table (docs/MODEL.md §14): how often the analytic
  // tier sufficed, why rows escalated, and how honest the band is.
  const TierStats& tiers_stats = result.tier_stats;
  std::ostringstream rate;
  rate.precision(4);
  rate << 100.0 * tiers_stats.escalation_rate(result.cases.size());
  md << "\n### Tier disagreement (`--tier=" << to_string(tiers_stats.mode)
     << "`)\n\n"
     << "| quantity | value |\n|---|---|\n"
     << "| analytic evaluations | " << tiers_stats.analytic_evals << " |\n"
     << "| cycle evaluations | " << tiers_stats.cycle_evals << " |\n"
     << "| escalations (rank-overlap / oracle) | "
     << tiers_stats.escalated_rank << " / " << tiers_stats.escalated_oracle
     << " |\n"
     << "| rank contenders before cap (cap) | "
     << tiers_stats.rank_contenders << " (" << tiers_stats.rank_cap
     << ") |\n"
     << "| escalation rate | " << rate.str() << "% |\n"
     << "| band checks / violations | " << tiers_stats.band_checks << " / "
     << tiers_stats.band_violations << " |\n";
  {
    std::ostringstream worst;
    worst.precision(4);
    worst << tiers_stats.worst_measured_over_analytic << "x / "
          << tiers_stats.worst_analytic_over_measured << "x";
    md << "| worst measured/analytic, analytic/measured | " << worst.str()
       << " |\n";
  }
  md << "| congruent designs / distinct signatures | "
     << tiers_stats.congruent_designs << " / "
     << tiers_stats.distinct_signatures << " |\n";
  md << "| reused profiles / distinct profiles | "
     << tiers_stats.reused_profiles << " / "
     << tiers_stats.distinct_profiles << " |\n";

  // Pareto digest of the annealed search against Algorithm 1. Regressed
  // and over-budget counts are structurally zero (the annealer seeds at
  // the greedy decisions and hard-caps candidates at Algorithm 1's LUT
  // total) — printing them keeps the claim falsifiable in the report.
  if (result.searched) {
    std::uint64_t rows = 0;
    std::uint64_t improved = 0;
    std::uint64_t matched = 0;
    std::uint64_t regressed = 0;
    std::uint64_t over_budget = 0;
    std::uint64_t fewer_luts = 0;
    double best_gain = 1.0;
    double sum_gain = 0.0;
    SearchStatsTotals totals;
    for (const CaseOutcome& c : result.cases) {
      if (!c.searched.has_value()) {
        continue;
      }
      const search::SearchRecord& s = *c.searched;
      ++rows;
      if (s.analytic_seconds < s.algorithm1_analytic_seconds) {
        ++improved;
      } else if (s.analytic_seconds == s.algorithm1_analytic_seconds) {
        ++matched;
      } else {
        ++regressed;
      }
      if (s.luts > s.algorithm1_luts) {
        ++over_budget;
      }
      if (s.luts < s.algorithm1_luts) {
        ++fewer_luts;
      }
      best_gain = std::max(best_gain, s.gain);
      sum_gain += s.gain;
      totals.proposed += s.proposed;
      totals.accepted += s.accepted;
      totals.rejected_illegal += s.rejected_illegal;
      totals.cache_hits += s.cache_hits;
    }
    std::ostringstream gains;
    gains.precision(4);
    gains << best_gain << "x best / "
          << (rows == 0 ? 1.0 : sum_gain / static_cast<double>(rows))
          << "x mean";
    md << "\n### Algorithm 1 vs searched (`--search=anneal`)\n\n"
       << "Seeded annealing over the move space of docs/MODEL.md §18 ("
       << options.search_restarts << " restarts x "
       << options.search_iterations
       << " iterations per case, oracle-gated, LUT-capped at Algorithm "
          "1's total), fitness = the analytic tier's designed kernel "
          "seconds.\n\n"
       << "| quantity | value |\n|---|---|\n"
       << "| searched rows | " << rows << " |\n"
       << "| improved on Algorithm 1 (analytic) | " << improved << " |\n"
       << "| matched Algorithm 1 | " << matched << " |\n"
       << "| regressed (must be 0) | " << regressed << " |\n"
       << "| over LUT budget (must be 0) | " << over_budget << " |\n"
       << "| improved while using fewer LUTs | " << fewer_luts << " |\n"
       << "| analytic gain | " << gains.str() << " |\n"
       << "| moves proposed / accepted / rejected illegal / cache hits | "
       << totals.proposed << " / " << totals.accepted << " / "
       << totals.rejected_illegal << " / " << totals.cache_hits << " |\n";
  }
  if (!result.reproducers.empty()) {
    md << "\nShrunk reproducers (replayed by `test_dse_regressions` once "
          "checked in under `tests/fixtures/dse/`):\n\n";
    for (const Reproducer& r : result.reproducers) {
      md << "- `" << reproducer_file_name(r) << "` — " << r.oracle << ": "
         << r.message << "\n";
    }
  }
  md << "\nFull per-design rows: `bench_results/dse_campaign.csv`.\n";
  return md.str();
}

std::vector<std::string> save_reproducers(const CampaignResult& result,
                                          const std::string& dir) {
  std::vector<std::string> paths;
  if (result.reproducers.empty()) {
    return paths;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  for (const Reproducer& reproducer : result.reproducers) {
    const std::string path = dir + "/" + reproducer_file_name(reproducer);
    std::ofstream out{path};
    require(out.good(), "cannot write reproducer: " + path);
    out << to_json(reproducer);
    paths.push_back(path);
  }
  return paths;
}

}  // namespace hybridic::dse
