#include "dse/reproducer.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "dse/case_runner.hpp"
#include "util/error.hpp"

namespace hybridic::dse {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  return out;
}

/// Minimal parser for the flat reproducer schema: one object of scalars
/// plus one nested "config" object of numeric scalars. Not a general JSON
/// parser — exactly what the fixture files need, with precise errors.
class FlatJsonParser {
public:
  explicit FlatJsonParser(const std::string& text) : text_(text) {}

  /// Top-level scalars (strings kept verbatim, numbers as written).
  std::map<std::string, std::string> scalars;
  /// The nested config object's numeric fields.
  std::map<std::string, std::string> config;

  void parse() {
    skip_ws();
    expect('{');
    parse_members(scalars, /*allow_nested_config=*/true);
    skip_ws();
    require(pos_ >= text_.size(), "trailing characters after reproducer");
  }

private:
  void parse_members(std::map<std::string, std::string>& into,
                     bool allow_nested_config) {
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (peek() == '{') {
        require(allow_nested_config && key == "config",
                "unexpected nested object at key '" + key + "'");
        ++pos_;
        parse_members(config, /*allow_nested_config=*/false);
      } else if (peek() == '"') {
        into[key] = parse_string();
      } else {
        into[key] = parse_number();
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char ch = text_[pos_++];
      if (ch == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': ch = '\n'; break;
          case 't': ch = '\t'; break;
          default: ch = esc;
        }
      }
      out += ch;
    }
    expect('"');
    return out;
  }

  std::string parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    require(pos_ > start, "expected a number at offset " +
                              std::to_string(start));
    return text_.substr(start, pos_ - start);
  }

  char peek() const {
    require(pos_ < text_.size(), "unexpected end of reproducer JSON");
    return text_[pos_];
  }

  void expect(char ch) {
    require(pos_ < text_.size() && text_[pos_] == ch,
            std::string{"expected '"} + ch + "' at offset " +
                std::to_string(pos_) + " of reproducer JSON");
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::uint64_t take_u64(std::map<std::string, std::string>& fields,
                       const std::string& key) {
  const auto it = fields.find(key);
  require(it != fields.end(), "reproducer config missing field: " + key);
  const std::uint64_t value = std::stoull(it->second);
  fields.erase(it);
  return value;
}

double take_double(std::map<std::string, std::string>& fields,
                   const std::string& key) {
  const auto it = fields.find(key);
  require(it != fields.end(), "reproducer config missing field: " + key);
  const double value = std::stod(it->second);
  fields.erase(it);
  return value;
}

std::string fmt_probability(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

}  // namespace

std::string to_json(const Reproducer& r) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": " << r.schema << ",\n";
  out << "  \"oracle\": \"" << json_escape(r.oracle) << "\",\n";
  out << "  \"expect\": \""
      << (r.expect == Expectation::kFail ? "fail" : "pass") << "\",\n";
  out << "  \"message\": \"" << json_escape(r.message) << "\",\n";
  out << "  \"config\": {\n";
  out << "    \"kernel_count\": " << r.config.kernel_count << ",\n";
  out << "    \"host_function_count\": " << r.config.host_function_count
      << ",\n";
  out << "    \"kernel_edge_probability\": "
      << fmt_probability(r.config.kernel_edge_probability) << ",\n";
  out << "    \"min_edge_bytes\": " << r.config.min_edge_bytes << ",\n";
  out << "    \"max_edge_bytes\": " << r.config.max_edge_bytes << ",\n";
  out << "    \"min_work_units\": " << r.config.min_work_units << ",\n";
  out << "    \"max_work_units\": " << r.config.max_work_units << ",\n";
  out << "    \"duplicable_probability\": "
      << fmt_probability(r.config.duplicable_probability) << ",\n";
  out << "    \"streaming_probability\": "
      << fmt_probability(r.config.streaming_probability) << ",\n";
  // Board fields only appear for multi-board configs, so every
  // single-board reproducer (including the checked-in fixtures) keeps its
  // historical byte-exact shape.
  if (r.config.board_count > 1) {
    out << "    \"board_count\": " << r.config.board_count << ",\n";
    out << "    \"board_topology\": \"" << json_escape(r.config.board_topology)
        << "\",\n";
  }
  out << "    \"seed\": " << r.config.seed << "\n";
  out << "  }\n";
  out << "}\n";
  return out.str();
}

Reproducer parse_reproducer(const std::string& json) {
  FlatJsonParser parser{json};
  parser.parse();

  Reproducer r;
  require(parser.scalars.count("schema") != 0,
          "reproducer missing field: schema");
  r.schema = static_cast<int>(std::stol(parser.scalars.at("schema")));
  require(r.schema == 1, "unsupported reproducer schema version: " +
                             std::to_string(r.schema));
  require(parser.scalars.count("oracle") != 0,
          "reproducer missing field: oracle");
  r.oracle = parser.scalars.at("oracle");
  require(parser.scalars.count("expect") != 0,
          "reproducer missing field: expect");
  const std::string expect = parser.scalars.at("expect");
  require(expect == "pass" || expect == "fail",
          "reproducer expect must be \"pass\" or \"fail\", got \"" + expect +
              "\"");
  r.expect = expect == "fail" ? Expectation::kFail : Expectation::kPass;
  if (parser.scalars.count("message") != 0) {
    r.message = parser.scalars.at("message");
  }

  std::map<std::string, std::string> config = parser.config;
  r.config.kernel_count =
      static_cast<std::uint32_t>(take_u64(config, "kernel_count"));
  r.config.host_function_count =
      static_cast<std::uint32_t>(take_u64(config, "host_function_count"));
  r.config.kernel_edge_probability =
      take_double(config, "kernel_edge_probability");
  r.config.min_edge_bytes = take_u64(config, "min_edge_bytes");
  r.config.max_edge_bytes = take_u64(config, "max_edge_bytes");
  r.config.min_work_units = take_u64(config, "min_work_units");
  r.config.max_work_units = take_u64(config, "max_work_units");
  r.config.duplicable_probability =
      take_double(config, "duplicable_probability");
  r.config.streaming_probability =
      take_double(config, "streaming_probability");
  // Optional multi-board fields (absent in single-board reproducers).
  if (config.count("board_count") != 0) {
    r.config.board_count =
        static_cast<std::uint32_t>(take_u64(config, "board_count"));
  }
  if (config.count("board_topology") != 0) {
    r.config.board_topology = config.at("board_topology");
    config.erase("board_topology");
  }
  r.config.seed = take_u64(config, "seed");
  if (!config.empty()) {
    require(false,
            "reproducer config has unknown field: " + config.begin()->first);
  }
  return r;
}

Reproducer load_reproducer(const std::string& path) {
  std::ifstream in{path};
  require(in.good(), "cannot read reproducer file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_reproducer(buffer.str());
}

OracleResult replay(const Reproducer& reproducer,
                    const OracleBounds& bounds) {
  const Oracle oracle = find_oracle(reproducer.oracle, bounds);
  const DesignCase c = run_design_case(reproducer.config);
  return oracle.check(c);
}

std::string reproducer_file_name(const Reproducer& reproducer) {
  return reproducer.oracle + "-seed" +
         std::to_string(reproducer.config.seed) + ".json";
}

}  // namespace hybridic::dse
