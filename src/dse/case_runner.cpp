#include "dse/case_runner.hpp"

#include <utility>

#include "sys/executor.hpp"

namespace hybridic::dse {

DesignCase run_design_case(const apps::SyntheticConfig& config,
                           apps::ProfileCache* cache) {
  DesignCase c;
  c.config = config;
  c.app = cache != nullptr
              ? cache->synthetic_app(config)
              : std::make_shared<const apps::ProfiledApp>(
                    apps::make_synthetic_app(config));
  c.schedule = c.app->schedule();

  const sys::PlatformConfig platform;
  c.theta_seconds_per_byte =
      sys::make_design_input(c.schedule, platform).theta.seconds_per_byte;

  c.exp = sys::run_experiment(c.schedule, platform, c.app->environment);
  c.crossbar = sys::run_crossbar_system(c.schedule, platform);
  c.pipelined = sys::run_designed_pipelined(
      c.schedule, c.exp.proposed_design, platform, c.frame_count);
  c.baseline_frames =
      sys::run_baseline_frames(c.schedule, platform, c.frame_count);

  // Level-one board partition + per-board designs + multi-board run, on a
  // uniform platform per board. Single-board configs skip this entirely,
  // keeping the case (and every byte derived from it) identical to the
  // pre-multi-board pipeline.
  if (config.board_count > 1) {
    core::MultiBoardDesignInput input;
    input.base = sys::make_design_input(c.schedule, platform);
    input.board_count = config.board_count;
    auto design = std::make_shared<core::MultiBoardDesign>(
        core::design_multi_board(input));
    const sys::MultiBoardConfig mbc = sys::MultiBoardConfig::uniform(
        config.board_count, platform,
        core::parse_board_topology(config.board_topology));
    c.multi_run = std::make_shared<const sys::MultiBoardRunResult>(
        sys::run_designed_multi(c.schedule, *design, mbc));
    c.multi_design = std::move(design);
  }
  return c;
}

}  // namespace hybridic::dse
