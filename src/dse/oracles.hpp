// Invariant oracles for property-based design-space exploration: each
// oracle states one property every explored design must satisfy — byte
// conservation, Table-I mapping legality, analytic-vs-simulated agreement,
// resource additivity, speed-up direction, pipelining gain, determinism,
// and trace well-formedness. A failing oracle returns a human-readable
// message naming the violated bound; the campaign shrinks the offending
// config and pins it as a regression reproducer.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dse/case_runner.hpp"

namespace hybridic::dse {

/// Outcome of one oracle over one DesignCase.
struct OracleResult {
  std::string oracle;
  bool pass = true;
  std::string message;  ///< Violated bound when !pass; empty otherwise.
};

/// One invariant check. Oracles are pure over the case: they may re-run
/// deterministic pipeline stages but never mutate shared state.
struct Oracle {
  std::string name;
  std::string description;
  std::function<OracleResult(const DesignCase&)> check;
  /// Whether the check reads cycle-accurate outputs (runs, traces,
  /// resources). Sim-free oracles (false) inspect only the schedule and
  /// the designs, so the analytic tier can run them without escalating —
  /// and their failure is what "an oracle demands exact traces" means.
  bool needs_cycle = true;
};

/// Tunable agreement bounds (stated in docs/TESTING.md; the perf-model
/// oracle is a sanity band, not a precision claim — the analytic model
/// ignores fabric contention by design).
struct OracleBounds {
  /// Measured baseline kernel time / Eq.2 estimate must land in
  /// [1/perf_band, perf_band].
  double baseline_perf_band = 2.0;
  /// The proposed estimate subtracts the Δ savings of Eq. 2 assuming
  /// perfect compute/communication overlap, so it is an optimistic lower
  /// bound on the simulation. Conversely the simulated per-step kernel
  /// windows stretch under concurrent overlap (their sum exceeds wall
  /// time), so the upper side is wide too. The oracle brackets the
  /// simulated proposed kernel time in
  /// [est_proposed / proposed_perf_band,
  ///  est_baseline * proposed_perf_band]; worst observed over the
  /// 1000-design calibration sweep was 4.26x.
  double proposed_perf_band = 6.0;
  /// Slack factor for "designed never slower than baseline".
  double speedup_slack = 1.02;
  /// Overlapping frames contend for the shared fabric, so each frame can
  /// run slower inside the pipeline than alone; the frame-serial upper
  /// bound (frames x first_frame) carries this slack. Worst observed over
  /// the calibration sweep (4 frames) was 1.33x.
  double pipeline_slack = 1.50;
};

/// The production oracle library (everything the campaign runs). With
/// `multi_board` the board-byte-conservation oracle joins as the ninth
/// entry; single-board campaigns keep the original eight so their CSV
/// schema and REPORT tables stay byte-identical.
[[nodiscard]] std::vector<Oracle> oracle_library(
    const OracleBounds& bounds = {}, bool multi_board = false);

/// A deliberately broken oracle ("designs move no bytes") used by the
/// mutation check: it fails on any config with traffic, so the shrinker
/// and reproducer replay loop can be proven end to end against a known
/// failure. Never part of oracle_library().
[[nodiscard]] Oracle mutation_oracle();

/// Find an oracle by name in the library (mutation_oracle() included);
/// throws ConfigError for unknown names.
[[nodiscard]] Oracle find_oracle(const std::string& name,
                                 const OracleBounds& bounds = {});

/// Run every library oracle over `c` (in library order). The multi-board
/// oracle joins exactly when the case carries a multi-board design.
[[nodiscard]] std::vector<OracleResult> run_all_oracles(
    const DesignCase& c, const OracleBounds& bounds = {});

}  // namespace hybridic::dse
