#include "dse/outcome_codec.hpp"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "store/codec.hpp"

namespace hybridic::dse {

namespace {

constexpr const char* kMagic = "outcome 1";

/// Sequential line reader mirroring the store codec's damage discipline:
/// every take_* returns false on any shape violation, and the decoder
/// bails out to nullopt.
class Reader {
public:
  explicit Reader(const std::string& text) : text_(text) {}

  bool take_line(std::string& line) {
    const std::size_t nl = text_.find('\n', pos_);
    if (nl == std::string::npos) {
      return false;
    }
    line.assign(text_, pos_, nl - pos_);
    pos_ = nl + 1;
    return true;
  }

  bool take_tagged(const std::string& tag, std::string& rest) {
    std::string line;
    if (!take_line(line) || line.rfind(tag + " ", 0) != 0) {
      return false;
    }
    rest = line.substr(tag.size() + 1);
    return true;
  }

  bool take_exact(const std::string& expected) {
    std::string line;
    return take_line(line) && line == expected;
  }

  /// "<tag> <len>" line followed by exactly len raw bytes and a newline.
  bool take_sized(const std::string& tag, std::string& value) {
    std::string rest;
    std::uint64_t len = 0;
    if (!take_tagged(tag, rest) || !parse_u64(rest, len)) {
      return false;
    }
    if (pos_ + len + 1 > text_.size() || text_[pos_ + len] != '\n') {
      return false;
    }
    value.assign(text_, pos_, len);
    pos_ += len + 1;
    return true;
  }

  /// Exactly `len` raw bytes followed by a newline (the body of a sized
  /// field whose tag line was already consumed).
  bool take_raw(std::uint64_t len, std::string& value) {
    if (pos_ + len + 1 > text_.size() || text_[pos_ + len] != '\n') {
      return false;
    }
    value.assign(text_, pos_, len);
    pos_ += len + 1;
    return true;
  }

  [[nodiscard]] bool at_end() const { return pos_ == text_.size(); }

  static bool parse_u64(const std::string& text, std::uint64_t& value) {
    if (text.empty()) {
      return false;
    }
    value = 0;
    for (const char c : text) {
      if (c < '0' || c > '9') {
        return false;
      }
      if (value > (UINT64_MAX - static_cast<std::uint64_t>(c - '0')) / 10) {
        return false;
      }
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
  }

  static bool parse_double(const std::string& text, double& value) {
    if (text.empty()) {
      return false;
    }
    char* end = nullptr;
    value = std::strtod(text.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t sp = line.find(' ', pos);
    const std::size_t end = sp == std::string::npos ? line.size() : sp;
    if (end == pos) {
      return {};  // Empty field — malformed.
    }
    fields.push_back(line.substr(pos, end - pos));
    pos = end + (sp == std::string::npos ? 0 : 1);
    if (sp != std::string::npos && pos == line.size()) {
      return {};  // Trailing space.
    }
  }
  return fields;
}

bool parse_bool(const std::string& text, bool& value) {
  if (text == "0") {
    value = false;
    return true;
  }
  if (text == "1") {
    value = true;
    return true;
  }
  return false;
}

bool parse_u32(const std::string& text, std::uint32_t& value) {
  std::uint64_t wide = 0;
  if (!Reader::parse_u64(text, wide) || wide > UINT32_MAX) {
    return false;
  }
  value = static_cast<std::uint32_t>(wide);
  return true;
}

}  // namespace

std::string encode_outcome(const CaseOutcome& o) {
  using store::hexf;
  std::ostringstream out;
  out << kMagic << '\n';
  out << "index " << o.index << '\n';
  const apps::SyntheticConfig& c = o.config;
  out << "config " << c.kernel_count << ' ' << c.host_function_count << ' '
      << hexf(c.kernel_edge_probability) << ' ' << c.min_edge_bytes << ' '
      << c.max_edge_bytes << ' ' << c.min_work_units << ' '
      << c.max_work_units << ' ' << hexf(c.duplicable_probability) << ' '
      << hexf(c.streaming_probability) << ' ' << c.seed << ' '
      << c.board_count << '\n';
  out << "topology " << c.board_topology.size() << '\n'
      << c.board_topology << '\n';
  out << "tag " << o.solution_tag.size() << '\n' << o.solution_tag << '\n';
  out << "times " << hexf(o.baseline_seconds) << ' '
      << hexf(o.designed_seconds) << ' ' << hexf(o.crossbar_seconds) << ' '
      << hexf(o.pipelined_makespan_seconds) << ' '
      << hexf(o.measured_designed_kernel_seconds) << '\n';
  out << "flags " << (o.simulated ? 1 : 0) << ' '
      << static_cast<unsigned>(o.escalation) << ' '
      << (o.band_violation ? 1 : 0) << ' ' << (o.quarantined ? 1 : 0) << ' '
      << (o.skipped ? 1 : 0) << '\n';
  out << "multi " << hexf(o.multi_total_seconds) << ' ' << o.cut_bytes
      << ' ' << o.inter_board_bytes << ' ' << o.board_link_reroutes << '\n';
  out << "oracles " << o.oracles.size() << '\n';
  for (const OracleResult& r : o.oracles) {
    out << "oracle " << (r.pass ? 1 : 0) << ' ' << r.oracle.size() << '\n'
        << r.oracle << '\n';
    out << "msg " << r.message.size() << '\n' << r.message << '\n';
  }
  out << "error " << o.error.size() << '\n' << o.error << '\n';
  if (o.analytic.has_value()) {
    const std::string blob = store::encode_estimate(*o.analytic);
    out << "analytic " << blob.size() << '\n' << blob << '\n';
  } else {
    out << "analytic -\n";
  }
  // Optional searched record (--search campaigns only): absent on every
  // pre-search ledger, so old journals decode exactly as before.
  if (o.searched.has_value()) {
    const search::SearchRecord& s = *o.searched;
    out << "searched-tag " << s.solution_tag.size() << '\n'
        << s.solution_tag << '\n';
    out << "searched " << hexf(s.analytic_seconds) << ' '
        << hexf(s.algorithm1_analytic_seconds) << ' ' << hexf(s.gain) << ' '
        << s.luts << ' ' << s.algorithm1_luts << ' ' << s.best_restart
        << ' ' << s.proposed << ' ' << s.accepted << ' '
        << s.rejected_illegal << ' ' << s.cache_hits << '\n';
  }
  out << "end\n";
  return out.str();
}

std::optional<CaseOutcome> decode_outcome(const std::string& payload) {
  Reader reader{payload};
  if (!reader.take_exact(kMagic)) {
    return std::nullopt;
  }
  CaseOutcome o;
  std::string rest;
  if (!reader.take_tagged("index", rest) ||
      !Reader::parse_u64(rest, o.index)) {
    return std::nullopt;
  }
  if (!reader.take_tagged("config", rest)) {
    return std::nullopt;
  }
  {
    const std::vector<std::string> f = split_fields(rest);
    apps::SyntheticConfig& c = o.config;
    if (f.size() != 11 || !parse_u32(f[0], c.kernel_count) ||
        !parse_u32(f[1], c.host_function_count) ||
        !Reader::parse_double(f[2], c.kernel_edge_probability) ||
        !Reader::parse_u64(f[3], c.min_edge_bytes) ||
        !Reader::parse_u64(f[4], c.max_edge_bytes) ||
        !Reader::parse_u64(f[5], c.min_work_units) ||
        !Reader::parse_u64(f[6], c.max_work_units) ||
        !Reader::parse_double(f[7], c.duplicable_probability) ||
        !Reader::parse_double(f[8], c.streaming_probability) ||
        !Reader::parse_u64(f[9], c.seed) ||
        !parse_u32(f[10], c.board_count)) {
      return std::nullopt;
    }
  }
  if (!reader.take_sized("topology", o.config.board_topology) ||
      !reader.take_sized("tag", o.solution_tag)) {
    return std::nullopt;
  }
  if (!reader.take_tagged("times", rest)) {
    return std::nullopt;
  }
  {
    const std::vector<std::string> f = split_fields(rest);
    if (f.size() != 5 || !Reader::parse_double(f[0], o.baseline_seconds) ||
        !Reader::parse_double(f[1], o.designed_seconds) ||
        !Reader::parse_double(f[2], o.crossbar_seconds) ||
        !Reader::parse_double(f[3], o.pipelined_makespan_seconds) ||
        !Reader::parse_double(f[4], o.measured_designed_kernel_seconds)) {
      return std::nullopt;
    }
  }
  if (!reader.take_tagged("flags", rest)) {
    return std::nullopt;
  }
  {
    const std::vector<std::string> f = split_fields(rest);
    std::uint64_t escalation = 0;
    if (f.size() != 5 || !parse_bool(f[0], o.simulated) ||
        !Reader::parse_u64(f[1], escalation) || escalation > 3 ||
        !parse_bool(f[2], o.band_violation) ||
        !parse_bool(f[3], o.quarantined) || !parse_bool(f[4], o.skipped)) {
      return std::nullopt;
    }
    o.escalation = static_cast<tiers::EscalationReason>(escalation);
  }
  if (!reader.take_tagged("multi", rest)) {
    return std::nullopt;
  }
  {
    const std::vector<std::string> f = split_fields(rest);
    if (f.size() != 4 ||
        !Reader::parse_double(f[0], o.multi_total_seconds) ||
        !Reader::parse_u64(f[1], o.cut_bytes) ||
        !Reader::parse_u64(f[2], o.inter_board_bytes) ||
        !Reader::parse_u64(f[3], o.board_link_reroutes)) {
      return std::nullopt;
    }
  }
  std::uint64_t oracle_count = 0;
  if (!reader.take_tagged("oracles", rest) ||
      !Reader::parse_u64(rest, oracle_count) || oracle_count > 1024) {
    return std::nullopt;
  }
  for (std::uint64_t i = 0; i < oracle_count; ++i) {
    OracleResult r;
    if (!reader.take_tagged("oracle", rest)) {
      return std::nullopt;
    }
    // "oracle <pass> <name length>" then the name bytes on their own line
    // (re-using take_sized's tail by splitting the pass flag off first).
    const std::size_t sp = rest.find(' ');
    std::uint64_t name_len = 0;
    if (sp == std::string::npos ||
        !parse_bool(rest.substr(0, sp), r.pass) ||
        !Reader::parse_u64(rest.substr(sp + 1), name_len)) {
      return std::nullopt;
    }
    std::string name_line;
    if (!reader.take_line(name_line) || name_line.size() != name_len) {
      return std::nullopt;
    }
    r.oracle = std::move(name_line);
    if (!reader.take_sized("msg", r.message)) {
      return std::nullopt;
    }
    o.oracles.push_back(std::move(r));
  }
  if (!reader.take_sized("error", o.error)) {
    return std::nullopt;
  }
  if (!reader.take_tagged("analytic", rest)) {
    return std::nullopt;
  }
  if (rest != "-") {
    std::uint64_t blob_len = 0;
    if (!Reader::parse_u64(rest, blob_len)) {
      return std::nullopt;
    }
    std::string blob;
    if (!reader.take_raw(blob_len, blob)) {
      return std::nullopt;
    }
    std::optional<tiers::TierEstimate> estimate =
        store::decode_estimate(blob);
    if (!estimate.has_value()) {
      return std::nullopt;
    }
    o.analytic = std::move(estimate);
  }
  // The next line is either the terminator or the optional searched
  // record (absent on pre-search ledgers).
  std::string line;
  if (!reader.take_line(line)) {
    return std::nullopt;
  }
  if (line != "end") {
    const std::string tag = "searched-tag ";
    std::uint64_t tag_len = 0;
    search::SearchRecord s;
    if (line.rfind(tag, 0) != 0 ||
        !Reader::parse_u64(line.substr(tag.size()), tag_len) ||
        !reader.take_raw(tag_len, s.solution_tag) ||
        !reader.take_tagged("searched", rest)) {
      return std::nullopt;
    }
    const std::vector<std::string> f = split_fields(rest);
    if (f.size() != 10 ||
        !Reader::parse_double(f[0], s.analytic_seconds) ||
        !Reader::parse_double(f[1], s.algorithm1_analytic_seconds) ||
        !Reader::parse_double(f[2], s.gain) ||
        !Reader::parse_u64(f[3], s.luts) ||
        !Reader::parse_u64(f[4], s.algorithm1_luts) ||
        !parse_u32(f[5], s.best_restart) ||
        !Reader::parse_u64(f[6], s.proposed) ||
        !Reader::parse_u64(f[7], s.accepted) ||
        !Reader::parse_u64(f[8], s.rejected_illegal) ||
        !Reader::parse_u64(f[9], s.cache_hits)) {
      return std::nullopt;
    }
    o.searched = std::move(s);
    if (!reader.take_exact("end")) {
      return std::nullopt;
    }
  }
  if (!reader.at_end()) {
    return std::nullopt;
  }
  return o;
}

}  // namespace hybridic::dse
