// Property-based design-space exploration campaign: generates seeded
// SyntheticConfig variations across the sweep space, runs every design
// point through the full pipeline on the BatchRunner, checks the invariant
// oracle library per design, and shrinks failures into standalone JSON
// reproducers. Deterministic: the outcome (CSV, markdown, reproducers) is
// byte-identical at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/synthetic.hpp"
#include "dse/oracles.hpp"
#include "dse/reproducer.hpp"

namespace hybridic::dse {

/// The swept region of the SyntheticConfig space.
struct SweepSpace {
  std::uint32_t min_kernels = 2;
  std::uint32_t max_kernels = 10;
  double min_edge_probability = 0.05;
  double max_edge_probability = 0.95;
  std::uint64_t min_edge_bytes_floor = 64;
  std::uint64_t max_edge_bytes_ceiling = 128 * 1024;
  std::uint64_t min_work_units_floor = 1'000;
  std::uint64_t max_work_units_ceiling = 400'000;
};

/// Deterministically sample the `index`-th config of a campaign. The
/// sample depends only on (space, campaign_seed, index) — never on thread
/// count or submission order.
[[nodiscard]] apps::SyntheticConfig sample_config(const SweepSpace& space,
                                                  std::uint64_t campaign_seed,
                                                  std::uint64_t index);

/// Outcome of one explored design point.
struct CaseOutcome {
  std::uint64_t index = 0;
  apps::SyntheticConfig config;
  std::string solution_tag;
  double baseline_seconds = 0.0;
  double designed_seconds = 0.0;
  double crossbar_seconds = 0.0;
  double pipelined_makespan_seconds = 0.0;
  std::vector<OracleResult> oracles;
  std::string error;  ///< Exception message when the case itself failed.

  [[nodiscard]] bool ran() const { return error.empty(); }
  [[nodiscard]] bool all_pass() const;
};

struct CampaignOptions {
  std::uint64_t count = 1000;
  std::uint64_t campaign_seed = 1;
  std::size_t threads = 0;  ///< 0 = hardware concurrency.
  SweepSpace space;
  OracleBounds bounds;
  /// Shrink at most this many failures (the first per distinct oracle, in
  /// index order) into reproducers.
  std::uint32_t max_shrinks = 4;
};

struct CampaignResult {
  std::vector<std::string> oracle_names;  ///< Library order.
  std::vector<CaseOutcome> cases;         ///< Index order.
  std::vector<Reproducer> reproducers;    ///< Shrunk failures.

  [[nodiscard]] std::uint64_t pass_count(const std::string& oracle) const;
  [[nodiscard]] std::uint64_t fail_count(const std::string& oracle) const;
  [[nodiscard]] std::uint64_t error_count() const;
};

/// Run the campaign. Deterministic at any `threads`.
[[nodiscard]] CampaignResult run_campaign(const CampaignOptions& options);

/// CSV: one row per case — config fields, variant timings, one 0/1 column
/// per oracle, error note. Byte-stable across thread counts.
[[nodiscard]] std::string campaign_csv(const CampaignResult& result);

/// Markdown section (oracle pass rates + failure digest) for REPORT.md.
[[nodiscard]] std::string campaign_markdown(const CampaignResult& result,
                                            const CampaignOptions& options);

/// Marker line the markdown section starts with.
[[nodiscard]] const char* campaign_section_marker();

/// Write each reproducer under `dir` (created if needed); returns the
/// paths written.
std::vector<std::string> save_reproducers(const CampaignResult& result,
                                          const std::string& dir);

}  // namespace hybridic::dse
