// Property-based design-space exploration campaign: generates seeded
// SyntheticConfig variations across the sweep space, evaluates every
// design point through the tiered engine on the BatchRunner — analytic
// first, cycle-accurate where the tier policy escalates — checks the
// invariant oracle library per design, and shrinks failures into
// standalone JSON reproducers. Deterministic: the outcome (CSV, markdown,
// tier stats, reproducers) is byte-identical at any thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "apps/profile_cache.hpp"
#include "apps/synthetic.hpp"
#include "dse/oracles.hpp"
#include "dse/reproducer.hpp"
#include "search/anneal.hpp"
#include "store/store.hpp"
#include "tiers/tiered_evaluator.hpp"

namespace hybridic::dse {

/// The swept region of the SyntheticConfig space.
struct SweepSpace {
  std::uint32_t min_kernels = 2;
  std::uint32_t max_kernels = 10;
  double min_edge_probability = 0.05;
  double max_edge_probability = 0.95;
  std::uint64_t min_edge_bytes_floor = 64;
  std::uint64_t max_edge_bytes_ceiling = 128 * 1024;
  std::uint64_t min_work_units_floor = 1'000;
  std::uint64_t max_work_units_ceiling = 400'000;

  /// Board dimension. With max_boards == 1 (the default) the sampler
  /// draws nothing extra, so every pre-multi-board campaign replays its
  /// exact RNG stream and CSV. With max_boards > 1 board count and
  /// topology are drawn after all existing fields.
  std::uint32_t min_boards = 1;
  std::uint32_t max_boards = 1;
  std::vector<std::string> board_topologies = {"chain"};

  [[nodiscard]] bool multi_board() const { return max_boards > 1; }
};

/// Deterministically sample the `index`-th config of a campaign. The
/// sample depends only on (space, campaign_seed, index) — never on thread
/// count or submission order.
[[nodiscard]] apps::SyntheticConfig sample_config(const SweepSpace& space,
                                                  std::uint64_t campaign_seed,
                                                  std::uint64_t index);

/// Outcome of one explored design point.
struct CaseOutcome {
  std::uint64_t index = 0;
  apps::SyntheticConfig config;
  std::string solution_tag;
  double baseline_seconds = 0.0;
  double designed_seconds = 0.0;
  double crossbar_seconds = 0.0;
  double pipelined_makespan_seconds = 0.0;
  std::vector<OracleResult> oracles;
  std::string error;  ///< Exception message when the case itself failed.
  /// Poison job: the supervised runner abandoned it (wall-clock watchdog
  /// expired) or it crashed past its transient retry budget. The row
  /// keeps its config but carries no timings or oracle verdicts; `error`
  /// holds the deterministic "quarantined: ..." note.
  bool quarantined = false;
  /// Never ran: a graceful drain (SIGINT/SIGTERM) stopped admission
  /// before this job started. Skipped rows are NOT journaled, so a
  /// resumed campaign re-executes them.
  bool skipped = false;
  /// Restored from the run journal instead of being re-executed
  /// (stdout-only provenance; never surfaces in the CSV).
  bool resumed = false;

  // ---- Tier record. ----
  /// Ran through the cycle-accurate engine (cycle mode or escalated).
  bool simulated = false;
  tiers::EscalationReason escalation = tiers::EscalationReason::kNone;
  /// The analytic tier's estimate; absent when the case errored before
  /// the estimator ran.
  std::optional<tiers::TierEstimate> analytic;
  /// Simulated designed kernel seconds (the value the band brackets);
  /// only meaningful on simulated rows.
  double measured_designed_kernel_seconds = 0.0;
  /// Simulated result escaped the calibrated band (simulated rows only).
  bool band_violation = false;
  /// An earlier index produced the same congruence key (serial, in index
  /// order, so the flag is thread-count invariant).
  bool congruent = false;
  /// Content hash of this row's profile identity (the profile cache / L2
  /// store key for the config) — 16 hex digits, derived purely from the
  /// config, so it is shard- and thread-count invariant.
  std::string profile_key;
  /// An earlier index shares profile_key (serial first-seen pass, like
  /// `congruent`; recomputed globally by tools/merge_shards.py).
  bool profile_reused = false;

  /// Annealed-search record (--search=anneal): the oracle-gated,
  /// LUT-capped search result next to Algorithm 1's pricing. Absent when
  /// search is off or the case errored first; the CSV emits searched_*
  /// columns only in search campaigns, so non-search campaigns keep
  /// their schema byte-identical.
  std::optional<search::SearchRecord> searched;

  // ---- Multi-board record (meaningful only in multi-board campaigns;
  // the CSV emits these columns only there, so single-board campaigns
  // keep their schema byte-identical). ----
  double multi_total_seconds = 0.0;     ///< Multi-board run wall time.
  std::uint64_t cut_bytes = 0;          ///< Partition cut (unique bytes).
  std::uint64_t inter_board_bytes = 0;  ///< Bytes the links moved.
  std::uint64_t board_link_reroutes = 0;

  [[nodiscard]] bool ran() const { return error.empty(); }
  [[nodiscard]] bool all_pass() const;
  [[nodiscard]] const char* tier_name() const {
    return simulated ? "cycle" : "analytic";
  }
};

struct CampaignOptions {
  std::uint64_t count = 1000;
  std::uint64_t campaign_seed = 1;
  std::size_t threads = 0;  ///< 0 = hardware concurrency.
  SweepSpace space;
  OracleBounds bounds;
  /// Shrink at most this many failures (the first per distinct oracle, in
  /// index order) into reproducers.
  std::uint32_t max_shrinks = 4;
  /// Which evaluation tier(s) to run (docs/MODEL.md §14).
  tiers::TierMode tier = tiers::TierMode::kCycle;
  /// Run the annealed search (src/search/) on every successful case and
  /// record it next to Algorithm 1 (searched_* CSV columns + the
  /// "Algorithm 1 vs searched" REPORT section). The annealer is gated by
  /// the simulation-free oracles and runs serially inside the case job,
  /// so campaign determinism is unchanged.
  bool search = false;
  std::uint32_t search_restarts = 2;
  std::uint32_t search_iterations = 60;
  /// Cap on rank-overlap escalations in auto mode; 0 = automatic
  /// (max(4, count / 50)). The calibrated band is wide enough that every
  /// candidate overlaps the winner on most sweeps, so auto mode keeps
  /// only the most promising contenders (lowest analytic lower bounds).
  std::uint64_t max_rank_escalations = 0;

  // ---- Persistent store + sharding (docs/MODEL.md §15). ----
  /// Root of the content-addressed result store; empty = in-memory only.
  /// Profiles and analytic estimates are read through / written back, so
  /// a restarted process (or a sibling shard) reuses them.
  std::string store_dir;
  /// This process evaluates indices where index % shard_count ==
  /// shard_index; rows keep their global indices. shard_count > 1 is
  /// rejected for --tier=auto (escalation selection needs every
  /// estimate, which no single shard holds).
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
  /// In-memory profile-cache caps (0 = unbounded). Evicted entries fall
  /// back to the store when one is attached.
  std::uint64_t profile_cache_max_entries = 64;
  std::uint64_t profile_cache_max_bytes = 0;

  // ---- Crash safety (docs/MODEL.md §17). ----
  /// Append-only completion ledger; empty = no journal. Rejected for
  /// --tier=auto (escalation selection is global, like sharding).
  std::string journal_path;
  /// Replay journal_path before running and skip every job whose record
  /// matches this campaign's fingerprint. Requires journal_path.
  bool resume = false;
  /// Per-job wall-clock watchdog in seconds; 0 = none. A job that
  /// exceeds it is abandoned and quarantined, never retried.
  double job_timeout_seconds = 0.0;
  /// Bounded retry budget for transient failures (store::StoreError — a
  /// flaky filesystem, not a logic bug).
  std::uint32_t transient_retries = 2;
  double backoff_initial_seconds = 0.005;
  /// Shrink budget per quarantined job (supervised probes; each probe of
  /// a genuinely wedged candidate costs a full watchdog timeout).
  std::uint32_t quarantine_shrink_attempts = 8;
  /// Graceful-drain admission gate: when set and true, owned jobs that
  /// have not started are skipped (not journaled — a resume re-runs
  /// them); in-flight jobs finish under the watchdog.
  const std::atomic<bool>* stop_requested = nullptr;
  /// Test hook, called at the start of every job body with the case
  /// index (lets a harness wedge one specific index).
  std::function<void(std::uint64_t)> job_started_hook;
};

/// 16-hex fingerprint of everything that determines a campaign's rows:
/// engine revision, tier, seed/count, shard spec, sweep space, oracle
/// bounds, and the watchdog budget (quarantined rows embed its message).
/// Journal entries recorded under a different fingerprint are ignored on
/// resume — a stale ledger degrades to re-execution, never to wrong rows.
[[nodiscard]] std::string campaign_fingerprint(const CampaignOptions& options);

/// Aggregate tier-disagreement statistics for one campaign, assembled
/// serially from the outcomes (thread-count invariant).
struct TierStats {
  tiers::TierMode mode = tiers::TierMode::kCycle;
  std::uint64_t analytic_evals = 0;  ///< Designs the analytic tier priced.
  std::uint64_t cycle_evals = 0;     ///< Designs the cycle engine ran.
  std::uint64_t escalated_rank = 0;
  std::uint64_t escalated_oracle = 0;
  std::uint64_t rank_contenders = 0;  ///< Overlap set size before the cap.
  std::uint64_t rank_cap = 0;         ///< Applied cap (auto mode).
  std::uint64_t band_checks = 0;      ///< Simulated rows with an estimate.
  std::uint64_t band_violations = 0;  ///< Measured escaped the band.
  /// Worst-case disagreement over the checked rows: measured over
  /// analytic mid-point and its inverse.
  double worst_measured_over_analytic = 0.0;
  double worst_analytic_over_measured = 0.0;
  std::uint64_t congruent_designs = 0;    ///< Rows sharing an earlier key.
  std::uint64_t distinct_signatures = 0;  ///< Unique congruence keys.
  std::uint64_t reused_profiles = 0;      ///< Rows sharing an earlier profile.
  std::uint64_t distinct_profiles = 0;    ///< Unique profile keys.

  [[nodiscard]] double escalation_rate(std::uint64_t total) const {
    return total == 0 ? 0.0
                      : static_cast<double>(cycle_evals) /
                            static_cast<double>(total);
  }
};

struct CampaignResult {
  std::vector<std::string> oracle_names;  ///< Library order.
  std::vector<CaseOutcome> cases;         ///< Index order.
  std::vector<Reproducer> reproducers;    ///< Shrunk failures.
  TierStats tier_stats;
  /// Campaign swept the board dimension (space.multi_board()): the CSV
  /// gains the boards/topology/inter-board columns and the oracle library
  /// includes board-byte-conservation.
  bool multi_board = false;
  /// Campaign ran the annealed search (options.search): the CSV gains the
  /// searched_* columns and the REPORT gains the Pareto section.
  bool searched = false;

  // ---- Live cache/store counters. Machine- and run-dependent (they vary
  // with thread count and store warmth), so they go to stdout only —
  // never into the CSV or REPORT, which stay byte-identical.
  apps::ProfileCacheStats profile_cache_stats;
  std::uint64_t estimate_l2_hits = 0;
  std::uint64_t estimate_l2_stores = 0;
  std::optional<store::StoreStats> store_stats;  ///< Set when store_dir used.

  // ---- Crash-safety record (docs/MODEL.md §17). ----
  std::uint64_t quarantined_count = 0;  ///< Poison jobs fenced off.
  std::uint64_t skipped_count = 0;      ///< Drained before starting.
  std::uint64_t resumed_count = 0;      ///< Restored from the journal.
  std::uint64_t journal_skipped_lines = 0;  ///< Damaged ledger lines.
  /// A graceful drain cut the run short (skipped_count > 0 or the stop
  /// flag was raised): the CSV is partial and a --resume should follow.
  bool interrupted = false;

  [[nodiscard]] std::uint64_t pass_count(const std::string& oracle) const;
  [[nodiscard]] std::uint64_t fail_count(const std::string& oracle) const;
  [[nodiscard]] std::uint64_t error_count() const;
};

/// Run the campaign. Deterministic at any `threads`.
[[nodiscard]] CampaignResult run_campaign(const CampaignOptions& options);

/// CSV: one row per case — config fields, variant timings, one 0/1 column
/// per oracle, error note. Byte-stable across thread counts.
[[nodiscard]] std::string campaign_csv(const CampaignResult& result);

/// Markdown section (oracle pass rates + failure digest) for REPORT.md.
[[nodiscard]] std::string campaign_markdown(const CampaignResult& result,
                                            const CampaignOptions& options);

/// Marker line the markdown section starts with.
[[nodiscard]] const char* campaign_section_marker();

/// Write each reproducer under `dir` (created if needed); returns the
/// paths written.
std::vector<std::string> save_reproducers(const CampaignResult& result,
                                          const std::string& dir);

}  // namespace hybridic::dse
