#include "dse/oracles.hpp"

#include <cmath>
#include <set>
#include <sstream>
#include <utility>

#include "core/design_validate.hpp"
#include "core/kernel_model.hpp"
#include "core/resource_model.hpp"
#include "sys/executor.hpp"
#include "util/error.hpp"

namespace hybridic::dse {
namespace {

OracleResult pass(const std::string& name) { return {name, true, ""}; }

OracleResult fail(const std::string& name, const std::string& message) {
  return {name, false, message};
}

std::string fmt(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

/// The set of hardware-mapped functions of a schedule (L_hw).
std::set<prof::FunctionId> hw_set(const sys::AppSchedule& schedule) {
  std::set<prof::FunctionId> hw;
  for (const core::KernelSpec& spec : schedule.specs) {
    hw.insert(spec.function);
  }
  return hw;
}

// ---------------------------------------------------------------------------
// Oracle: byte conservation against the profiled unique bytes.
// ---------------------------------------------------------------------------

OracleResult check_byte_conservation(const DesignCase& c) {
  const std::string name = "byte-conservation";
  const prof::CommGraph& graph = *c.schedule.graph;

  // Per edge: the unique bytes (what the interconnect must move) can never
  // exceed the raw access bytes, and a non-empty edge touches at least one
  // unique address.
  for (const prof::CommEdge& edge : graph.edges()) {
    if (edge.unique_addresses > edge.bytes.count()) {
      return fail(name, "edge " + graph.function(edge.producer).name +
                            "->" + graph.function(edge.consumer).name +
                            ": unique bytes " +
                            std::to_string(edge.unique_addresses) +
                            " exceed raw bytes " +
                            std::to_string(edge.bytes.count()));
    }
    if (edge.bytes.count() > 0 && edge.unique_addresses == 0) {
      return fail(name, "edge " + graph.function(edge.producer).name +
                            "->" + graph.function(edge.consumer).name +
                            " moves bytes but zero unique addresses");
    }
  }

  // Kernel<->kernel conservation: every kernel-to-kernel byte is produced
  // exactly once and consumed exactly once at the Eq-1 level.
  const std::set<prof::FunctionId> hw = hw_set(c.schedule);
  std::uint64_t out_total = 0;
  std::uint64_t in_total = 0;
  for (const core::KernelSpec& spec : c.schedule.specs) {
    const core::KernelQuantities q =
        core::derive_quantities(graph, spec.function, hw);
    out_total += q.kernel_out.count();
    in_total += q.kernel_in.count();
  }
  if (out_total != in_total) {
    return fail(name, "kernel-to-kernel volume imbalance: produced " +
                          std::to_string(out_total) + " B, consumed " +
                          std::to_string(in_total) + " B");
  }

  // Every design instance carries the full Eq-1 volumes of its function.
  for (const core::KernelInstance& inst : c.exp.proposed_design.instances) {
    const core::KernelQuantities q =
        core::derive_quantities(graph, inst.function, hw);
    if (inst.quantities.total() != q.total()) {
      return fail(name, "instance " + inst.name + " quantities " +
                            std::to_string(inst.quantities.total().count()) +
                            " B do not match profile-derived " +
                            std::to_string(q.total().count()) + " B");
    }
  }

  // A shared pair covers ALL producer kernel output and ALL consumer
  // kernel input (SIV-A1 exclusivity).
  for (const core::SharedMemoryPairing& pair :
       c.exp.proposed_design.shared_pairs) {
    const core::KernelInstance& p =
        c.exp.proposed_design.instances[pair.producer_instance];
    const core::KernelInstance& q =
        c.exp.proposed_design.instances[pair.consumer_instance];
    const core::KernelQuantities qp =
        core::derive_quantities(graph, p.function, hw);
    const core::KernelQuantities qc =
        core::derive_quantities(graph, q.function, hw);
    if (pair.bytes != qp.kernel_out || pair.bytes != qc.kernel_in) {
      return fail(name, "shared pair " + p.name + "->" + q.name +
                            " moves " + std::to_string(pair.bytes.count()) +
                            " B but producer kernel-out is " +
                            std::to_string(qp.kernel_out.count()) +
                            " B and consumer kernel-in is " +
                            std::to_string(qc.kernel_in.count()) + " B");
    }
  }
  return pass(name);
}

// ---------------------------------------------------------------------------
// Oracle: Table-I mapping legality via the design validator.
// ---------------------------------------------------------------------------

OracleResult check_mapping_legality(const DesignCase& c) {
  const std::string name = "mapping-legality";
  const std::pair<const char*, const core::DesignResult*> designs[] = {
      {"proposed", &c.exp.proposed_design},
      {"noc-only", &c.exp.noc_only_design}};
  for (const auto& [tag, design] : designs) {
    const std::vector<core::ValidationIssue> issues =
        core::validate_design(*design, c.schedule.specs);
    if (!core::is_valid(issues)) {
      return fail(name, std::string{tag} + " design invalid: " +
                            core::format_issues(issues));
    }
  }
  return pass(name);
}

// ---------------------------------------------------------------------------
// Oracle: analytic perf model vs cycle-level simulation agreement.
// ---------------------------------------------------------------------------

OracleResult check_perf_agreement(const DesignCase& c,
                                  const OracleBounds& bounds) {
  const std::string name = "perf-model-agreement";
  const core::DesignEstimate& est = c.exp.proposed_design.estimate;

  // Eq. 2 models the kernels' compute + exposed communication; compare to
  // the simulated baseline's kernel seconds.
  const double measured_baseline = c.exp.baseline.kernel_seconds();
  if (est.baseline_seconds <= 0.0) {
    return fail(name, "analytic baseline estimate is non-positive: " +
                          fmt(est.baseline_seconds));
  }
  const double baseline_ratio = measured_baseline / est.baseline_seconds;
  if (baseline_ratio > bounds.baseline_perf_band ||
      baseline_ratio < 1.0 / bounds.baseline_perf_band) {
    return fail(name, "simulated baseline kernel time " +
                          fmt(measured_baseline) + " s vs Eq.2 estimate " +
                          fmt(est.baseline_seconds) + " s (ratio " +
                          fmt(baseline_ratio) + " outside band " +
                          fmt(bounds.baseline_perf_band) + ")");
  }

  // The Delta-reduced estimate assumes perfect compute/communication
  // overlap, making it an optimistic lower bound on the simulation (the
  // simulator additionally pays fabric contention). Bracket the measured
  // proposed time between that lower bound and the analytic baseline:
  //   est_proposed / band  <=  measured  <=  est_baseline * band.
  const double est_proposed = est.proposed_seconds();
  const double measured_proposed = c.exp.proposed.kernel_seconds();
  if (measured_proposed <
      est_proposed / bounds.proposed_perf_band) {
    return fail(name, "simulated proposed kernel time " +
                          fmt(measured_proposed) +
                          " s beats the optimistic analytic estimate " +
                          fmt(est_proposed) + " s by more than band " +
                          fmt(bounds.proposed_perf_band));
  }
  if (measured_proposed >
      est.baseline_seconds * bounds.proposed_perf_band) {
    return fail(name, "simulated proposed kernel time " +
                          fmt(measured_proposed) +
                          " s exceeds the analytic baseline " +
                          fmt(est.baseline_seconds) + " s beyond band " +
                          fmt(bounds.proposed_perf_band));
  }
  return pass(name);
}

// ---------------------------------------------------------------------------
// Oracle: resource-model additivity.
// ---------------------------------------------------------------------------

OracleResult check_resource_additivity(const DesignCase& c) {
  const std::string name = "resource-additivity";

  // The stored areas must equal a fresh recomputation from the design.
  const core::Resources kernels = core::kernel_resources(
      c.exp.proposed_design, c.schedule.specs);
  const core::Resources interconnect =
      core::interconnect_resources(c.exp.proposed_design);
  if (kernels.luts != c.exp.kernel_area.luts ||
      kernels.regs != c.exp.kernel_area.regs) {
    return fail(name, "kernel area not reproducible: stored " +
                          std::to_string(c.exp.kernel_area.luts) +
                          " LUTs, recomputed " +
                          std::to_string(kernels.luts));
  }
  if (interconnect.luts != c.exp.interconnect_area.luts ||
      interconnect.regs != c.exp.interconnect_area.regs) {
    return fail(name, "interconnect area not reproducible: stored " +
                          std::to_string(c.exp.interconnect_area.luts) +
                          " LUTs, recomputed " +
                          std::to_string(interconnect.luts));
  }

  // System totals are strictly additive: base + bus + kernels +
  // interconnect.
  const core::ComponentCost bus =
      core::component_cost(core::Component::kBus);
  const core::Resources expected = c.app->environment.base_infrastructure +
                                   core::Resources{bus.luts, bus.regs} +
                                   kernels + interconnect;
  if (expected.luts != c.exp.proposed_resources.luts ||
      expected.regs != c.exp.proposed_resources.regs) {
    return fail(name, "proposed system area " +
                          std::to_string(c.exp.proposed_resources.luts) +
                          "/" + std::to_string(c.exp.proposed_resources.regs) +
                          " != additive total " +
                          std::to_string(expected.luts) + "/" +
                          std::to_string(expected.regs));
  }

  // Area ordering: the custom interconnect only ever adds area over the
  // baseline, and the NoC-only solution never undercuts the hybrid.
  if (c.exp.baseline_resources.luts > c.exp.proposed_resources.luts) {
    return fail(name, "baseline LUTs " +
                          std::to_string(c.exp.baseline_resources.luts) +
                          " exceed proposed " +
                          std::to_string(c.exp.proposed_resources.luts));
  }
  if (c.exp.proposed_resources.luts > c.exp.noc_only_resources.luts) {
    return fail(name, "proposed LUTs " +
                          std::to_string(c.exp.proposed_resources.luts) +
                          " exceed NoC-only " +
                          std::to_string(c.exp.noc_only_resources.luts));
  }
  return pass(name);
}

// ---------------------------------------------------------------------------
// Oracle: speed-up direction.
// ---------------------------------------------------------------------------

OracleResult check_speedup_direction(const DesignCase& c,
                                     const OracleBounds& bounds) {
  const std::string name = "speedup-direction";
  const double designed = c.exp.proposed.total_seconds;
  const double baseline = c.exp.baseline.total_seconds;
  if (designed > baseline * bounds.speedup_slack) {
    return fail(name, "designed system " + fmt(designed) +
                          " s slower than baseline " + fmt(baseline) +
                          " s (slack " + fmt(bounds.speedup_slack) + ")");
  }
  const core::DesignEstimate& est = c.exp.proposed_design.estimate;
  if (est.proposed_seconds() > est.baseline_seconds + 1e-15) {
    return fail(name, "analytic estimate regressed: proposed " +
                          fmt(est.proposed_seconds()) + " s vs baseline " +
                          fmt(est.baseline_seconds) + " s");
  }
  return pass(name);
}

// ---------------------------------------------------------------------------
// Oracle: pipelined execution at least as fast as non-pipelined.
// ---------------------------------------------------------------------------

OracleResult check_pipelining_gain(const DesignCase& c,
                                   const OracleBounds& bounds) {
  const std::string name = "pipelining-gain";
  if (c.pipelined.first_frame_seconds >
      c.pipelined.makespan_seconds * (1.0 + 1e-9)) {
    return fail(name, "first frame " + fmt(c.pipelined.first_frame_seconds) +
                          " s finishes after the makespan " +
                          fmt(c.pipelined.makespan_seconds) + " s");
  }
  // Overlapping frames contend for the shared fabric, so a frame can run
  // slightly slower inside the pipeline than alone; pipeline_slack states
  // how much slower the whole run may be than frames x first_frame.
  const double serial_bound = static_cast<double>(c.pipelined.frames) *
                              c.pipelined.first_frame_seconds;
  if (c.pipelined.makespan_seconds > serial_bound * bounds.pipeline_slack) {
    return fail(name, "pipelined makespan " +
                          fmt(c.pipelined.makespan_seconds) +
                          " s exceeds the frame-serial bound " +
                          fmt(serial_bound) + " s (slack " +
                          fmt(bounds.pipeline_slack) + ")");
  }
  if (c.pipelined.makespan_seconds >
      c.baseline_frames.makespan_seconds * bounds.speedup_slack) {
    return fail(name, "pipelined designed makespan " +
                          fmt(c.pipelined.makespan_seconds) +
                          " s slower than the frame-serial baseline " +
                          fmt(c.baseline_frames.makespan_seconds) + " s");
  }
  return pass(name);
}

// ---------------------------------------------------------------------------
// Oracle: bit-identical re-execution.
// ---------------------------------------------------------------------------

OracleResult check_determinism(const DesignCase& c) {
  const std::string name = "determinism";
  const sys::PlatformConfig platform;
  const sys::RunResult again =
      sys::run_designed(c.schedule, c.exp.proposed_design, platform);
  if (again.total_seconds != c.exp.proposed.total_seconds) {
    return fail(name, "designed re-run differs: " +
                          fmt(again.total_seconds) + " s vs " +
                          fmt(c.exp.proposed.total_seconds) + " s");
  }
  if (again.trace.events().size() != c.exp.proposed.trace.events().size()) {
    return fail(name, "designed re-run trace size differs: " +
                          std::to_string(again.trace.events().size()) +
                          " vs " +
                          std::to_string(c.exp.proposed.trace.events().size()));
  }
  return pass(name);
}

// ---------------------------------------------------------------------------
// Oracle: trace well-formedness.
// ---------------------------------------------------------------------------

OracleResult check_trace_wellformed(const DesignCase& c) {
  const std::string name = "trace-wellformed";
  for (const sys::RunResult* run :
       {&c.exp.baseline, &c.exp.proposed, &c.crossbar}) {
    const double total = run->total_seconds;
    for (const sys::engine::TraceEvent& event : run->trace.events()) {
      if (event.end_seconds < event.start_seconds ||
          event.start_seconds < -1e-12 ||
          event.end_seconds > total * (1.0 + 1e-9) + 1e-12) {
        return fail(name, run->system_name + " trace event '" + event.label +
                              "' window [" + fmt(event.start_seconds) +
                              ", " + fmt(event.end_seconds) +
                              "] escapes the run span [0, " + fmt(total) +
                              "]");
      }
    }
    for (const sys::StepTiming& step : run->steps) {
      if (step.done_seconds < step.start_seconds ||
          step.compute_seconds < 0.0 || step.comm_seconds < 0.0) {
        return fail(name, run->system_name + " step '" + step.name +
                              "' has inconsistent timing");
      }
    }
  }
  return pass(name);
}

// ---------------------------------------------------------------------------
// Oracle (multi-board campaigns only): two-level byte conservation.
// ---------------------------------------------------------------------------

OracleResult check_board_conservation(const DesignCase& c) {
  const std::string name = "board-byte-conservation";
  if (c.multi_design == nullptr) {
    return fail(name, "case carries no multi-board design (board_count " +
                          std::to_string(c.config.board_count) + ")");
  }
  const core::MultiBoardDesign& multi = *c.multi_design;
  const core::BoardPartition& part = multi.partition;

  // Every kernel lands on exactly one board, and that board is in range.
  if (part.board_of_kernel.size() != c.schedule.specs.size()) {
    return fail(name, "partition covers " +
                          std::to_string(part.board_of_kernel.size()) +
                          " kernels but the schedule has " +
                          std::to_string(c.schedule.specs.size()));
  }
  for (std::size_t k = 0; k < c.schedule.specs.size(); ++k) {
    const auto it =
        part.board_of_function.find(c.schedule.specs[k].function);
    if (it == part.board_of_function.end()) {
      return fail(name, "kernel '" + c.schedule.specs[k].name +
                            "' is on no board");
    }
    if (it->second >= part.board_count) {
      return fail(name, "kernel '" + c.schedule.specs[k].name +
                            "' is on out-of-range board " +
                            std::to_string(it->second));
    }
  }

  // Intra-board + cut bytes recompose the profiled multigraph's unique
  // bytes exactly (self-edges excluded on both sides of the ledger).
  std::uint64_t profiled = 0;
  for (const prof::CommEdge& edge : c.schedule.graph->edges()) {
    if (edge.producer != edge.consumer) {
      profiled += core::edge_volume(edge).count();
    }
  }
  std::uint64_t intra = 0;
  for (const Bytes bytes : part.intra_board_bytes) {
    intra += bytes.count();
  }
  if (intra + part.cut_bytes.count() != profiled ||
      part.total_bytes.count() != profiled) {
    return fail(name, "byte ledger broken: intra " + std::to_string(intra) +
                          " B + cut " +
                          std::to_string(part.cut_bytes.count()) +
                          " B != profiled " + std::to_string(profiled) +
                          " B");
  }

  // The cut-edge list the link policy replays must sum to the same cut.
  std::uint64_t cut_edges = 0;
  for (const core::InterBoardEdge& edge : multi.cut_edges) {
    if (edge.producer_board == edge.consumer_board) {
      return fail(name, "cut edge with both endpoints on board " +
                            std::to_string(edge.producer_board));
    }
    cut_edges += edge.bytes.count();
  }
  if (cut_edges != part.cut_bytes.count()) {
    return fail(name, "cut-edge list moves " + std::to_string(cut_edges) +
                          " B but the partition cut is " +
                          std::to_string(part.cut_bytes.count()) + " B");
  }
  return pass(name);
}

}  // namespace

std::vector<Oracle> oracle_library(const OracleBounds& bounds,
                                   bool multi_board) {
  std::vector<Oracle> library = {
      {"byte-conservation",
       "per-edge unique bytes bounded by raw bytes; kernel volumes balance "
       "and shared pairs cover exactly the profiled traffic",
       check_byte_conservation, /*needs_cycle=*/false},
      {"mapping-legality",
       "proposed and NoC-only designs pass design_validate with no errors",
       check_mapping_legality, /*needs_cycle=*/false},
      {"perf-model-agreement",
       "Eq.2 and the Delta-reduced analytic estimates agree with the "
       "cycle-level simulation within the stated band",
       [bounds](const DesignCase& c) {
         return check_perf_agreement(c, bounds);
       }},
      {"resource-additivity",
       "system area is the exact sum of base + bus + kernels + "
       "interconnect, with baseline <= proposed <= NoC-only",
       check_resource_additivity},
      {"speedup-direction",
       "the designed system is never slower than the baseline (measured "
       "and analytic)",
       [bounds](const DesignCase& c) {
         return check_speedup_direction(c, bounds);
       }},
      {"pipelining-gain",
       "multi-frame pipelined execution beats frame-serial baseline and "
       "never exceeds its own serial bound",
       [bounds](const DesignCase& c) {
         return check_pipelining_gain(c, bounds);
       }},
      {"determinism",
       "re-running the designed system reproduces bit-identical timing",
       check_determinism},
      {"trace-wellformed",
       "every trace event stays inside the run span; step timings are "
       "consistent",
       check_trace_wellformed},
  };
  if (multi_board) {
    library.push_back(
        {"board-byte-conservation",
         "every kernel sits on exactly one board and intra-board plus "
         "inter-board cut bytes recompose the profiled multigraph exactly",
         check_board_conservation, /*needs_cycle=*/false});
  }
  return library;
}

Oracle mutation_oracle() {
  return {"mutation-nonzero-traffic",
          "DELIBERATELY BROKEN oracle for shrinker/replay verification: "
          "claims no design ever moves any bytes",
          [](const DesignCase& c) {
            std::uint64_t total = 0;
            for (const prof::CommEdge& edge : c.schedule.graph->edges()) {
              total += edge.unique_addresses;
            }
            if (total > 0) {
              return fail("mutation-nonzero-traffic",
                          "design moves " + std::to_string(total) +
                              " unique bytes (mutation oracle expects 0)");
            }
            return pass("mutation-nonzero-traffic");
          }};
}

Oracle find_oracle(const std::string& name, const OracleBounds& bounds) {
  for (Oracle& oracle : oracle_library(bounds, /*multi_board=*/true)) {
    if (oracle.name == name) {
      return std::move(oracle);
    }
  }
  if (Oracle mutation = mutation_oracle(); mutation.name == name) {
    return mutation;
  }
  throw ConfigError{"unknown oracle: " + name};
}

std::vector<OracleResult> run_all_oracles(const DesignCase& c,
                                          const OracleBounds& bounds) {
  std::vector<OracleResult> results;
  for (const Oracle& oracle :
       oracle_library(bounds, c.multi_design != nullptr)) {
    results.push_back(oracle.check(c));
  }
  return results;
}

}  // namespace hybridic::dse
