// Reproducer shrinking: given a SyntheticConfig on which an oracle fails,
// greedily minimize the config — halving kernel counts, edge probability,
// byte volumes and work units, zeroing the mix probabilities — accepting
// each reduction only while the SAME oracle still fails. The result is the
// smallest configuration this deterministic strategy can reach, which
// becomes the pinned JSON reproducer.
#pragma once

#include <cstdint>
#include <functional>

#include "apps/synthetic.hpp"
#include "dse/oracles.hpp"

namespace hybridic::dse {

/// Outcome of a shrink run.
struct ShrinkResult {
  apps::SyntheticConfig config;   ///< The minimized failing config.
  OracleResult failure;           ///< The oracle outcome on it.
  std::uint32_t attempts = 0;     ///< Candidate configs evaluated.
  std::uint32_t accepted = 0;     ///< Reductions that kept the failure.
};

/// Outcome of a predicate-driven shrink (no oracle attached).
struct ConfigShrink {
  apps::SyntheticConfig config;  ///< Smallest config the predicate held on.
  std::uint32_t attempts = 0;    ///< Candidate configs probed.
  std::uint32_t accepted = 0;    ///< Reductions that kept the predicate.
  /// The predicate held on the original config. When false (e.g. a job
  /// wedged by its environment, not its config), `config` is the original
  /// and no reduction was attempted.
  bool reproduced = false;
};

/// Greedily minimize `config` while `still_fails(candidate)` stays true —
/// the same deterministic move set and fixpoint loop as shrink(), but
/// driven by an arbitrary predicate. The quarantine path supplies a
/// supervised probe here, because its candidates may themselves wedge;
/// the predicate must therefore be safe to call on any candidate. The
/// original config is probed first (not counted against `max_attempts`).
[[nodiscard]] ConfigShrink shrink_config(
    const apps::SyntheticConfig& config,
    const std::function<bool(const apps::SyntheticConfig&)>& still_fails,
    std::uint32_t max_attempts = 64);

/// Shrink `config` against `oracle`. The oracle must fail on `config`
/// (throws ConfigError otherwise — shrinking a passing config means the
/// caller mixed up its bookkeeping). Evaluates at most `max_attempts`
/// candidate configs; deterministic for fixed inputs.
[[nodiscard]] ShrinkResult shrink(const apps::SyntheticConfig& config,
                                  const Oracle& oracle,
                                  std::uint32_t max_attempts = 64);

}  // namespace hybridic::dse
