// Reproducer shrinking: given a SyntheticConfig on which an oracle fails,
// greedily minimize the config — halving kernel counts, edge probability,
// byte volumes and work units, zeroing the mix probabilities — accepting
// each reduction only while the SAME oracle still fails. The result is the
// smallest configuration this deterministic strategy can reach, which
// becomes the pinned JSON reproducer.
#pragma once

#include <cstdint>

#include "apps/synthetic.hpp"
#include "dse/oracles.hpp"

namespace hybridic::dse {

/// Outcome of a shrink run.
struct ShrinkResult {
  apps::SyntheticConfig config;   ///< The minimized failing config.
  OracleResult failure;           ///< The oracle outcome on it.
  std::uint32_t attempts = 0;     ///< Candidate configs evaluated.
  std::uint32_t accepted = 0;     ///< Reductions that kept the failure.
};

/// Shrink `config` against `oracle`. The oracle must fail on `config`
/// (throws ConfigError otherwise — shrinking a passing config means the
/// caller mixed up its bookkeeping). Evaluates at most `max_attempts`
/// candidate configs; deterministic for fixed inputs.
[[nodiscard]] ShrinkResult shrink(const apps::SyntheticConfig& config,
                                  const Oracle& oracle,
                                  std::uint32_t max_attempts = 64);

}  // namespace hybridic::dse
