// Design-space case runner: takes one SyntheticConfig through the whole
// paper pipeline — QUAD profiling, Algorithm 1, and all five system
// variants (software, baseline, designed, full-crossbar, designed
// pipelined) — and bundles everything the invariant oracles inspect.
#pragma once

#include <cstdint>
#include <memory>

#include "apps/profile_cache.hpp"
#include "apps/synthetic.hpp"
#include "core/design_result.hpp"
#include "core/multi_board_design.hpp"
#include "sys/crossbar_system.hpp"
#include "sys/experiment.hpp"
#include "sys/multi_board.hpp"
#include "sys/pipeline_executor.hpp"

namespace hybridic::dse {

/// Everything produced for one explored design point. Shares the profiled
/// app (the schedule's graph points into it) with the profile cache, so
/// N design points over one config profile once.
struct DesignCase {
  apps::SyntheticConfig config;
  std::shared_ptr<const apps::ProfiledApp> app;
  sys::AppSchedule schedule;

  /// Designs, runs and resources of the four single-frame variants
  /// (sw / baseline / proposed / noc-only) plus energy.
  sys::AppExperiment exp;

  /// The fifth and sixth views: the full-crossbar comparison system and
  /// the multi-frame pipelined execution of the proposed design.
  sys::RunResult crossbar;
  sys::PipelineResult pipelined;
  sys::PipelineResult baseline_frames;
  std::uint32_t frame_count = 4;

  /// θ the designer consumed (sec/byte of the idle bus).
  double theta_seconds_per_byte = 0.0;

  /// Two-level multi-board view, present only when config.board_count > 1
  /// (shared_ptr keeps the case copyable; MultiBoardDesign is move-only).
  std::shared_ptr<const core::MultiBoardDesign> multi_design;
  std::shared_ptr<const sys::MultiBoardRunResult> multi_run;
};

/// Run the full pipeline for `config`. Throws ConfigError on invalid
/// configs and propagates SimTimeoutError from hung runs. With a cache
/// the profiling phase is memoized (and may be served by the cache's
/// persistent L2 tier); without one it runs fresh.
[[nodiscard]] DesignCase run_design_case(const apps::SyntheticConfig& config,
                                         apps::ProfileCache* cache = nullptr);

}  // namespace hybridic::dse
