// Standalone JSON reproducers for campaign failures: when an oracle fails
// on a generated design, the shrinker minimizes the SyntheticConfig and
// the campaign pins (oracle, expected outcome, config) as a small JSON
// file. test_dse_regressions replays every checked-in reproducer, so each
// campaign failure becomes a permanent regression test.
#pragma once

#include <string>
#include <vector>

#include "apps/synthetic.hpp"
#include "dse/oracles.hpp"

namespace hybridic::dse {

/// What a replay of the reproducer must observe.
enum class Expectation : std::uint8_t {
  kPass,  ///< The bug was fixed; the oracle must stay green.
  kFail,  ///< A pinned live failure (e.g. the mutation check) must still
          ///< reproduce.
};

/// One replayable campaign failure.
struct Reproducer {
  int schema = 1;
  std::string oracle;               ///< Oracle name to replay.
  Expectation expect = Expectation::kPass;
  std::string message;              ///< Failure message when pinned.
  apps::SyntheticConfig config;     ///< The (shrunk) offending config.
};

/// Serialize to pretty-printed JSON (stable field order).
[[nodiscard]] std::string to_json(const Reproducer& reproducer);

/// Parse a reproducer back from JSON; throws ConfigError naming the
/// missing/malformed field. Unknown config fields are rejected so typos
/// in hand-edited fixtures are caught.
[[nodiscard]] Reproducer parse_reproducer(const std::string& json);

/// Load and parse one reproducer file; throws ConfigError if unreadable.
[[nodiscard]] Reproducer load_reproducer(const std::string& path);

/// Re-run the reproducer's oracle on its config. Returns the oracle
/// outcome (the caller compares against `expect`).
[[nodiscard]] OracleResult replay(const Reproducer& reproducer,
                                  const OracleBounds& bounds = {});

/// File name a reproducer is saved under: "<oracle>-seed<seed>.json".
[[nodiscard]] std::string reproducer_file_name(const Reproducer& reproducer);

}  // namespace hybridic::dse
