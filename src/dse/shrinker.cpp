#include "dse/shrinker.hpp"

#include <algorithm>
#include <vector>

#include "dse/case_runner.hpp"
#include "util/error.hpp"

namespace hybridic::dse {
namespace {

/// Evaluate the oracle on one candidate; a candidate that fails to even
/// run (ConfigError, timeout) does not reproduce the original failure and
/// is rejected.
bool still_fails(const apps::SyntheticConfig& candidate,
                 const Oracle& oracle) {
  try {
    const DesignCase c = run_design_case(candidate);
    return !oracle.check(c).pass;
  } catch (const std::exception&) {
    return false;
  }
}

/// The reduction moves, most aggressive first. Each returns false when it
/// cannot reduce the config any further.
using Move = bool (*)(apps::SyntheticConfig&);

bool halve_kernels(apps::SyntheticConfig& c) {
  if (c.kernel_count <= 1) {
    return false;
  }
  c.kernel_count = std::max<std::uint32_t>(1, c.kernel_count / 2);
  return true;
}

bool drop_kernel(apps::SyntheticConfig& c) {
  if (c.kernel_count <= 1) {
    return false;
  }
  --c.kernel_count;
  return true;
}

bool halve_edge_probability(apps::SyntheticConfig& c) {
  if (c.kernel_edge_probability < 1e-3) {
    if (c.kernel_edge_probability == 0.0) {
      return false;
    }
    c.kernel_edge_probability = 0.0;
    return true;
  }
  c.kernel_edge_probability /= 2.0;
  return true;
}

bool halve_edge_bytes(apps::SyntheticConfig& c) {
  if (c.max_edge_bytes <= 64) {
    return false;
  }
  c.max_edge_bytes = std::max<std::uint64_t>(64, c.max_edge_bytes / 2);
  c.min_edge_bytes = std::min(c.min_edge_bytes, c.max_edge_bytes);
  return true;
}

bool halve_work_units(apps::SyntheticConfig& c) {
  if (c.max_work_units <= 64) {
    return false;
  }
  c.max_work_units = std::max<std::uint64_t>(64, c.max_work_units / 2);
  c.min_work_units = std::min(c.min_work_units, c.max_work_units);
  return true;
}

bool zero_duplication(apps::SyntheticConfig& c) {
  if (c.duplicable_probability == 0.0) {
    return false;
  }
  c.duplicable_probability = 0.0;
  return true;
}

bool zero_streaming(apps::SyntheticConfig& c) {
  if (c.streaming_probability == 0.0) {
    return false;
  }
  c.streaming_probability = 0.0;
  return true;
}

bool halve_boards(apps::SyntheticConfig& c) {
  // Never below 2: the board-conservation oracle needs a multi-board
  // case, so shrinking to a single board would manufacture a spurious
  // "still fails" and pin a reproducer that cannot replay the property.
  if (c.board_count <= 2) {
    return false;
  }
  c.board_count = std::max<std::uint32_t>(2, c.board_count / 2);
  return true;
}

}  // namespace

ConfigShrink shrink_config(
    const apps::SyntheticConfig& config,
    const std::function<bool(const apps::SyntheticConfig&)>& still_fails,
    std::uint32_t max_attempts) {
  ConfigShrink result;
  result.config = config;
  result.reproduced = still_fails(config);
  if (!result.reproduced) {
    return result;
  }

  static constexpr Move kMoves[] = {
      halve_kernels,     drop_kernel,      halve_edge_probability,
      halve_edge_bytes,  halve_work_units, zero_duplication,
      zero_streaming,    halve_boards,
  };

  // Fixpoint loop: keep applying moves until a full sweep accepts nothing
  // or the attempt budget runs out.
  bool progressed = true;
  while (progressed && result.attempts < max_attempts) {
    progressed = false;
    for (const Move move : kMoves) {
      if (result.attempts >= max_attempts) {
        break;
      }
      apps::SyntheticConfig candidate = result.config;
      if (!move(candidate)) {
        continue;
      }
      ++result.attempts;
      if (still_fails(candidate)) {
        result.config = candidate;
        ++result.accepted;
        progressed = true;
      }
    }
  }
  return result;
}

ShrinkResult shrink(const apps::SyntheticConfig& config,
                    const Oracle& oracle, std::uint32_t max_attempts) {
  {
    const DesignCase c = run_design_case(config);
    const OracleResult initial = oracle.check(c);
    require(!initial.pass,
            "shrink() called with a config that passes oracle '" +
                oracle.name + "'");
  }

  const ConfigShrink shrunk = shrink_config(
      config,
      [&oracle](const apps::SyntheticConfig& candidate) {
        return still_fails(candidate, oracle);
      },
      max_attempts);

  ShrinkResult result;
  result.config = shrunk.config;
  result.attempts = shrunk.attempts;
  result.accepted = shrunk.accepted;
  const DesignCase final_case = run_design_case(result.config);
  result.failure = oracle.check(final_case);
  return result;
}

}  // namespace hybridic::dse
