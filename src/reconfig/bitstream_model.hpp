// Partial-reconfiguration cost model — the paper's stated next step
// ("Runtime reconfigurability ... such that each application can dispose
// of its best interconnect", §VI).
//
// Models a Virtex-5-class partial-reconfiguration flow: the interconnect
// region's logic is covered by configuration frames; the partial
// bitstream streams into the device through ICAP at a fixed throughput.
#pragma once

#include <cstdint>

#include "core/resource_model.hpp"
#include "util/units.hpp"

namespace hybridic::reconfig {

/// Device/flow parameters.
struct ReconfigParams {
  /// Configuration payload attributable to one LUT of reconfigured area
  /// (frame bytes amortized over the LUTs a frame column covers).
  double bitstream_bytes_per_lut = 12.0;
  /// Fixed bitstream overhead (headers, sync words, pad frames).
  std::uint64_t bitstream_overhead_bytes = 16 * 1024;
  /// ICAP: 32 bit @ 100 MHz on Virtex-5.
  double icap_bytes_per_second = 400e6;
  /// Software driver overhead per reconfiguration (host-side).
  double driver_overhead_seconds = 250e-6;
};

/// Size of the partial bitstream covering `region` (the custom
/// interconnect's logic).
[[nodiscard]] Bytes bitstream_bytes(core::Resources region,
                                    const ReconfigParams& params);

/// Wall-clock time to swap the interconnect region.
[[nodiscard]] double reconfiguration_seconds(core::Resources region,
                                             const ReconfigParams& params);

}  // namespace hybridic::reconfig
