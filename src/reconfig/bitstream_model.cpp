#include "reconfig/bitstream_model.hpp"

#include <cmath>

namespace hybridic::reconfig {

Bytes bitstream_bytes(core::Resources region, const ReconfigParams& params) {
  // Registers ride along in the same frames as their LUTs; the LUT count
  // is the size driver. An empty region still costs the fixed overhead.
  const double payload =
      static_cast<double>(region.luts) * params.bitstream_bytes_per_lut;
  return Bytes{params.bitstream_overhead_bytes +
               static_cast<std::uint64_t>(std::llround(payload))};
}

double reconfiguration_seconds(core::Resources region,
                               const ReconfigParams& params) {
  const Bytes size = bitstream_bytes(region, params);
  return params.driver_overhead_seconds +
         static_cast<double>(size.count()) / params.icap_bytes_per_second;
}

}  // namespace hybridic::reconfig
