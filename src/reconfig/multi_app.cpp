#include "reconfig/multi_app.hpp"

#include <algorithm>
#include <map>

#include "core/interconnect_design.hpp"
#include "sys/executor.hpp"
#include "util/error.hpp"

namespace hybridic::reconfig {

std::string to_string(Strategy s) {
  switch (s) {
    case Strategy::kBusOnly:
      return "bus-only";
    case Strategy::kStaticUnion:
      return "static union";
    case Strategy::kPerAppReconfig:
      return "per-app reconfig";
  }
  return "?";
}

namespace {

/// Per-distinct-application design + measured timing, computed once.
struct AppPlan {
  core::DesignResult design;
  core::Resources interconnect_area;
  double proposed_seconds = 0.0;
  double baseline_seconds = 0.0;
};

AppPlan plan_for(const sys::AppSchedule& schedule,
                 const sys::PlatformConfig& platform) {
  AppPlan plan;
  const core::DesignInput input =
      sys::make_design_input(schedule, platform);
  plan.design = core::design_interconnect(input);
  plan.interconnect_area = core::interconnect_resources(plan.design);
  plan.proposed_seconds =
      sys::run_designed(schedule, plan.design, platform).total_seconds;
  plan.baseline_seconds =
      sys::run_baseline(schedule, platform).total_seconds;
  return plan;
}

}  // namespace

ScenarioResult evaluate_scenario(const std::vector<WorkloadPhase>& phases,
                                 Strategy strategy,
                                 const sys::PlatformConfig& platform,
                                 const ReconfigParams& params) {
  require(!phases.empty(), "scenario needs at least one phase");

  // Design each distinct application once.
  std::map<std::string, AppPlan> plans;
  for (const WorkloadPhase& phase : phases) {
    require(phase.schedule != nullptr, "phase without schedule");
    require(phase.iterations > 0, "phase with zero iterations");
    if (plans.find(phase.name) == plans.end()) {
      plans.emplace(phase.name, plan_for(*phase.schedule, platform));
    }
  }

  ScenarioResult result;
  result.strategy = strategy;

  // Provisioned area.
  switch (strategy) {
    case Strategy::kBusOnly:
      result.provisioned_interconnect = core::Resources{0, 0};
      break;
    case Strategy::kStaticUnion: {
      // Every distinct design coexists in the fabric.
      for (const auto& [name, plan] : plans) {
        result.provisioned_interconnect += plan.interconnect_area;
      }
      break;
    }
    case Strategy::kPerAppReconfig: {
      // The region must fit the largest single design.
      for (const auto& [name, plan] : plans) {
        result.provisioned_interconnect.luts =
            std::max(result.provisioned_interconnect.luts,
                     plan.interconnect_area.luts);
        result.provisioned_interconnect.regs =
            std::max(result.provisioned_interconnect.regs,
                     plan.interconnect_area.regs);
      }
      break;
    }
  }

  // Walk the phases.
  std::string active_design;  // Which design currently occupies the region.
  for (const WorkloadPhase& phase : phases) {
    const AppPlan& plan = plans.at(phase.name);
    PhaseOutcome outcome;
    outcome.name = phase.name;
    outcome.iterations = phase.iterations;

    switch (strategy) {
      case Strategy::kBusOnly:
        outcome.per_iteration_seconds = plan.baseline_seconds;
        break;
      case Strategy::kStaticUnion:
        outcome.per_iteration_seconds = plan.proposed_seconds;
        break;
      case Strategy::kPerAppReconfig:
        outcome.per_iteration_seconds = plan.proposed_seconds;
        if (active_design != phase.name) {
          // Swap the whole provisioned region (its frames are rewritten
          // regardless of how much of it the incoming design fills).
          outcome.reconfiguration_seconds = reconfiguration_seconds(
              result.provisioned_interconnect, params);
          active_design = phase.name;
        }
        break;
    }

    result.compute_total_seconds +=
        outcome.per_iteration_seconds * phase.iterations;
    result.reconfig_total_seconds += outcome.reconfiguration_seconds;
    result.phases.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace hybridic::reconfig
