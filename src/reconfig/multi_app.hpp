// Multi-application scenarios with runtime-reconfigurable interconnects —
// the quantitative version of the paper's future-work claim that each
// application should "dispose of its best interconnect".
//
// A scenario is a sequence of workload phases (application + iteration
// count). Three provisioning strategies are compared:
//
//  - kBusOnly:        the conventional baseline for every phase; no custom
//                     interconnect area, no reconfiguration.
//  - kStaticUnion:    one fixed fabric provisioned with every phase's
//                     custom interconnect simultaneously; per-phase
//                     performance of the proposed system, no swap cost,
//                     but the union's area.
//  - kPerAppReconfig: the interconnect region is partially reconfigured to
//                     each phase's optimal design; area is the largest
//                     single design, but every design switch pays the
//                     ICAP swap time (reconfig/bitstream_model.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_result.hpp"
#include "reconfig/bitstream_model.hpp"
#include "sys/experiment.hpp"
#include "sys/schedule.hpp"

namespace hybridic::reconfig {

/// One phase: an application run `iterations` times back to back.
struct WorkloadPhase {
  std::string name;                     ///< Dedup key for designs.
  const sys::AppSchedule* schedule = nullptr;
  std::uint32_t iterations = 1;
};

enum class Strategy : std::uint8_t {
  kBusOnly,
  kStaticUnion,
  kPerAppReconfig,
};

[[nodiscard]] std::string to_string(Strategy s);

/// Per-phase outcome.
struct PhaseOutcome {
  std::string name;
  std::uint32_t iterations = 1;
  double per_iteration_seconds = 0.0;
  double reconfiguration_seconds = 0.0;  ///< Paid entering this phase.
};

/// Scenario-level result.
struct ScenarioResult {
  Strategy strategy = Strategy::kBusOnly;
  double compute_total_seconds = 0.0;
  double reconfig_total_seconds = 0.0;
  core::Resources provisioned_interconnect;  ///< Fabric area reserved.
  std::vector<PhaseOutcome> phases;

  [[nodiscard]] double total_seconds() const {
    return compute_total_seconds + reconfig_total_seconds;
  }
};

/// Evaluate a scenario under a strategy. Schedules must stay alive for
/// the duration of the call (they reference their profiler's graph).
[[nodiscard]] ScenarioResult evaluate_scenario(
    const std::vector<WorkloadPhase>& phases, Strategy strategy,
    const sys::PlatformConfig& platform,
    const ReconfigParams& params = {});

}  // namespace hybridic::reconfig
