#include "sys/platform.hpp"

#include "util/error.hpp"

namespace hybridic::sys {

Platform::Platform(PlatformConfig config, std::size_t instance_count,
                   const core::DesignResult* design)
    : config_(config),
      host_("host", config.host_clock),
      kernel_("kernel", config.kernel_clock),
      bus_clock_("bus", config.bus_clock),
      noc_clock_("noc", config.noc_clock) {
  sdram_ = std::make_unique<mem::Sdram>("sdram", bus_clock_, config.sdram);
  bus_ = std::make_unique<bus::Bus>(
      "plb", engine_, bus_clock_, config.bus,
      std::make_unique<bus::PriorityArbiter>());
  dma_ = std::make_unique<bus::Dma>("dma", engine_, *bus_, *sdram_, host_,
                                    config.dma, /*bus_master=*/1);
  for (std::size_t i = 0; i < instance_count; ++i) {
    brams_.push_back(std::make_unique<mem::Bram>(
        "bram" + std::to_string(i), kernel_, config.bram_capacity,
        config.bram_port_width_bytes));
  }

  if (design != nullptr && design->noc.has_value()) {
    const core::NocPlan& plan = *design->noc;
    noc::Mesh2D mesh{plan.mesh_width, plan.mesh_height};
    network_ = std::make_unique<noc::Network>("noc", engine_, noc_clock_,
                                              mesh, config.noc);
    for (const core::NocAttachment& attachment : plan.attachments) {
      const auto kind = attachment.kind == core::NocNodeKind::kKernel
                            ? noc::AdapterKind::kAccelerator
                            : noc::AdapterKind::kLocalMemory;
      const std::string name =
          design->instances[attachment.instance].name +
          (attachment.kind == core::NocNodeKind::kKernel ? ".na" : ".mem_na");
      network_->attach_adapter(attachment.node, name, kind);
      noc_nodes_[{attachment.instance, attachment.kind}] = attachment.node;
    }
  }

  if (config_.faults.any_faults()) {
    injector_ = std::make_unique<faults::FaultInjector>(config_.faults);
    sdram_->set_faults(injector_.get());
    bus_->set_faults(injector_.get());
    dma_->set_faults(injector_.get());
    for (std::size_t i = 0; i < brams_.size(); ++i) {
      brams_[i]->set_faults(injector_.get(), i);
    }
    if (network_ != nullptr) {
      network_->set_faults(injector_.get());
    }
  }
}

mem::Bram& Platform::bram(std::size_t instance) {
  require(instance < brams_.size(), "platform BRAM index out of range");
  return *brams_[instance];
}

std::optional<std::uint32_t> Platform::noc_node(
    std::size_t instance, core::NocNodeKind kind) const {
  const auto it = noc_nodes_.find({instance, kind});
  if (it == noc_nodes_.end()) {
    return std::nullopt;
  }
  return it->second;
}

double Platform::measured_theta(Bytes reference) const {
  return bus_->theta_seconds_per_byte(reference);
}

}  // namespace hybridic::sys
