#include "sys/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/table.hpp"

namespace hybridic::sys {

std::string render_timeline(const RunResult& result,
                            const TimelineOptions& options) {
  std::ostringstream out;
  out << "timeline: " << result.system_name << "  total "
      << format_fixed(result.total_seconds * 1e3, 3) << " ms\n";
  if (result.steps.empty() || result.total_seconds <= 0.0) {
    return out.str();
  }

  std::size_t label_width = 4;
  for (const StepTiming& step : result.steps) {
    label_width = std::max(label_width, step.name.size());
  }

  const double scale =
      static_cast<double>(options.width_chars) / result.total_seconds;
  const auto column = [scale](double seconds) {
    return static_cast<std::uint32_t>(std::lround(seconds * scale));
  };

  for (const StepTiming& step : result.steps) {
    if (!options.show_host_steps && !step.is_kernel) {
      continue;
    }
    const std::uint32_t start = column(step.start_seconds);
    const std::uint32_t end =
        std::max(column(step.done_seconds), start + 1);
    // Within [start, end): communication first (fetch), then compute.
    // The renderer splits proportionally since phases interleave.
    const double span = step.done_seconds - step.start_seconds;
    const double comm_fraction =
        span > 0.0 ? std::min(1.0, step.comm_seconds / span) : 0.0;
    const auto comm_cols = static_cast<std::uint32_t>(
        std::lround(comm_fraction * (end - start)));

    out << step.name << std::string(label_width - step.name.size(), ' ')
        << " |" << std::string(start, ' ');
    const char work = step.is_kernel ? '#' : '=';
    for (std::uint32_t c = start; c < end; ++c) {
      out << (c < start + comm_cols ? '.' : work);
    }
    out << std::string(options.width_chars - std::min(options.width_chars,
                                                      end),
                       ' ')
        << "| " << format_fixed((step.done_seconds - step.start_seconds) *
                                    1e3,
                                3)
        << " ms\n";
  }
  out << std::string(label_width, ' ') << "  ('#' kernel compute, '='"
      << " host, '.' exposed communication)\n";
  return out.str();
}

std::string timeline_csv(const RunResult& result) {
  std::ostringstream out;
  out << "step,name,kind,start_s,done_s,compute_s,comm_s\n";
  for (std::size_t i = 0; i < result.steps.size(); ++i) {
    const StepTiming& step = result.steps[i];
    out << i << ',' << step.name << ','
        << (step.is_kernel ? "kernel" : "host") << ','
        << step.start_seconds << ',' << step.done_seconds << ','
        << step.compute_seconds << ',' << step.comm_seconds << '\n';
  }
  return out.str();
}

namespace {

char event_glyph(engine::EventKind kind) {
  switch (kind) {
    case engine::EventKind::kCompute:
      return '#';
    case engine::EventKind::kDmaIn:
    case engine::EventKind::kDmaOut:
      return '=';
    case engine::EventKind::kNocTransfer:
      return '>';
    case engine::EventKind::kSharedHandoff:
      return '*';
    case engine::EventKind::kStall:
      return '.';
    case engine::EventKind::kFault:
      return '!';
    case engine::EventKind::kRetry:
      return 'r';
    case engine::EventKind::kReroute:
      return '~';
  }
  return '?';
}

}  // namespace

std::string render_trace_lanes(const RunResult& result,
                               const TimelineOptions& options) {
  const engine::ExecTrace& trace = result.trace;
  std::ostringstream out;
  out << "trace: " << result.system_name << "  total "
      << format_fixed(result.total_seconds * 1e3, 3) << " ms\n";
  if (trace.empty() || result.total_seconds <= 0.0) {
    return out.str();
  }

  std::size_t label_width = 4;
  for (std::size_t f = 0; f < engine::kFabricCount; ++f) {
    const auto fabric = static_cast<engine::Fabric>(f);
    if (trace.usage(fabric).ops > 0) {
      label_width = std::max(
          label_width, std::string(engine::fabric_name(fabric)).size());
    }
  }

  const double scale =
      static_cast<double>(options.width_chars) / result.total_seconds;
  const auto column = [&](double seconds) {
    return std::min(options.width_chars,
                    static_cast<std::uint32_t>(
                        std::lround(std::max(0.0, seconds) * scale)));
  };

  for (std::size_t f = 0; f < engine::kFabricCount; ++f) {
    const auto fabric = static_cast<engine::Fabric>(f);
    const engine::FabricUsage& usage = trace.usage(fabric);
    if (usage.ops == 0) {
      continue;
    }
    std::string lane(options.width_chars, ' ');
    for (const std::size_t i : trace.chronological()) {
      const engine::TraceEvent& event = trace.events()[i];
      if (event.fabric != fabric || engine::is_annotation(event.kind)) {
        continue;
      }
      const std::uint32_t start = column(event.start_seconds);
      const std::uint32_t end =
          std::max(column(event.end_seconds),
                   std::min(options.width_chars, start + 1));
      const char glyph = event_glyph(event.kind);
      for (std::uint32_t c = start; c < end; ++c) {
        lane[c] = glyph;
      }
    }
    // Fault/retry/reroute markers paint on top so a transfer painted over
    // the same column cannot hide them (stalls stay implicit gaps).
    for (const std::size_t i : trace.chronological()) {
      const engine::TraceEvent& event = trace.events()[i];
      if (event.fabric != fabric || !engine::is_annotation(event.kind) ||
          event.kind == engine::EventKind::kStall) {
        continue;
      }
      const std::uint32_t start = column(event.start_seconds);
      lane[std::min(options.width_chars - 1, start)] =
          event_glyph(event.kind);
    }
    const std::string name = engine::fabric_name(fabric);
    out << name << std::string(label_width - name.size(), ' ') << " |"
        << lane << "| " << format_fixed(usage.busy_seconds * 1e3, 3)
        << " ms";
    if (usage.bytes > 0) {
      out << ", " << usage.bytes << " B";
    }
    out << '\n';
  }
  out << std::string(label_width, ' ')
      << "  ('#' compute, '=' DMA, '>' NoC/crossbar, '*' handoff,"
      << " '!' fault, 'r' retry, '~' reroute)\n";
  return out.str();
}

std::string trace_csv(const engine::ExecTrace& trace) {
  std::ostringstream out;
  out << "event,kind,fabric,step,start_s,end_s,bytes,label\n";
  std::size_t row = 0;
  for (const std::size_t i : trace.chronological()) {
    const engine::TraceEvent& event = trace.events()[i];
    out << row++ << ',' << engine::event_kind_name(event.kind) << ','
        << engine::fabric_name(event.fabric) << ',' << event.step_index
        << ',' << event.start_seconds << ',' << event.end_seconds << ','
        << event.bytes << ',' << event.label << '\n';
  }
  return out.str();
}

}  // namespace hybridic::sys
