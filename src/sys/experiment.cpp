#include "sys/experiment.hpp"

#include "sys/engine/context.hpp"
#include "util/error.hpp"

namespace hybridic::sys {

core::DesignInput make_design_input(const AppSchedule& schedule,
                                    const PlatformConfig& platform) {
  core::DesignInput input;
  input.graph = schedule.graph;
  input.kernels = schedule.specs;
  input.kernel_clock = platform.kernel_clock;

  // θ: measured average sec/byte of the (idle) bus at a representative
  // transfer size.
  input.theta.seconds_per_byte = engine::measured_theta(platform);

  input.stream_overhead_seconds = platform.stream_overhead_seconds;
  input.duplication_overhead_seconds = platform.duplication_overhead_seconds;
  return input;
}

AppExperiment run_experiment(const AppSchedule& schedule,
                             const PlatformConfig& platform,
                             const AppEnvironment& env) {
  require(schedule.graph != nullptr, "experiment schedule has no graph");

  AppExperiment exp;
  exp.app_name = schedule.app_name;

  // Designs.
  core::DesignInput input = make_design_input(schedule, platform);
  exp.proposed_design = core::design_interconnect(input);

  core::DesignInput noc_only_input = input;
  noc_only_input.enable_shared_memory = false;
  noc_only_input.enable_adaptive_mapping = false;
  exp.noc_only_design = core::design_interconnect(noc_only_input);

  // Runs.
  exp.sw = run_software(schedule, platform);
  exp.baseline = run_baseline(schedule, platform);
  exp.proposed = run_designed(schedule, exp.proposed_design, platform,
                              "proposed");
  exp.noc_only = run_designed(schedule, exp.noc_only_design, platform,
                              "noc-only");

  // Resources (Table IV): base infrastructure + bus + kernels
  // (+ interconnect for the custom systems).
  const core::Resources bus_area{
      core::component_cost(core::Component::kBus).luts,
      core::component_cost(core::Component::kBus).regs};

  core::Resources baseline_kernels{0, 0};
  for (const core::KernelSpec& spec : schedule.specs) {
    baseline_kernels += core::Resources{spec.area_luts, spec.area_regs};
  }
  exp.kernel_area =
      core::kernel_resources(exp.proposed_design, schedule.specs);
  exp.interconnect_area =
      core::interconnect_resources(exp.proposed_design);

  exp.baseline_resources =
      env.base_infrastructure + bus_area + baseline_kernels;
  exp.proposed_resources = env.base_infrastructure + bus_area +
                           exp.kernel_area + exp.interconnect_area;
  exp.noc_only_resources =
      env.base_infrastructure + bus_area +
      core::kernel_resources(exp.noc_only_design, schedule.specs) +
      core::interconnect_resources(exp.noc_only_design);

  // Energy (Fig. 9).
  exp.baseline_power_watts =
      core::system_power_watts(exp.baseline_resources, env.power);
  exp.proposed_power_watts =
      core::system_power_watts(exp.proposed_resources, env.power);
  exp.baseline_energy_joules = core::energy_joules(
      exp.baseline_power_watts, exp.baseline.total_seconds);
  exp.proposed_energy_joules = core::energy_joules(
      exp.proposed_power_watts, exp.proposed.total_seconds);

  return exp;
}

}  // namespace hybridic::sys
