// Parallel experiment engine: fans independent, keyed jobs (one
// AppExperiment, one sweep point, one synthetic shape) across a
// work-stealing thread pool and aggregates results in submission order.
//
// Determinism contract — results are bit-identical regardless of thread
// count and scheduling order because:
//  * every job owns its state: executors build their own Platform (and
//    therefore their own sim::Engine and stats), nothing is shared mutably;
//  * every job gets its own RNG stream, seeded from a stable hash of the
//    job key (never from time, thread id, or submission interleaving);
//  * results land in a slot fixed by submission index, and callers iterate
//    slots in order — reduction order never depends on completion order.
//
// A job that throws is recorded (key + message) without poisoning the
// batch: every other job still runs to completion, and the runner stays
// usable for further batches. run() rethrows the first failure afterwards;
// inspect last_report() for the full picture.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hybridic::sys {

/// Handed to each job; everything a job may depend on beyond its inputs.
struct JobContext {
  std::string key;        ///< The job's unique key.
  std::uint64_t seed;     ///< job_seed(key) — stable across runs/threads.
  Rng rng;                ///< Seeded with `seed`; private to the job.
  std::size_t index = 0;  ///< Submission index (== result slot).
};

/// Per-job execution record (submission order in BatchReport::jobs).
struct JobReport {
  std::string key;
  std::uint64_t seed = 0;
  std::size_t index = 0;
  std::size_t worker = 0;      ///< Pool worker that ran the job.
  double wall_seconds = 0.0;
  bool ok = true;
  std::string error;           ///< Exception message when !ok.
};

/// Metrics for the last run() batch.
struct BatchReport {
  std::size_t thread_count = 0;
  double wall_seconds = 0.0;     ///< Submission of first to completion of last.
  std::uint64_t steals = 0;      ///< Pool steals during this batch.
  std::vector<JobReport> jobs;

  [[nodiscard]] double total_job_seconds() const {
    double sum = 0.0;
    for (const JobReport& job : jobs) {
      sum += job.wall_seconds;
    }
    return sum;
  }
  [[nodiscard]] std::size_t failed_count() const {
    std::size_t n = 0;
    for (const JobReport& job : jobs) {
      n += job.ok ? 0 : 1;
    }
    return n;
  }
};

/// Deterministic RNG seed for a job key: FNV-1a 64 over the key bytes,
/// finalized with a splitmix-style mix so near-identical keys get
/// uncorrelated streams.
[[nodiscard]] std::uint64_t job_seed(std::string_view key);

class BatchRunner {
public:
  /// One unit of work producing an R.
  template <typename R>
  struct Job {
    std::string key;
    std::function<R(JobContext&)> run;
  };

  /// `threads` == 0 means hardware concurrency.
  explicit BatchRunner(std::size_t threads = 0) : pool_(threads) {}

  /// Run all jobs to completion; results in submission order. If any job
  /// threw, rethrows the first failure (by submission index) as
  /// ConfigError after the whole batch has drained.
  template <typename R>
  std::vector<R> run(std::vector<Job<R>> jobs) {
    std::vector<std::optional<R>> slots(jobs.size());
    std::vector<std::string> keys;
    keys.reserve(jobs.size());
    for (const Job<R>& job : jobs) {
      keys.push_back(job.key);
    }
    run_erased(keys, [&jobs, &slots](std::size_t i, JobContext& context) {
      slots[i].emplace(jobs[i].run(context));
    });
    rethrow_first_failure();
    std::vector<R> results;
    results.reserve(slots.size());
    for (std::optional<R>& slot : slots) {
      results.push_back(std::move(*slot));
    }
    return results;
  }

  /// As run(), but failures only land in last_report() — failed jobs yield
  /// no value, and the returned vector holds std::nullopt in their slots.
  template <typename R>
  std::vector<std::optional<R>> run_collect(std::vector<Job<R>> jobs) {
    std::vector<std::optional<R>> slots(jobs.size());
    std::vector<std::string> keys;
    keys.reserve(jobs.size());
    for (const Job<R>& job : jobs) {
      keys.push_back(job.key);
    }
    run_erased(keys, [&jobs, &slots](std::size_t i, JobContext& context) {
      slots[i].emplace(jobs[i].run(context));
    });
    return slots;
  }

  [[nodiscard]] std::size_t thread_count() const {
    return pool_.thread_count();
  }

  /// Metrics of the most recent batch.
  [[nodiscard]] const BatchReport& last_report() const { return last_; }

private:
  /// Run one keyed invocation per index on the pool; fills last_.
  void run_erased(
      const std::vector<std::string>& keys,
      const std::function<void(std::size_t, JobContext&)>& invoke);

  /// Throw ConfigError for the lowest-index failed job, if any.
  void rethrow_first_failure() const;

  ThreadPool pool_;
  BatchReport last_;
};

}  // namespace hybridic::sys
