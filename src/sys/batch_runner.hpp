// Parallel experiment engine: fans independent, keyed jobs (one
// AppExperiment, one sweep point, one synthetic shape) across a
// work-stealing thread pool and aggregates results in submission order.
//
// Determinism contract — results are bit-identical regardless of thread
// count and scheduling order because:
//  * every job owns its state: executors build their own Platform (and
//    therefore their own sim::Engine and stats), nothing is shared mutably;
//  * every job gets its own RNG stream, seeded from a stable hash of the
//    job key (never from time, thread id, or submission interleaving);
//  * results land in a slot fixed by submission index, and callers iterate
//    slots in order — reduction order never depends on completion order.
//
// A job that throws is recorded (key + message) without poisoning the
// batch: every other job still runs to completion, and the runner stays
// usable for further batches. run() rethrows the first failure afterwards;
// inspect last_report() for the full picture.
//
// Supervised batches (docs/MODEL.md §17) add a crash-safety layer on the
// same pool: a per-job wall-clock watchdog (the attempt runs on its own
// thread and is abandoned when the budget expires), bounded retry with
// exponential backoff for failures a caller-supplied predicate classifies
// as transient, and an admission gate that skips not-yet-started jobs
// once a stop flag is raised. Supervised jobs never poison the batch:
// every job ends in exactly one of ok / crashed / timeout / skipped.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hybridic::sys {

/// Terminal state of one supervised job.
enum class JobStatus : std::uint8_t {
  kOk = 0,
  kCrashed,  ///< Threw: non-transient, or the transient retry budget ran out.
  kTimeout,  ///< The wall-clock watchdog expired; the attempt was abandoned.
  kSkipped,  ///< Never started: stop was requested before admission.
};

[[nodiscard]] const char* job_status_name(JobStatus status);

/// Deterministic watchdog-expiry message ("%g"-formatted budget, no
/// measured times) so a quarantined row's text is identical across runs.
[[nodiscard]] std::string watchdog_expired_message(double timeout_seconds);

/// Run `fn` to completion under an optional wall-clock watchdog and
/// report how it ended (kOk / kCrashed / kTimeout). `timeout_seconds` == 0
/// runs inline with no watchdog. Used for quarantine-shrink probes, where
/// a candidate config may itself wedge.
[[nodiscard]] JobStatus probe_supervised(const std::function<void()>& fn,
                                         double timeout_seconds);

struct SuperviseOptions {
  /// Per-attempt wall-clock budget in seconds; 0 disables the watchdog
  /// (attempts then run inline on the pool worker).
  double job_timeout_seconds = 0.0;
  /// Extra attempts granted when `is_transient` classifies a thrown
  /// failure as retryable (a flaky filesystem, not a logic bug).
  std::uint32_t transient_retries = 0;
  /// Delay before the first retry; doubles on each subsequent retry.
  double backoff_initial_seconds = 0.005;
  /// Classifies a thrown exception as transient (retryable). Empty =
  /// nothing is transient. Called on the attempt thread.
  std::function<bool(const std::exception&)> is_transient;
  /// Admission gate: when set and true, jobs (and retries) that have not
  /// started yet finish as kSkipped; in-flight attempts still run to
  /// completion (bounded by the watchdog when one is configured).
  const std::atomic<bool>* stop_requested = nullptr;
};

template <typename R>
struct SupervisedResult {
  JobStatus status = JobStatus::kSkipped;
  std::optional<R> value;      ///< Present exactly when status == kOk.
  std::string error;           ///< Failure/timeout/skip message otherwise.
  std::uint32_t attempts = 0;  ///< Attempts actually started.
};

/// Handed to each job; everything a job may depend on beyond its inputs.
struct JobContext {
  std::string key;        ///< The job's unique key.
  std::uint64_t seed;     ///< job_seed(key) — stable across runs/threads.
  Rng rng;                ///< Seeded with `seed`; private to the job.
  std::size_t index = 0;  ///< Submission index (== result slot).
};

/// Per-job execution record (submission order in BatchReport::jobs).
struct JobReport {
  std::string key;
  std::uint64_t seed = 0;
  std::size_t index = 0;
  std::size_t worker = 0;      ///< Pool worker that ran the job.
  double wall_seconds = 0.0;
  bool ok = true;
  std::string error;           ///< Exception message when !ok.
  /// Supervised batches only (run_supervised): terminal state and the
  /// number of attempts started. Plain run()/run_collect() leave the
  /// defaults (kOk / 1).
  JobStatus status = JobStatus::kOk;
  std::uint32_t attempts = 1;
};

/// Metrics for the last run() batch.
struct BatchReport {
  std::size_t thread_count = 0;
  double wall_seconds = 0.0;     ///< Submission of first to completion of last.
  std::uint64_t steals = 0;      ///< Pool steals during this batch.
  std::vector<JobReport> jobs;

  [[nodiscard]] double total_job_seconds() const {
    double sum = 0.0;
    for (const JobReport& job : jobs) {
      sum += job.wall_seconds;
    }
    return sum;
  }
  [[nodiscard]] std::size_t failed_count() const {
    std::size_t n = 0;
    for (const JobReport& job : jobs) {
      n += job.ok ? 0 : 1;
    }
    return n;
  }
};

/// Deterministic RNG seed for a job key: FNV-1a 64 over the key bytes,
/// finalized with a splitmix-style mix so near-identical keys get
/// uncorrelated streams.
[[nodiscard]] std::uint64_t job_seed(std::string_view key);

namespace detail {

/// Blocks template deduction on a parameter so callers can pass a lambda
/// where a std::function of an already-deduced R is expected.
template <typename T>
struct NonDeduced {
  using type = T;
};
template <typename T>
using non_deduced_t = typename NonDeduced<T>::type;

template <typename R>
struct AttemptOutcome {
  JobStatus status = JobStatus::kCrashed;
  std::optional<R> value;
  std::string error;
  bool transient = false;
};

/// One attempt body: run the job, classify any failure. Never throws.
template <typename R>
AttemptOutcome<R> run_attempt(
    const std::function<R(JobContext&)>& fn, JobContext& context,
    const std::function<bool(const std::exception&)>& classify) {
  AttemptOutcome<R> outcome;
  try {
    outcome.value.emplace(fn(context));
    outcome.status = JobStatus::kOk;
  } catch (const std::exception& e) {
    outcome.status = JobStatus::kCrashed;
    outcome.error = e.what();
    outcome.transient = classify && classify(e);
  } catch (...) {
    outcome.status = JobStatus::kCrashed;
    outcome.error = "unknown exception";
  }
  return outcome;
}

/// One attempt on a dedicated thread, abandoned (detached) when the
/// wall-clock budget expires. The attempt thread owns copies of
/// everything it touches — the job function, its context, and the shared
/// completion state — so abandoning it leaks no references into the
/// caller's frame; a late completion writes only into state the thread
/// itself keeps alive.
template <typename R>
AttemptOutcome<R> attempt_with_watchdog(
    std::function<R(JobContext&)> fn, JobContext context,
    std::function<bool(const std::exception&)> classify,
    double timeout_seconds) {
  struct Shared {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    AttemptOutcome<R> outcome;
  };
  auto shared = std::make_shared<Shared>();
  std::thread worker{[shared, fn = std::move(fn), classify = std::move(classify),
                      context = std::move(context)]() mutable {
    AttemptOutcome<R> outcome = run_attempt<R>(fn, context, classify);
    std::lock_guard<std::mutex> lock{shared->mutex};
    shared->outcome = std::move(outcome);
    shared->done = true;
    // Notify under the lock: the supervisor may stop referencing `shared`
    // the moment it observes done (it holds its own shared_ptr, but the
    // cv must not be signalled outside the critical section).
    shared->cv.notify_all();
  }};
  std::unique_lock<std::mutex> lock{shared->mutex};
  const bool finished = shared->cv.wait_for(
      lock, std::chrono::duration<double>{timeout_seconds},
      [&shared] { return shared->done; });
  if (finished) {
    AttemptOutcome<R> outcome = std::move(shared->outcome);
    lock.unlock();
    worker.join();
    return outcome;
  }
  lock.unlock();
  worker.detach();
  AttemptOutcome<R> timeout;
  timeout.status = JobStatus::kTimeout;
  timeout.error = watchdog_expired_message(timeout_seconds);
  return timeout;
}

}  // namespace detail

class BatchRunner {
public:
  /// One unit of work producing an R.
  template <typename R>
  struct Job {
    std::string key;
    std::function<R(JobContext&)> run;
  };

  /// `threads` == 0 means hardware concurrency.
  explicit BatchRunner(std::size_t threads = 0) : pool_(threads) {}

  /// Run all jobs to completion; results in submission order. If any job
  /// threw, rethrows the first failure (by submission index) as
  /// ConfigError after the whole batch has drained.
  template <typename R>
  std::vector<R> run(std::vector<Job<R>> jobs) {
    std::vector<std::optional<R>> slots(jobs.size());
    std::vector<std::string> keys;
    keys.reserve(jobs.size());
    for (const Job<R>& job : jobs) {
      keys.push_back(job.key);
    }
    run_erased(keys, [&jobs, &slots](std::size_t i, JobContext& context) {
      slots[i].emplace(jobs[i].run(context));
    });
    rethrow_first_failure();
    std::vector<R> results;
    results.reserve(slots.size());
    for (std::optional<R>& slot : slots) {
      results.push_back(std::move(*slot));
    }
    return results;
  }

  /// As run(), but failures only land in last_report() — failed jobs yield
  /// no value, and the returned vector holds std::nullopt in their slots.
  template <typename R>
  std::vector<std::optional<R>> run_collect(std::vector<Job<R>> jobs) {
    std::vector<std::optional<R>> slots(jobs.size());
    std::vector<std::string> keys;
    keys.reserve(jobs.size());
    for (const Job<R>& job : jobs) {
      keys.push_back(job.key);
    }
    run_erased(keys, [&jobs, &slots](std::size_t i, JobContext& context) {
      slots[i].emplace(jobs[i].run(context));
    });
    return slots;
  }

  /// As run_collect(), but each job runs under supervision: a per-attempt
  /// wall-clock watchdog, bounded transient retry with exponential
  /// backoff, and a stop-flag admission gate. Every slot reports exactly
  /// one terminal status; nothing is rethrown. Results stay in submission
  /// order and retries replay the job's own RNG stream from scratch, so
  /// supervision never perturbs the determinism contract.
  ///
  /// `on_settled`, when set, fires on the worker thread the moment a
  /// job's terminal status is known — before the batch drains — so a
  /// caller can checkpoint completions incrementally (a crash then loses
  /// at most the in-flight jobs). It fires exactly once per job; an
  /// exception it throws is recorded against the job like a job failure.
  template <typename R>
  std::vector<SupervisedResult<R>> run_supervised(
      std::vector<Job<R>> jobs, const SuperviseOptions& options,
      const detail::non_deduced_t<
          std::function<void(std::size_t, const SupervisedResult<R>&)>>&
          on_settled = nullptr) {
    // Jobs and slots live on the heap behind shared_ptrs: an abandoned
    // watchdog thread may still hold a copy of a job function after this
    // frame returns, and the erased lambda must stay copyable.
    auto owned =
        std::make_shared<std::vector<Job<R>>>(std::move(jobs));
    auto slots = std::make_shared<std::vector<SupervisedResult<R>>>(
        owned->size());
    std::vector<std::string> keys;
    keys.reserve(owned->size());
    for (const Job<R>& job : *owned) {
      keys.push_back(job.key);
    }
    const SuperviseOptions* opts = &options;
    const auto* settle = &on_settled;
    run_erased(keys, [owned, slots, opts, settle](std::size_t i,
                                                  JobContext& context) {
      supervise_one<R>((*owned)[i], context, *opts, (*slots)[i]);
      if (*settle) {
        (*settle)(i, (*slots)[i]);
      }
    });
    for (std::size_t i = 0; i < slots->size(); ++i) {
      JobReport& report = last_.jobs[i];
      const SupervisedResult<R>& slot = (*slots)[i];
      report.status = slot.status;
      report.attempts = slot.attempts;
      if (slot.status != JobStatus::kOk) {
        report.ok = false;
        report.error = slot.error;
      }
    }
    return std::move(*slots);
  }

  [[nodiscard]] std::size_t thread_count() const {
    return pool_.thread_count();
  }

  /// Metrics of the most recent batch.
  [[nodiscard]] const BatchReport& last_report() const { return last_; }

private:
  /// Supervision loop for one job: admission gate, backoff, bounded
  /// retry. Runs on the pool worker that picked the job up; never throws.
  template <typename R>
  static void supervise_one(const Job<R>& job, const JobContext& context,
                            const SuperviseOptions& options,
                            SupervisedResult<R>& slot) {
    const std::uint32_t max_attempts = 1 + options.transient_retries;
    double backoff = options.backoff_initial_seconds;
    for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
      if (options.stop_requested != nullptr &&
          options.stop_requested->load(std::memory_order_relaxed)) {
        slot.status = JobStatus::kSkipped;
        slot.error = "skipped: stop requested before the job started";
        return;
      }
      if (attempt > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>{backoff});
        backoff *= 2.0;
      }
      ++slot.attempts;
      // Every attempt replays the identical inputs: same key, same seed,
      // a fresh RNG stream — a retried job cannot observe its own retry.
      JobContext fresh{context.key, context.seed, Rng{context.seed},
                       context.index};
      detail::AttemptOutcome<R> outcome =
          options.job_timeout_seconds > 0.0
              ? detail::attempt_with_watchdog<R>(
                    job.run, std::move(fresh), options.is_transient,
                    options.job_timeout_seconds)
              : detail::run_attempt<R>(job.run, fresh, options.is_transient);
      slot.status = outcome.status;
      slot.error = std::move(outcome.error);
      if (outcome.status == JobStatus::kOk) {
        slot.value = std::move(outcome.value);
        return;
      }
      if (outcome.status == JobStatus::kTimeout || !outcome.transient) {
        // A wedge is deterministic (retrying burns another full budget for
        // the same answer) and a logic bug is not transient: both go
        // straight to the caller's quarantine path.
        return;
      }
    }
  }

  /// Run one keyed invocation per index on the pool; fills last_.
  void run_erased(
      const std::vector<std::string>& keys,
      const std::function<void(std::size_t, JobContext&)>& invoke);

  /// Throw ConfigError for the lowest-index failed job, if any.
  void rethrow_first_failure() const;

  ThreadPool pool_;
  BatchReport last_;
};

}  // namespace hybridic::sys
