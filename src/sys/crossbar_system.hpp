// The full-crossbar comparison system — the paper's §II-A group-4
// interconnect class, added as a fourth evaluated variant.
//
// Every kernel's local memory hangs off one full N-port crossbar; a
// producer streams its output directly into the consumer's BRAM during
// its own compute (zero switch latency, per-memory-port bandwidth).
// Host↔kernel traffic stays on the system bus. Performance-wise this is
// close to the NoC (transfers hide behind compute); area-wise the
// crosspoint count grows with the square of the kernel count — the trade
// the hybrid design avoids.
#pragma once

#include "core/resource_model.hpp"
#include "sys/executor.hpp"
#include "sys/platform.hpp"
#include "sys/schedule.hpp"

namespace hybridic::sys {

/// Run the schedule on a full-crossbar system.
[[nodiscard]] RunResult run_crossbar_system(const AppSchedule& schedule,
                                            PlatformConfig config);

/// Interconnect area of the full-crossbar system for `kernel_count`
/// kernels (kernels x memories crosspoints).
[[nodiscard]] core::Resources crossbar_system_resources(
    std::uint32_t kernel_count);

}  // namespace hybridic::sys
