// Application schedule: the function-level execution model the executors
// replay on a platform.
//
// Matching the paper's model (Eq. 2 sums once over kernels), a schedule has
// one step per application function in program order. Kernel steps carry
// both a software cycle count (execution on the 400 MHz host, for the SW
// reference) and a hardware cycle count (τ_i on the 100 MHz fabric); data
// volumes come from the profiled communication graph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/kernel_model.hpp"
#include "prof/comm_graph.hpp"
#include "util/units.hpp"

namespace hybridic::sys {

/// One function-level step.
struct ScheduleStep {
  std::string name;
  prof::FunctionId function = 0;
  bool is_kernel = false;
  Cycles sw_cycles{0};         ///< Work on the host.
  Cycles hw_cycles{0};         ///< τ on the kernel fabric (kernels only).
  std::size_t spec_index = 0;  ///< Into AppSchedule::specs (kernels only).
};

/// The whole application, ready to execute on any system variant.
struct AppSchedule {
  std::string app_name;
  const prof::CommGraph* graph = nullptr;
  std::vector<core::KernelSpec> specs;  ///< L_hw for the designer.
  std::vector<ScheduleStep> steps;      ///< Program order.

  /// Step index of `function`; throws if absent.
  [[nodiscard]] std::size_t step_of(prof::FunctionId function) const;
};

/// Calibration constants used to derive a schedule from a profile run.
struct CalibrationEntry {
  std::string function;
  double host_cycles_per_work_unit = 4.0;
  double kernel_cycles_per_work_unit = 1.0;  ///< Kernels only.
  std::uint32_t area_luts = 0;               ///< Kernels only.
  std::uint32_t area_regs = 0;
  bool is_kernel = false;
  bool duplicable = false;
  bool streaming = false;
};

/// Build a schedule from a completed profile. Functions appear in the
/// order they were declared to the profiler, which the applications keep
/// aligned with program order. Every calibration entry must name a
/// profiled function.
[[nodiscard]] AppSchedule build_schedule(
    std::string app_name, const prof::CommGraph& graph,
    const std::vector<CalibrationEntry>& calibration);

/// As above, but steps follow an explicit program order (typically the
/// profiler's observed first-invocation order, QuadProfiler::call_order()).
/// Profiled functions missing from `order` are appended afterwards in id
/// order; ids in `order` must be unique and valid.
[[nodiscard]] AppSchedule build_schedule(
    std::string app_name, const prof::CommGraph& graph,
    const std::vector<CalibrationEntry>& calibration,
    const std::vector<prof::FunctionId>& order);

}  // namespace hybridic::sys
