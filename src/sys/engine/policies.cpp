#include "sys/engine/policies.hpp"

#include <utility>
#include <vector>

#include "faults/injector.hpp"
#include "noc/flit.hpp"
#include "noc/network.hpp"

namespace hybridic::sys::engine {

void NocPolicy::send(std::uint32_t step, std::string label,
                     std::uint32_t source, std::uint32_t destination,
                     Bytes bytes, Picoseconds when, NocSendOp& send,
                     std::function<void(Picoseconds)> on_delivered) {
  send.op.label = std::move(label);
  send.step = step;
  send.trace = trace_;
  send.when = when;
  send.on_delivered = std::move(on_delivered);
  noc::Network* network = ctx_->platform().network();
  // Fault-aware rerouting: when a surviving-path detour replaces the
  // dimension-order route, annotate the trace once per (src, dst) pair.
  if (network != nullptr && network->route_detoured(source, destination) &&
      rerouted_logged_.insert({source, destination}).second) {
    if (faults::FaultInjector* injector =
            ctx_->platform().fault_injector()) {
      ++injector->stats().noc_reroutes;
    }
    if (trace_ != nullptr) {
      trace_->record({EventKind::kReroute, Fabric::kNoc, step, 0,
                      when.seconds(), when.seconds(),
                      send.op.label + " reroute " + std::to_string(source) +
                          "->" + std::to_string(destination) +
                          " around dead link"});
    }
  }
  ctx_->platform().engine().schedule_at(
      when, [network, source, destination, bytes, &send] {
        network->send(source, destination, bytes,
                      [&send, bytes](std::uint64_t, Bytes, Picoseconds at) {
                        send.op.done = true;
                        send.op.at = at;
                        if (send.trace != nullptr) {
                          send.trace->record(
                              {EventKind::kNocTransfer, Fabric::kNoc,
                               send.step, bytes.count(), send.when.seconds(),
                               at.seconds(), send.op.label});
                        }
                        if (send.on_delivered) {
                          send.on_delivered(at);
                        }
                      });
      });
}

double NocPolicy::idle_latency_seconds(const PlatformConfig& config,
                                       Bytes bytes, std::uint32_t hops) {
  const std::uint64_t cycles = noc::idle_latency_cycles(
      bytes.count(), hops, config.noc.max_packet_payload_bytes,
      config.noc.router.pipeline_cycles);
  return static_cast<double>(cycles) /
         static_cast<double>(config.noc_clock.hertz());
}

CrossbarPolicy::CrossbarPolicy(ExecContext& ctx, ExecTrace* trace)
    : trace_(trace) {
  std::vector<mem::Bram*> memories;
  for (std::size_t s = 0; s < ctx.instance_count(); ++s) {
    memories.push_back(&ctx.platform().bram(s));
  }
  crossbar_ = std::make_unique<mem::FullCrossbar>("xbar", memories);
}

Picoseconds CrossbarPolicy::stream(std::uint32_t step,
                                   const std::string& label,
                                   std::uint32_t source,
                                   std::uint32_t target, Picoseconds start,
                                   Bytes bytes) {
  const Picoseconds done = crossbar_->access(source, target, start, bytes);
  if (trace_ != nullptr) {
    trace_->record({EventKind::kNocTransfer, Fabric::kCrossbar, step,
                    bytes.count(), start.seconds(), done.seconds(), label});
  }
  return done;
}

Picoseconds InterBoardLinkPolicy::transfer(std::uint32_t step,
                                           const std::string& label,
                                           std::uint32_t src,
                                           std::uint32_t dst, Bytes bytes,
                                           Picoseconds ready) {
  bool rerouted = false;
  const std::vector<std::uint32_t> path = net_->route(src, dst, &rerouted);
  if (rerouted && rerouted_logged_.insert({src, dst}).second) {
    ++reroutes_;
    if (trace_ != nullptr) {
      trace_->record({EventKind::kReroute, Fabric::kInterBoard, step, 0,
                      ready.seconds(), ready.seconds(),
                      label + " board reroute " + std::to_string(src) +
                          "->" + std::to_string(dst) +
                          " around dead link"});
    }
  }
  // Per-hop store-and-forward cost in integer picoseconds, so cursor
  // arithmetic is exact and deterministic.
  const double hop_seconds =
      net_->link().latency_seconds +
      static_cast<double>(bytes.count()) /
          net_->link().bandwidth_bytes_per_second;
  const Picoseconds hop_cost{
      static_cast<std::uint64_t>(hop_seconds * 1e12 + 0.5)};
  Picoseconds at = ready;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    Picoseconds& free = link_free_[{path[i], path[i + 1]}];
    const Picoseconds start = std::max(at, free);
    at = start + hop_cost;
    free = at;
  }
  ++transfers_;
  bytes_moved_ += bytes.count();
  if (trace_ != nullptr && path.size() > 1) {
    trace_->record({EventKind::kNocTransfer, Fabric::kInterBoard, step,
                    bytes.count(), ready.seconds(), at.seconds(),
                    label + " link " + std::to_string(src) + "->" +
                        std::to_string(dst)});
  }
  return at;
}

}  // namespace hybridic::sys::engine
