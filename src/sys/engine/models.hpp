// The five system variants, expressed as VariantModels over the shared
// engine. Each model owns only its variant-specific timing semantics; the
// schedule loop, StepTiming assembly, hw-set/spec-index/Platform
// construction, pending-op orchestration, and trace recording all live in
// the engine (walker / context / ops / policies).
//
//  - SoftwareModel: everything on the 400 MHz host (the paper's SW column).
//  - BaselineModel: the conventional bus accelerator (§III-A) — per kernel
//    invocation, DMA-in everything, compute, DMA-out everything.
//  - DesignedModel: the proposed hybrid system (§IV) — shared-local-memory
//    pairs move bytes for free, kernel→kernel traffic overlaps producer
//    compute on the NoC, host traffic stays on the bus with optional
//    case-1 half-pipelining and case-2 streaming; duplicated instances run
//    concurrently. The NoC-only comparison system is the same model with a
//    shared-pair-free, naively mapped DesignResult.
//  - CrossbarModel: the full-crossbar comparison fabric (§II-A group 4).
#pragma once

#include <deque>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "sys/engine/context.hpp"
#include "sys/engine/edge_router.hpp"
#include "sys/engine/policies.hpp"
#include "sys/engine/walker.hpp"

namespace hybridic::sys::engine {

class SoftwareModel : public VariantModel {
public:
  explicit SoftwareModel(const PlatformConfig& config)
      : period_(config.host_clock.period().seconds()) {}

  StepOutcome host_step(std::uint32_t /*index*/,
                        const ScheduleStep& step) override {
    return run(step);
  }
  StepOutcome kernel_step(std::uint32_t /*index*/,
                          const ScheduleStep& step) override {
    return run(step);
  }
  [[nodiscard]] double total_seconds() const override { return t_; }

private:
  StepOutcome run(const ScheduleStep& step);

  double period_;
  double t_ = 0.0;  ///< Host cursor: the SW reference sums in doubles.
};

class BaselineModel : public VariantModel {
public:
  BaselineModel(ExecContext& ctx, ExecTrace* trace)
      : ctx_(&ctx), bus_(ctx, trace) {}

  StepOutcome host_step(std::uint32_t index,
                        const ScheduleStep& step) override;
  StepOutcome kernel_step(std::uint32_t index,
                          const ScheduleStep& step) override;
  [[nodiscard]] double total_seconds() const override {
    return t_.seconds();
  }

private:
  ExecContext* ctx_;
  BusDmaPolicy bus_;
  Picoseconds t_{0};
};

class DesignedModel : public VariantModel {
public:
  DesignedModel(ExecContext& ctx, EdgeRouter& router, ExecTrace* trace);

  StepOutcome host_step(std::uint32_t index,
                        const ScheduleStep& step) override;
  StepOutcome kernel_step(std::uint32_t index,
                          const ScheduleStep& step) override;
  [[nodiscard]] double total_seconds() const override {
    return app_end_.seconds();
  }

  /// External dependency gate: lift the host cursor to `when` so the next
  /// step cannot start earlier. The multi-board runner uses this to gate
  /// a board on inter-board link arrivals; a never-lifted cursor leaves
  /// single-board behaviour bit-identical.
  void lift_cursor(Picoseconds when) {
    if (when > t_) {
      t_ = when;
    }
    if (when > app_end_) {
      app_end_ = when;
    }
  }

private:
  /// Timing record of one executed kernel instance.
  struct InstRec {
    Picoseconds gate{0};
    Picoseconds compute_start{0};
    Picoseconds compute_end{0};
    Picoseconds done{0};
    Picoseconds tau_eff{0};
  };
  /// Per-instance work plan for one kernel step.
  struct Plan {
    std::size_t instance = 0;
    Picoseconds gate{0};
    Bytes host_in{0};
    Bytes host_out{0};
    bool case1 = false;
    Pending fetch1;
    Pending fetch2;
    std::deque<NocSendOp> sends;  // deque: stable addresses for callbacks
    Pending wb1;
    Pending wb2;
  };

  /// Record (once per edge) that a NoC edge degraded to the bus fallback:
  /// bumps the injector's degraded-edge counter and drops a kReroute
  /// annotation into the trace.
  void note_degraded(std::uint32_t step_index, const std::string& step_name,
                     std::size_t producer_instance,
                     std::size_t consumer_instance);

  ExecContext* ctx_;
  EdgeRouter* router_;
  ExecTrace* trace_;
  BusDmaPolicy bus_;
  SharedMemoryPolicy shared_;
  NocPolicy noc_;
  Picoseconds stream_overhead_;
  Picoseconds dup_overhead_;

  std::vector<InstRec> recs_;
  std::vector<bool> executed_;
  std::map<std::pair<std::size_t, std::size_t>, Picoseconds> delivery_;
  std::set<std::pair<std::size_t, std::size_t>> degraded_logged_;
  Picoseconds t_{0};        ///< Host cursor.
  Picoseconds app_end_{0};  ///< Includes NoC deliveries past step ends.
};

class CrossbarModel : public VariantModel {
public:
  CrossbarModel(ExecContext& ctx, ExecTrace* trace)
      : ctx_(&ctx), bus_(ctx, trace), crossbar_(ctx, trace),
        trace_(trace), recs_(ctx.schedule().specs.size()) {}

  StepOutcome host_step(std::uint32_t index,
                        const ScheduleStep& step) override;
  StepOutcome kernel_step(std::uint32_t index,
                          const ScheduleStep& step) override;
  [[nodiscard]] double total_seconds() const override {
    return app_end_.seconds();
  }

private:
  struct Rec {
    Picoseconds compute_start{0};
    Picoseconds compute_end{0};
    Picoseconds done{0};       ///< Incl. host write-back.
    Picoseconds delivered{0};  ///< Crossbar writes into consumers done.
    bool executed = false;
  };

  ExecContext* ctx_;
  BusDmaPolicy bus_;
  CrossbarPolicy crossbar_;
  ExecTrace* trace_;
  std::vector<Rec> recs_;
  Picoseconds t_{0};
  Picoseconds app_end_{0};
};

}  // namespace hybridic::sys::engine
