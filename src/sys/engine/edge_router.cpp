#include "sys/engine/edge_router.hpp"

#include "noc/topology.hpp"

namespace hybridic::sys::engine {

EdgeRouter::EdgeRouter(ExecContext& ctx, const core::DesignResult* design)
    : ctx_(&ctx), design_(design) {
  if (design == nullptr) {
    return;
  }
  duplicated_specs_.insert(design->parallel.duplicated_specs.begin(),
                           design->parallel.duplicated_specs.end());
  case1_instances_.insert(design->parallel.host_pipelined.begin(),
                          design->parallel.host_pipelined.end());
  for (const core::StreamedEdge& e : design->parallel.streamed) {
    streamed_pairs_.insert({e.producer_instance, e.consumer_instance});
  }
  for (const core::SharedMemoryPairing& pair : design->shared_pairs) {
    shared_by_fn_[{design->instances[pair.producer_instance].function,
                   design->instances[pair.consumer_instance].function}] =
        &pair;
  }
}

bool EdgeRouter::noc_reachable(std::size_t producer_instance,
                               std::size_t consumer_instance) const {
  Platform& platform = ctx_->platform();
  return platform.network() != nullptr &&
         platform.noc_node(producer_instance, core::NocNodeKind::kKernel)
             .has_value() &&
         platform
             .noc_node(consumer_instance, core::NocNodeKind::kLocalMemory)
             .has_value();
}

bool EdgeRouter::noc_usable(std::size_t producer_instance,
                            std::size_t consumer_instance) const {
  if (!noc_reachable(producer_instance, consumer_instance)) {
    return false;
  }
  Platform& platform = ctx_->platform();
  const std::uint32_t src =
      *platform.noc_node(producer_instance, core::NocNodeKind::kKernel);
  const std::uint32_t dst =
      *platform.noc_node(consumer_instance, core::NocNodeKind::kLocalMemory);
  if (platform.network()->route_exists(src, dst)) {
    return true;
  }
  return !platform.config().faults.resilience.noc_degrade_to_bus;
}

bool EdgeRouter::noc_degraded(std::size_t producer_instance,
                              std::size_t consumer_instance) const {
  return noc_reachable(producer_instance, consumer_instance) &&
         !noc_usable(producer_instance, consumer_instance);
}

const core::SharedMemoryPairing* EdgeRouter::shared_pair(
    prof::FunctionId producer, prof::FunctionId consumer) const {
  const auto it = shared_by_fn_.find({producer, consumer});
  return it == shared_by_fn_.end() ? nullptr : it->second;
}

std::uint32_t EdgeRouter::noc_hops(prof::FunctionId producer,
                                   prof::FunctionId consumer) const {
  if (design_ == nullptr || !design_->noc.has_value()) {
    return 0;
  }
  // Find the producer's kernel node and the consumer's memory node.
  std::int64_t pk = -1;
  std::int64_t cm = -1;
  for (const core::NocAttachment& a : design_->noc->attachments) {
    if (design_->instances[a.instance].function == producer &&
        a.kind == core::NocNodeKind::kKernel) {
      pk = a.node;
    }
    if (design_->instances[a.instance].function == consumer &&
        a.kind == core::NocNodeKind::kLocalMemory) {
      cm = a.node;
    }
  }
  if (pk < 0 || cm < 0) {
    return 0;  // Not NoC-reachable.
  }
  const noc::Mesh2D mesh{design_->noc->mesh_width,
                         design_->noc->mesh_height};
  return mesh.distance(static_cast<std::uint32_t>(pk),
                       static_cast<std::uint32_t>(cm));
}

}  // namespace hybridic::sys::engine
