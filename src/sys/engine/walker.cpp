#include "sys/engine/walker.hpp"

#include <utility>

#include "sys/executor.hpp"

namespace hybridic::sys::engine {

ScheduleWalker::ScheduleWalker(const AppSchedule& schedule,
                               std::string system_name)
    : schedule_(&schedule), system_name_(std::move(system_name)) {}

RunResult ScheduleWalker::run(VariantModel& model) {
  RunResult result;
  result.system_name = system_name_;
  std::uint32_t index = 0;
  for (const ScheduleStep& step : schedule_->steps) {
    const StepOutcome outcome = step.is_kernel
                                    ? model.kernel_step(index, step)
                                    : model.host_step(index, step);
    StepTiming timing;
    timing.name = step.name;
    timing.is_kernel = step.is_kernel;
    timing.start_seconds = outcome.start_seconds;
    timing.done_seconds = outcome.done_seconds;
    timing.compute_seconds = outcome.compute_seconds;
    timing.comm_seconds = outcome.comm_seconds;
    if (step.is_kernel) {
      result.kernel_compute_seconds += outcome.compute_seconds;
      result.kernel_comm_seconds += outcome.comm_seconds;
    } else {
      result.host_seconds += outcome.compute_seconds;
    }
    if (step.is_kernel || outcome.compute_seconds > 0.0) {
      trace_.record({EventKind::kCompute,
                     step.is_kernel ? Fabric::kKernel : Fabric::kHost,
                     index, 0, outcome.compute_start_seconds,
                     outcome.compute_start_seconds + outcome.compute_seconds,
                     step.name});
    }
    result.steps.push_back(std::move(timing));
    ++index;
  }
  result.total_seconds = model.total_seconds();
  result.trace = std::move(trace_);
  return result;
}

}  // namespace hybridic::sys::engine
