// Pending-operation bookkeeping around the event-driven fabrics — the one
// copy of the orchestration every executor used to duplicate. Operations
// carry labels so a never-completing op can be diagnosed by name, and
// completions are recorded into the run's ExecTrace.
#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bus/dma.hpp"
#include "sys/engine/trace.hpp"
#include "sys/platform.hpp"
#include "util/error.hpp"

namespace hybridic::sys::engine {

inline Picoseconds from_seconds(double seconds) {
  return Picoseconds{static_cast<std::uint64_t>(
      std::llround(std::max(0.0, seconds) * 1e12))};
}

inline Bytes scale_bytes(Bytes bytes, double share) {
  return Bytes{static_cast<std::uint64_t>(
      std::llround(static_cast<double>(bytes.count()) * share))};
}

/// Completion marker for an asynchronous fabric operation.
struct Pending {
  bool done = false;
  Picoseconds at{0};
  std::string label;  ///< Names the op in deadlock diagnostics and traces.
};

/// Issue a DMA block transfer at (or after) `when`; zero bytes complete
/// immediately at the requested time (no fabric involvement, no event).
/// On completion the transfer is recorded into `trace` (when non-null) as
/// a dma-in/dma-out event attributed to `step_index`.
inline void issue_dma(Platform& platform, Picoseconds when,
                      bus::DmaDirection dir, Bytes bytes, mem::Bram& bram,
                      Pending& op, std::string label,
                      ExecTrace* trace = nullptr,
                      std::uint32_t step_index = 0) {
  op.label = std::move(label);
  if (bytes.count() == 0) {
    op.done = true;
    op.at = when;
    return;
  }
  const Picoseconds at = std::max(when, platform.engine().now());
  platform.engine().schedule_at(
      at, [&platform, dir, bytes, &bram, &op, trace, step_index, at] {
        platform.dma().transfer(
            dir, bytes, bram,
            [&op, trace, dir, bytes, step_index, at](Picoseconds done_at) {
              op.done = true;
              op.at = done_at;
              if (trace != nullptr) {
                trace->record({dir == bus::DmaDirection::kMemToLocal
                                   ? EventKind::kDmaIn
                                   : EventKind::kDmaOut,
                               Fabric::kBus, step_index, bytes.count(),
                               at.seconds(), done_at.seconds(), op.label});
              }
            });
      });
}

/// Run the simulation until every op completed, bounded by the platform's
/// watchdog limit. If ops remain the failure is a structured
/// SimTimeoutError naming the stuck operations and the simulated time —
/// both for a drained event queue (deadlock) and for a watchdog expiry
/// (livelock / runaway retries) — so one hung run fails its batch job
/// instead of wedging the process.
inline void wait_all(Platform& platform, const std::vector<Pending*>& ops) {
  const Picoseconds limit =
      from_seconds(platform.config().watchdog_seconds);
  const bool satisfied = platform.engine().run_until(
      [&ops] {
        for (const Pending* op : ops) {
          if (!op->done) {
            return false;
          }
        }
        return true;
      },
      limit);
  if (satisfied) {
    return;
  }
  std::vector<std::string> stuck_ops;
  std::string stuck;
  for (const Pending* op : ops) {
    if (!op->done) {
      stuck_ops.push_back(op->label.empty() ? std::string{"<unlabeled>"}
                                            : op->label);
      stuck += stuck.empty() ? "'" : ", '";
      stuck += stuck_ops.back();
      stuck += "'";
    }
  }
  const double at = platform.engine().now().seconds();
  const bool watchdog_expired = platform.engine().has_pending();
  const std::string what =
      watchdog_expired
          ? "fabric operation " + stuck + " never completed; watchdog of " +
                std::to_string(platform.config().watchdog_seconds) +
                " s simulated time expired at t=" + std::to_string(at) + " s"
          : "fabric operation " + stuck +
                " never completed; simulation drained at t=" +
                std::to_string(at) + " s (deadlock?)";
  throw SimTimeoutError{what, std::move(stuck_ops), at, watchdog_expired};
}

}  // namespace hybridic::sys::engine
