// Pending-operation bookkeeping around the event-driven fabrics — the one
// copy of the orchestration every executor used to duplicate. Operations
// carry labels so a never-completing op can be diagnosed by name, and
// completions are recorded into the run's ExecTrace.
#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bus/dma.hpp"
#include "sys/engine/trace.hpp"
#include "sys/platform.hpp"
#include "util/error.hpp"

namespace hybridic::sys::engine {

inline Picoseconds from_seconds(double seconds) {
  return Picoseconds{static_cast<std::uint64_t>(
      std::llround(std::max(0.0, seconds) * 1e12))};
}

inline Bytes scale_bytes(Bytes bytes, double share) {
  return Bytes{static_cast<std::uint64_t>(
      std::llround(static_cast<double>(bytes.count()) * share))};
}

/// Completion marker for an asynchronous fabric operation.
struct Pending {
  bool done = false;
  Picoseconds at{0};
  std::string label;  ///< Names the op in deadlock diagnostics and traces.
};

/// Issue a DMA block transfer at (or after) `when`; zero bytes complete
/// immediately at the requested time (no fabric involvement, no event).
/// On completion the transfer is recorded into `trace` (when non-null) as
/// a dma-in/dma-out event attributed to `step_index`.
inline void issue_dma(Platform& platform, Picoseconds when,
                      bus::DmaDirection dir, Bytes bytes, mem::Bram& bram,
                      Pending& op, std::string label,
                      ExecTrace* trace = nullptr,
                      std::uint32_t step_index = 0) {
  op.label = std::move(label);
  if (bytes.count() == 0) {
    op.done = true;
    op.at = when;
    return;
  }
  const Picoseconds at = std::max(when, platform.engine().now());
  platform.engine().schedule_at(
      at, [&platform, dir, bytes, &bram, &op, trace, step_index, at] {
        platform.dma().transfer(
            dir, bytes, bram,
            [&op, trace, dir, bytes, step_index, at](Picoseconds done_at) {
              op.done = true;
              op.at = done_at;
              if (trace != nullptr) {
                trace->record({dir == bus::DmaDirection::kMemToLocal
                                   ? EventKind::kDmaIn
                                   : EventKind::kDmaOut,
                               Fabric::kBus, step_index, bytes.count(),
                               at.seconds(), done_at.seconds(), op.label});
              }
            });
      });
}

/// Run the simulation until every op completed. If one never does, the
/// failure names the stuck operation and the simulated time the engine
/// drained at, instead of a bare "deadlock?".
inline void wait_all(Platform& platform, const std::vector<Pending*>& ops) {
  platform.engine().run_until([&ops] {
    for (const Pending* op : ops) {
      if (!op->done) {
        return false;
      }
    }
    return true;
  });
  for (const Pending* op : ops) {
    if (!op->done) {
      std::string stuck;
      for (const Pending* o : ops) {
        if (!o->done) {
          stuck += stuck.empty() ? "'" : ", '";
          stuck += o->label.empty() ? std::string{"<unlabeled>"} : o->label;
          stuck += "'";
        }
      }
      sim_assert(false,
                 "fabric operation " + stuck +
                     " never completed; simulation drained at t=" +
                     std::to_string(platform.engine().now().seconds()) +
                     " s (deadlock?)");
    }
  }
}

}  // namespace hybridic::sys::engine
