// ScheduleWalker: the one schedule-replay loop behind every system
// variant. The walker owns what the five executors used to each
// re-implement — iterating the AppSchedule in program order, assembling
// StepTiming rows, accumulating host/kernel-compute/kernel-comm
// attribution, and recording per-step compute events into the ExecTrace —
// while a VariantModel supplies the per-step timing on its fabrics.
#pragma once

#include <string>

#include "sys/engine/trace.hpp"
#include "sys/schedule.hpp"

namespace hybridic::sys {
struct RunResult;
}  // namespace hybridic::sys

namespace hybridic::sys::engine {

/// What one executed step reports back to the walker.
struct StepOutcome {
  double start_seconds = 0.0;
  double done_seconds = 0.0;
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;  ///< Exposed (non-hidden) communication.
  /// Where the compute window begins — anchors the step's compute event in
  /// the trace (equals start_seconds when nothing precedes the compute).
  double compute_start_seconds = 0.0;
};

/// A system variant: how one schedule step executes on its fabrics.
/// Models hold their own cursors and inter-step state; the walker only
/// sequences steps and aggregates results.
class VariantModel {
public:
  virtual ~VariantModel() = default;
  virtual StepOutcome host_step(std::uint32_t index,
                                const ScheduleStep& step) = 0;
  virtual StepOutcome kernel_step(std::uint32_t index,
                                  const ScheduleStep& step) = 0;
  /// Application end time; called once after the last step.
  [[nodiscard]] virtual double total_seconds() const = 0;
};

/// Replays an AppSchedule through a VariantModel into a RunResult.
class ScheduleWalker {
public:
  ScheduleWalker(const AppSchedule& schedule, std::string system_name);

  /// The trace under construction — models hand this to their policies so
  /// fabric events land in the same log as the walker's compute events.
  [[nodiscard]] ExecTrace& trace() { return trace_; }

  /// Walk all steps; the trace moves into the returned result.
  [[nodiscard]] RunResult run(VariantModel& model);

private:
  const AppSchedule* schedule_;
  std::string system_name_;
  ExecTrace trace_;
};

}  // namespace hybridic::sys::engine
