// Structured execution traces: every system variant executed by the engine
// records typed events (compute windows, DMA transfers, NoC messages,
// shared-memory handoffs, stalls) instead of only flat per-step timings.
// The trace powers per-fabric time/byte attribution in RunResult, the
// trace-lane ASCII timeline, and the Chrome-trace/Perfetto JSON exporter.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace hybridic::sys::engine {

/// The resource an event occupies (or, for stalls, waits on).
enum class Fabric : std::uint8_t {
  kHost = 0,       ///< The 400 MHz host processor.
  kKernel,         ///< The kernel compute fabric.
  kBus,            ///< PLB bus + DMA block transfers.
  kNoc,            ///< The wormhole mesh NoC.
  kSharedMemory,   ///< Shared local-memory (direct or crossbar) handoffs.
  kCrossbar,       ///< The full-crossbar comparison fabric.
  kInterBoard,     ///< Inter-board serial links (multi-board platforms).
};
inline constexpr std::size_t kFabricCount = 7;

[[nodiscard]] const char* fabric_name(Fabric fabric);

/// What happened during an event's [start, end) window.
enum class EventKind : std::uint8_t {
  kCompute = 0,    ///< A host or kernel compute window.
  kDmaIn,          ///< SDRAM -> local memory block transfer.
  kDmaOut,         ///< Local memory -> SDRAM block transfer.
  kNocTransfer,    ///< A kernel->kernel message over the NoC or crossbar.
  kSharedHandoff,  ///< Zero-copy shared-local-memory handoff (instant).
  kStall,          ///< Time spent waiting on a dependency (not busy time).
  kFault,          ///< An injected fault (corruption, stall, bit flip).
  kRetry,          ///< A recovery retry (NoC retransmit, bus chunk retry).
  kReroute,        ///< Fault-aware reroute or NoC->bus edge degradation.
};

[[nodiscard]] const char* event_kind_name(EventKind kind);

/// Annotation kinds explain gaps or overlay diagnostics; they occupy no
/// fabric and are excluded from FabricUsage, so fault-free attribution is
/// unchanged by their existence.
[[nodiscard]] constexpr bool is_annotation(EventKind kind) {
  return kind == EventKind::kStall || kind == EventKind::kFault ||
         kind == EventKind::kRetry || kind == EventKind::kReroute;
}

/// One typed event of an execution.
struct TraceEvent {
  EventKind kind = EventKind::kCompute;
  Fabric fabric = Fabric::kHost;
  std::uint32_t step_index = 0;   ///< Schedule step this belongs to.
  std::uint64_t bytes = 0;        ///< Payload moved (0 for compute/stall).
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  std::string label;
};

/// Accumulated busy time and traffic of one fabric.
struct FabricUsage {
  double busy_seconds = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t ops = 0;
};

/// Append-only event log with per-fabric aggregation. Events arrive in
/// completion order (simulation callbacks), not start order — consumers
/// that need chronology sort via `chronological()`.
class ExecTrace {
public:
  void record(TraceEvent event);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Busy-time/byte attribution of one fabric. Annotation events (stalls,
  /// faults, retries, reroutes) are excluded: they occupy no fabric.
  [[nodiscard]] const FabricUsage& usage(Fabric fabric) const {
    return usage_[static_cast<std::size_t>(fabric)];
  }
  [[nodiscard]] const std::array<FabricUsage, kFabricCount>& usage_by_fabric()
      const {
    return usage_;
  }

  /// Event indices sorted by (start, end, label) — a stable chronology for
  /// rendering and export.
  [[nodiscard]] std::vector<std::size_t> chronological() const;

private:
  std::vector<TraceEvent> events_;
  std::array<FabricUsage, kFabricCount> usage_{};
};

}  // namespace hybridic::sys::engine

namespace hybridic::faults {
class FaultInjector;
}  // namespace hybridic::faults

namespace hybridic::sys::engine {

/// Merge a fault injector's recorded events into `trace` as zero-duration
/// annotation events (kFault/kRetry on the fabric the fault hit), so
/// injected faults and recoveries show up in trace lanes, the CSV and the
/// Chrome-trace export.
void append_fault_events(ExecTrace& trace,
                         const faults::FaultInjector& injector);

}  // namespace hybridic::sys::engine
