// EdgeRouter: per-edge composition of fabric policies by the DesignResult.
// Given a profiled communication edge (producer -> consumer), answers how
// the design moves those bytes — shared local memory (possibly streamed),
// the NoC, or a bus round-trip fallback — at both instance granularity
// (event-driven executors) and function granularity (the analytic
// pipelined executor). This is the classification logic the executors and
// the pipeline model used to each re-implement.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "core/board_partition.hpp"
#include "core/design_result.hpp"
#include "sys/engine/context.hpp"

namespace hybridic::sys::engine {

class EdgeRouter {
public:
  /// Index the design's pairings. `design` may be null (baseline/crossbar
  /// runs): every query then reports "not shared / not on the NoC".
  EdgeRouter(ExecContext& ctx, const core::DesignResult* design);

  // ---- Instance granularity (event-driven executors). ----

  /// Both endpoints attached to an instantiated NoC: producer's kernel
  /// node and consumer's local-memory node.
  [[nodiscard]] bool noc_reachable(std::size_t producer_instance,
                                   std::size_t consumer_instance) const;

  /// Should this edge actually use the NoC under the current fault state?
  /// True when attached and either still connected over surviving links, or
  /// disconnected with NoC->bus degradation disabled (the send is then
  /// attempted, black-holed, and diagnosed by the wait_all watchdog).
  [[nodiscard]] bool noc_usable(std::size_t producer_instance,
                                std::size_t consumer_instance) const;

  /// Attached but fault-disconnected with degradation enabled: the edge
  /// falls back to a bus-DMA round trip (write-back + fetch).
  [[nodiscard]] bool noc_degraded(std::size_t producer_instance,
                                  std::size_t consumer_instance) const;

  /// The shared-memory pairing covering a (producer fn, consumer fn) edge,
  /// or null when the edge is not shared.
  [[nodiscard]] const core::SharedMemoryPairing* shared_pair(
      prof::FunctionId producer, prof::FunctionId consumer) const;

  [[nodiscard]] bool streamed(std::size_t producer_instance,
                              std::size_t consumer_instance) const {
    return streamed_pairs_.count(
               {producer_instance, consumer_instance}) > 0;
  }
  [[nodiscard]] bool duplicated_spec(std::size_t spec) const {
    return duplicated_specs_.count(spec) > 0;
  }
  /// Case-1 host pipelining (§IV-A3): halved fetch/write-back overlap.
  [[nodiscard]] bool host_pipelined(std::size_t instance) const {
    return case1_instances_.count(instance) > 0;
  }

  // ---- Function granularity (analytic pipelined executor). ----

  [[nodiscard]] bool shared_edge(prof::FunctionId producer,
                                 prof::FunctionId consumer) const {
    return shared_by_fn_.count({producer, consumer}) > 0;
  }

  /// Mesh hops from the producer's kernel node to the consumer's memory
  /// node, or 0 when the pair is not NoC-reachable in the design.
  [[nodiscard]] std::uint32_t noc_hops(prof::FunctionId producer,
                                       prof::FunctionId consumer) const;

  // ---- Board granularity (multi-board runs). ----

  /// Attach the level-one board partition. Single-board runs never call
  /// this: every function then resolves to board 0 and no edge is
  /// cross-board, so the pre-multi-board routing is bit-identical.
  void set_board_partition(const core::BoardPartition* partition) {
    partition_ = partition;
  }

  /// Owning board of `function` (kernels per the partition, host
  /// functions and unpartitioned runs board 0).
  [[nodiscard]] std::uint32_t board_of(prof::FunctionId function) const {
    return partition_ == nullptr ? 0U : partition_->board_of(function);
  }

  /// Does this edge cross boards (and therefore ride the inter-board
  /// serial links instead of any on-board fabric)?
  [[nodiscard]] bool cross_board(prof::FunctionId producer,
                                 prof::FunctionId consumer) const {
    return board_of(producer) != board_of(consumer);
  }

private:
  ExecContext* ctx_;
  const core::DesignResult* design_;
  const core::BoardPartition* partition_ = nullptr;
  std::map<std::pair<prof::FunctionId, prof::FunctionId>,
           const core::SharedMemoryPairing*>
      shared_by_fn_;
  std::set<std::pair<std::size_t, std::size_t>> streamed_pairs_;
  std::set<std::size_t> duplicated_specs_;
  std::set<std::size_t> case1_instances_;
};

}  // namespace hybridic::sys::engine
