#include "sys/engine/trace.hpp"

#include <algorithm>
#include <numeric>

#include "faults/injector.hpp"

namespace hybridic::sys::engine {

const char* fabric_name(Fabric fabric) {
  switch (fabric) {
    case Fabric::kHost: return "host";
    case Fabric::kKernel: return "kernel";
    case Fabric::kBus: return "bus";
    case Fabric::kNoc: return "noc";
    case Fabric::kSharedMemory: return "shared-mem";
    case Fabric::kCrossbar: return "crossbar";
    case Fabric::kInterBoard: return "inter-board";
  }
  return "?";
}

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kCompute: return "compute";
    case EventKind::kDmaIn: return "dma-in";
    case EventKind::kDmaOut: return "dma-out";
    case EventKind::kNocTransfer: return "noc-transfer";
    case EventKind::kSharedHandoff: return "shared-handoff";
    case EventKind::kStall: return "stall";
    case EventKind::kFault: return "fault";
    case EventKind::kRetry: return "retry";
    case EventKind::kReroute: return "reroute";
  }
  return "?";
}

void ExecTrace::record(TraceEvent event) {
  if (!is_annotation(event.kind)) {
    FabricUsage& usage = usage_[static_cast<std::size_t>(event.fabric)];
    usage.busy_seconds += event.end_seconds - event.start_seconds;
    usage.bytes += event.bytes;
    ++usage.ops;
  }
  events_.push_back(std::move(event));
}

std::vector<std::size_t> ExecTrace::chronological() const {
  std::vector<std::size_t> order(events_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     const TraceEvent& ea = events_[a];
                     const TraceEvent& eb = events_[b];
                     if (ea.start_seconds != eb.start_seconds) {
                       return ea.start_seconds < eb.start_seconds;
                     }
                     if (ea.end_seconds != eb.end_seconds) {
                       return ea.end_seconds < eb.end_seconds;
                     }
                     return ea.label < eb.label;
                   });
  return order;
}

void append_fault_events(ExecTrace& trace,
                         const faults::FaultInjector& injector) {
  for (const faults::FaultEvent& event : injector.events()) {
    EventKind kind = EventKind::kFault;
    Fabric fabric = Fabric::kNoc;
    switch (event.kind) {
      case faults::FaultKind::kFlitCorruption:
      case faults::FaultKind::kMessageLost:
        kind = EventKind::kFault;
        fabric = Fabric::kNoc;
        break;
      case faults::FaultKind::kBusError:
      case faults::FaultKind::kBusStall:
      case faults::FaultKind::kSdramBitFlip:
        kind = EventKind::kFault;
        fabric = Fabric::kBus;
        break;
      case faults::FaultKind::kBramBitFlip:
        kind = EventKind::kFault;
        fabric = Fabric::kSharedMemory;
        break;
      case faults::FaultKind::kRetransmit:
        kind = EventKind::kRetry;
        fabric = Fabric::kNoc;
        break;
      case faults::FaultKind::kBusRetry:
        kind = EventKind::kRetry;
        fabric = Fabric::kBus;
        break;
    }
    trace.record({kind, fabric, 0, event.bytes, event.at_seconds,
                  event.at_seconds, event.label});
  }
}

}  // namespace hybridic::sys::engine
