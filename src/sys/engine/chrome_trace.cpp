#include "sys/engine/chrome_trace.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace hybridic::sys::engine {
namespace {

// Minimal JSON string escaping (labels are ASCII step/op names, but stay
// safe for anything that ends up in one).
std::string escaped(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Chrome-trace timestamps are microseconds; print with sub-ns resolution
// so picosecond-scale events stay distinct.
std::string micros(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds * 1e6);
  return buf;
}

}  // namespace

void write_chrome_trace(const ExecTrace& trace,
                        const std::string& system_name, std::ostream& out) {
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;
  const auto emit_comma = [&] {
    if (!first) {
      out << ",\n";
    }
    first = false;
  };
  // Metadata: name the process after the system variant, one named thread
  // (track) per fabric.
  emit_comma();
  out << "    {\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": "
         "\"process_name\", \"args\": {\"name\": \""
      << escaped(system_name) << "\"}}";
  for (std::size_t f = 0; f < kFabricCount; ++f) {
    // The inter-board track only exists on multi-board runs; single-board
    // traces stay byte-identical to what they were before that fabric
    // existed (the golden trace fixtures pin this).
    const Fabric fabric = static_cast<Fabric>(f);
    if (fabric == Fabric::kInterBoard &&
        trace.usage(fabric).ops == 0) {
      continue;
    }
    emit_comma();
    out << "    {\"ph\": \"M\", \"pid\": 0, \"tid\": " << f
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
        << fabric_name(fabric) << "\"}}";
  }
  for (const std::size_t i : trace.chronological()) {
    const TraceEvent& event = trace.events()[i];
    emit_comma();
    // Zero-duration fault/retry/reroute annotations export as thread-scoped
    // instant events so Perfetto draws a visible marker, not a 0-width slice.
    const bool instant = is_annotation(event.kind) &&
                         event.kind != EventKind::kStall;
    out << "    {\"ph\": \"" << (instant ? 'i' : 'X')
        << "\", \"pid\": 0, \"tid\": "
        << static_cast<unsigned>(event.fabric) << ", \"name\": \""
        << escaped(event.label) << "\", \"cat\": \""
        << event_kind_name(event.kind) << "\", \"ts\": "
        << micros(event.start_seconds);
    if (instant) {
      out << ", \"s\": \"t\"";
    } else {
      out << ", \"dur\": " << micros(event.end_seconds - event.start_seconds);
    }
    out << ", \"args\": {\"step\": " << event.step_index
        << ", \"bytes\": " << event.bytes << "}}";
  }
  out << "\n  ]\n}\n";
}

std::string chrome_trace_json(const ExecTrace& trace,
                              const std::string& system_name) {
  std::ostringstream out;
  write_chrome_trace(trace, system_name, out);
  return out.str();
}

}  // namespace hybridic::sys::engine
