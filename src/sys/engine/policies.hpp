// FabricPolicy: the engine's pluggable data-movement implementations. A
// variant model walks the schedule; every byte it moves goes through one
// of these policies, which time the movement on the simulated fabric (or
// the analytic model where that is the right fidelity) and record typed
// events into the run's ExecTrace.
//
//  - HostOnlyPolicy:     everything stays software on the host.
//  - BusDmaPolicy:       PLB bus + DMA block transfers (host traffic and
//                        the fallback for unreachable kernel pairs).
//  - SharedMemoryPolicy: zero-copy shared local memories, optionally
//                        streamed (§IV-A3 case 2).
//  - NocPolicy:          the wormhole mesh NoC (flit-level simulation plus
//                        the analytic idle-latency oracle).
//  - CrossbarPolicy:     the full-crossbar comparison fabric.
//  - InterBoardLinkPolicy: DMA over the inter-board serial links of a
//                        multi-FPGA platform (chain/ring/mesh of boards).
//
// Adding a new fabric class (e.g. an inter-FPGA MPI link or a collective
// offload engine) means adding one policy here and composing it per-edge —
// not forking another executor.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "mem/full_crossbar.hpp"
#include "sys/engine/context.hpp"
#include "sys/engine/ops.hpp"
#include "sys/engine/trace.hpp"

namespace hybridic::sys::engine {

class FabricPolicy {
public:
  virtual ~FabricPolicy() = default;
  [[nodiscard]] virtual Fabric fabric() const = 0;
};

/// The pure-software fabric: work spans on the host clock; nothing moves.
class HostOnlyPolicy : public FabricPolicy {
public:
  [[nodiscard]] Fabric fabric() const override { return Fabric::kHost; }

  /// Host span in the event-driven (integer picosecond) domain.
  [[nodiscard]] static Picoseconds span(const sim::ClockDomain& host,
                                        Cycles cycles) {
    return host.span(cycles);
  }
  /// Host span in the double-seconds domain (the SW reference and the
  /// analytic pipelined model accumulate in doubles).
  [[nodiscard]] static double span_seconds(Cycles cycles,
                                           double period_seconds) {
    return static_cast<double>(cycles.count()) * period_seconds;
  }
};

/// PLB bus + DMA block transfers.
class BusDmaPolicy : public FabricPolicy {
public:
  BusDmaPolicy(ExecContext& ctx, ExecTrace* trace)
      : ctx_(&ctx), trace_(trace) {}

  [[nodiscard]] Fabric fabric() const override { return Fabric::kBus; }

  /// SDRAM -> `bram` block fetch at (or after) `when`.
  void fetch(std::uint32_t step, std::string label, Picoseconds when,
             Bytes bytes, mem::Bram& bram, Pending& op) {
    issue_dma(ctx_->platform(), when, bus::DmaDirection::kMemToLocal, bytes,
              bram, op, std::move(label), trace_, step);
  }
  /// `bram` -> SDRAM write-back at (or after) `when`.
  void writeback(std::uint32_t step, std::string label, Picoseconds when,
                 Bytes bytes, mem::Bram& bram, Pending& op) {
    issue_dma(ctx_->platform(), when, bus::DmaDirection::kLocalToMem, bytes,
              bram, op, std::move(label), trace_, step);
  }

private:
  ExecContext* ctx_;
  ExecTrace* trace_;
};

/// Zero-copy shared local memory: the consumer's input is resident when
/// the producer finishes writing it (or half-way through, streamed).
class SharedMemoryPolicy : public FabricPolicy {
public:
  explicit SharedMemoryPolicy(ExecTrace* trace) : trace_(trace) {}

  [[nodiscard]] Fabric fabric() const override {
    return Fabric::kSharedMemory;
  }

  /// §IV-A3 case-2 gate: a streamed consumer may start once the first half
  /// of its input exists — half the overlap window before the producer
  /// ends, but no earlier than producer start plus the stream setup
  /// overhead. Shared by the shared-memory and NoC streamed paths.
  [[nodiscard]] static Picoseconds streamed_gate(Picoseconds compute_start,
                                                 Picoseconds compute_end,
                                                 Picoseconds tau_eff,
                                                 Picoseconds consumer_span,
                                                 Picoseconds stream_overhead) {
    const Picoseconds half =
        Picoseconds{std::min(tau_eff.count(), consumer_span.count()) / 2};
    return std::max(compute_start + stream_overhead,
                    compute_end - half + stream_overhead);
  }

  /// Consumer gate time for a handoff from a producer whose compute window
  /// is [compute_start, compute_end] with effective span `tau_eff`. For a
  /// streamed pair the consumer may start once the first half of the data
  /// exists (§IV-A3 case 2). Records an instantaneous shared-handoff event.
  Picoseconds handoff(std::uint32_t step, const std::string& label,
                      Picoseconds compute_start, Picoseconds compute_end,
                      Picoseconds tau_eff, Picoseconds consumer_span,
                      bool is_streamed, Picoseconds stream_overhead,
                      Bytes bytes) {
    Picoseconds dep = compute_end;
    if (is_streamed) {
      dep = streamed_gate(compute_start, compute_end, tau_eff, consumer_span,
                          stream_overhead);
    }
    if (trace_ != nullptr) {
      trace_->record({EventKind::kSharedHandoff, Fabric::kSharedMemory,
                      step, bytes.count(), dep.seconds(), dep.seconds(),
                      label});
    }
    return dep;
  }

private:
  ExecTrace* trace_;
};

/// One in-flight NoC message: the pending marker plus the context its
/// completion callback needs. Kept in one externally-owned struct so the
/// scheduled action only captures a reference (the simulation engine's
/// inline action storage is small by design).
struct NocSendOp {
  Pending op;
  std::uint32_t step = 0;
  ExecTrace* trace = nullptr;
  Picoseconds when{0};
  std::function<void(Picoseconds)> on_delivered;
};

/// The wormhole mesh NoC.
class NocPolicy : public FabricPolicy {
public:
  NocPolicy(ExecContext& ctx, ExecTrace* trace)
      : ctx_(&ctx), trace_(trace) {}

  [[nodiscard]] Fabric fabric() const override { return Fabric::kNoc; }

  /// Schedule a flit-level message send at (or after) `when`; `send.op`
  /// completes when the last flit lands, then `send.on_delivered` runs
  /// with the arrival time (delivery bookkeeping for consumer gating).
  void send(std::uint32_t step, std::string label, std::uint32_t source,
            std::uint32_t destination, Bytes bytes, Picoseconds when,
            NocSendOp& send, std::function<void(Picoseconds)> on_delivered);

  /// The analytic oracle: idle-network latency in seconds for a `bytes`
  /// message over `hops` hops (noc::idle_latency_cycles at the NoC clock).
  [[nodiscard]] static double idle_latency_seconds(
      const PlatformConfig& config, Bytes bytes, std::uint32_t hops);

private:
  ExecContext* ctx_;
  ExecTrace* trace_;
  /// (src, dst) pairs whose fault-aware detour was already annotated.
  std::set<std::pair<std::uint32_t, std::uint32_t>> rerouted_logged_;
};

/// The full-crossbar comparison fabric: every kernel's port A reaches
/// every other kernel's local memory; same-target writes serialize.
class CrossbarPolicy : public FabricPolicy {
public:
  CrossbarPolicy(ExecContext& ctx, ExecTrace* trace);

  [[nodiscard]] Fabric fabric() const override { return Fabric::kCrossbar; }

  /// Stream `bytes` from kernel `source` into kernel `target`'s local
  /// memory starting at `start`; returns the port-level completion time.
  Picoseconds stream(std::uint32_t step, const std::string& label,
                     std::uint32_t source, std::uint32_t target,
                     Picoseconds start, Bytes bytes);

private:
  ExecTrace* trace_;
  std::unique_ptr<mem::FullCrossbar> crossbar_;
};

/// DMA over the inter-board serial links: a cut edge's bytes leave the
/// producer board's SDRAM through the link controller (a bus master, like
/// the DMA engine) and land in the consumer board's SDRAM. Timing is
/// store-and-forward per hop (b_eff: latency + bytes/bandwidth each), with
/// one busy cursor per directed link so concurrent transfers over a shared
/// link serialize deterministically. Dead links reroute per the
/// BoardNetwork (ring/mesh); each rerouted (src, dst) board pair is
/// annotated once and counted.
class InterBoardLinkPolicy : public FabricPolicy {
public:
  InterBoardLinkPolicy(const BoardNetwork& net, ExecTrace* trace)
      : net_(&net), trace_(trace) {}

  [[nodiscard]] Fabric fabric() const override { return Fabric::kInterBoard; }

  /// Move `bytes` from board `src` to board `dst`, ready to leave at
  /// `ready`; returns the arrival time at the destination board. Records
  /// one kNocTransfer-kind event spanning the transfer on the
  /// inter-board fabric (plus a one-time kReroute annotation when dead
  /// links forced a detour).
  Picoseconds transfer(std::uint32_t step, const std::string& label,
                       std::uint32_t src, std::uint32_t dst, Bytes bytes,
                       Picoseconds ready);

  [[nodiscard]] std::uint64_t reroutes() const { return reroutes_; }
  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  [[nodiscard]] std::uint64_t bytes_moved() const { return bytes_moved_; }

private:
  const BoardNetwork* net_;
  ExecTrace* trace_;
  /// Busy-until cursor per directed link (src board, dst board).
  std::map<std::pair<std::uint32_t, std::uint32_t>, Picoseconds> link_free_;
  std::set<std::pair<std::uint32_t, std::uint32_t>> rerouted_logged_;
  std::uint64_t reroutes_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace hybridic::sys::engine
