// ExecContext: the per-run construction every system variant used to
// repeat — the hardware set, spec lookup tables, design-instance indexes,
// and the assembled Platform. Built once, shared by the walker, the edge
// router, and the fabric policies.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "core/design_result.hpp"
#include "sys/platform.hpp"
#include "sys/schedule.hpp"

namespace hybridic::sys::engine {

class ExecContext {
public:
  /// Build the shared state for `schedule` on `config`. When `design` is
  /// non-null the platform hosts one BRAM per design instance (plus the
  /// NoC the design plans); otherwise one per schedule spec.
  ExecContext(const AppSchedule& schedule, const PlatformConfig& config,
              const core::DesignResult* design);

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  [[nodiscard]] const AppSchedule& schedule() const { return *schedule_; }
  [[nodiscard]] const prof::CommGraph& graph() const {
    return *schedule_->graph;
  }
  [[nodiscard]] const core::DesignResult* design() const { return design_; }
  [[nodiscard]] std::size_t instance_count() const { return instance_count_; }

  /// Functions implemented as hardware kernels (the paper's L_hw).
  [[nodiscard]] const std::set<prof::FunctionId>& hw_set() const {
    return hw_set_;
  }

  /// Spec index of `function`; throws ConfigError naming `role` if the
  /// function has no spec (e.g. "producer function has no spec").
  [[nodiscard]] std::size_t spec_of(prof::FunctionId function,
                                    const char* role) const;

  /// Whether `function` has a kernel spec at all.
  [[nodiscard]] bool has_spec(prof::FunctionId function) const {
    return spec_of_.count(function) > 0;
  }

  /// Design instances implementing `spec` (design runs only).
  [[nodiscard]] const std::vector<std::size_t>& instances_of_spec(
      std::size_t spec) const;

  [[nodiscard]] Platform& platform() { return platform_; }
  [[nodiscard]] const sim::ClockDomain& host_clock() const {
    return platform_.host_clock();
  }
  [[nodiscard]] const sim::ClockDomain& kernel_clock() const {
    return platform_.kernel_clock();
  }

private:
  const AppSchedule* schedule_;
  const core::DesignResult* design_;
  std::size_t instance_count_;
  std::set<prof::FunctionId> hw_set_;
  std::map<prof::FunctionId, std::size_t> spec_of_;
  std::map<std::size_t, std::vector<std::size_t>> instances_of_spec_;
  Platform platform_;
};

/// Measured average seconds/byte of the (idle) bus — the θ the design
/// algorithm and the analytic pipelined executor consume. A one-kernel
/// probe platform is enough because θ only depends on the bus config.
[[nodiscard]] double measured_theta(const PlatformConfig& config);

}  // namespace hybridic::sys::engine
