#include "sys/engine/models.hpp"

#include <algorithm>
#include <cstdint>
#include <string>

#include "core/kernel_model.hpp"
#include "faults/injector.hpp"
#include "util/error.hpp"

namespace hybridic::sys::engine {

// ---------------------------------------------------------------------------
// SoftwareModel
// ---------------------------------------------------------------------------

StepOutcome SoftwareModel::run(const ScheduleStep& step) {
  const double span = HostOnlyPolicy::span_seconds(step.sw_cycles, period_);
  StepOutcome outcome;
  outcome.start_seconds = t_;
  outcome.compute_start_seconds = t_;
  t_ += span;
  outcome.done_seconds = t_;
  outcome.compute_seconds = span;
  return outcome;
}

// ---------------------------------------------------------------------------
// BaselineModel
// ---------------------------------------------------------------------------

StepOutcome BaselineModel::host_step(std::uint32_t /*index*/,
                                     const ScheduleStep& step) {
  StepOutcome outcome;
  outcome.start_seconds = t_.seconds();
  outcome.compute_start_seconds = outcome.start_seconds;
  const Picoseconds span = ctx_->host_clock().span(step.sw_cycles);
  t_ += span;
  outcome.compute_seconds = span.seconds();
  outcome.done_seconds = t_.seconds();
  return outcome;
}

StepOutcome BaselineModel::kernel_step(std::uint32_t index,
                                       const ScheduleStep& step) {
  // Baseline kernel invocation: fetch everything, compute, write back
  // everything (Eq. 2 behaviour on the measured fabrics).
  const core::KernelQuantities q = core::derive_quantities(
      ctx_->graph(), step.function, ctx_->hw_set());
  mem::Bram& bram = ctx_->platform().bram(step.spec_index);

  Pending fetch;
  bus_.fetch(index, step.name + "/fetch", t_, q.total_in(), bram, fetch);
  wait_all(ctx_->platform(), {&fetch});
  const Picoseconds compute_start = std::max(fetch.at, t_);
  const Picoseconds compute_end =
      compute_start + ctx_->kernel_clock().span(step.hw_cycles);

  Pending writeback;
  bus_.writeback(index, step.name + "/writeback", compute_end, q.total_out(),
                 bram, writeback);
  wait_all(ctx_->platform(), {&writeback});
  const Picoseconds done = std::max(writeback.at, compute_end);

  StepOutcome outcome;
  outcome.start_seconds = t_.seconds();
  const double compute = (compute_end - compute_start).seconds();
  const double comm = (done - t_).seconds() - compute;
  outcome.compute_seconds = compute;
  outcome.comm_seconds = std::max(0.0, comm);
  outcome.compute_start_seconds = compute_start.seconds();
  t_ = done;
  outcome.done_seconds = t_.seconds();
  return outcome;
}

// ---------------------------------------------------------------------------
// DesignedModel
// ---------------------------------------------------------------------------

DesignedModel::DesignedModel(ExecContext& ctx, EdgeRouter& router,
                             ExecTrace* trace)
    : ctx_(&ctx),
      router_(&router),
      trace_(trace),
      bus_(ctx, trace),
      shared_(trace),
      noc_(ctx, trace),
      stream_overhead_(
          from_seconds(ctx.platform().config().stream_overhead_seconds)),
      dup_overhead_(from_seconds(
          ctx.platform().config().duplication_overhead_seconds)),
      recs_(ctx.instance_count()),
      executed_(ctx.instance_count(), false) {}

void DesignedModel::note_degraded(std::uint32_t step_index,
                                  const std::string& step_name,
                                  std::size_t producer_instance,
                                  std::size_t consumer_instance) {
  if (!degraded_logged_.insert({producer_instance, consumer_instance})
           .second) {
    return;  // Already reported for this edge.
  }
  Platform& platform = ctx_->platform();
  if (faults::FaultInjector* injector = platform.fault_injector()) {
    ++injector->stats().degraded_edges;
  }
  if (trace_ != nullptr) {
    const double now = platform.engine().now().seconds();
    trace_->record({EventKind::kReroute, Fabric::kBus, step_index, 0, now,
                    now,
                    step_name + "/degrade#" +
                        std::to_string(producer_instance) + "->" +
                        std::to_string(consumer_instance) + " noc->bus"});
  }
}

StepOutcome DesignedModel::host_step(std::uint32_t index,
                                     const ScheduleStep& step) {
  const AppSchedule& schedule = ctx_->schedule();
  // Host steps serialize on the host and gate on the write-back of any
  // kernel whose output they consume.
  Picoseconds ready = t_;
  for (const prof::CommEdge& edge : ctx_->graph().edges()) {
    if (edge.consumer != step.function || edge.producer == edge.consumer ||
        ctx_->hw_set().count(edge.producer) == 0) {
      continue;
    }
    for (std::size_t s = 0; s < schedule.specs.size(); ++s) {
      if (schedule.specs[s].function != edge.producer) {
        continue;
      }
      for (const std::size_t pi : ctx_->instances_of_spec(s)) {
        if (executed_[pi]) {
          ready = std::max(ready, recs_[pi].done);
        }
      }
    }
  }
  if (trace_ != nullptr && ready > t_) {
    trace_->record({EventKind::kStall, Fabric::kHost, index, 0, t_.seconds(),
                    ready.seconds(), step.name + "/wait-dep"});
  }
  StepOutcome outcome;
  outcome.start_seconds = ready.seconds();
  outcome.compute_start_seconds = outcome.start_seconds;
  const Picoseconds span = ctx_->host_clock().span(step.sw_cycles);
  t_ = ready + span;
  app_end_ = std::max(app_end_, t_);
  outcome.compute_seconds = span.seconds();
  outcome.done_seconds = t_.seconds();
  return outcome;
}

StepOutcome DesignedModel::kernel_step(std::uint32_t index,
                                       const ScheduleStep& step) {
  const AppSchedule& schedule = ctx_->schedule();
  const prof::CommGraph& graph = ctx_->graph();
  const core::DesignResult& design = *ctx_->design();
  Platform& platform = ctx_->platform();
  const sim::ClockDomain& kernel = ctx_->kernel_clock();

  const std::vector<std::size_t>& group =
      ctx_->instances_of_spec(step.spec_index);

  // ---- Gather per-instance inputs and gates. ----
  std::vector<Plan> plans;
  plans.reserve(group.size());

  for (const std::size_t ci : group) {
    Plan plan;
    plan.instance = ci;
    plan.gate = t_;
    plan.case1 = router_->host_pipelined(ci);
    const double share_c = design.instances[ci].work_share;

    for (const prof::CommEdge& edge : graph.edges()) {
      if (edge.consumer != step.function || edge.producer == edge.consumer) {
        continue;
      }
      if (ctx_->hw_set().count(edge.producer) == 0) {
        // Host-produced input: fetched over the bus.
        plan.host_in += scale_bytes(core::edge_volume(edge), share_c);
        continue;
      }
      const core::SharedMemoryPairing* pair =
          router_->shared_pair(edge.producer, edge.consumer);
      if (pair != nullptr && pair->consumer_instance == ci &&
          !executed_[pair->producer_instance]) {
        // Backward edge (cyclic graph, e.g. fluid's next-iteration
        // feedback): the data is already resident from the previous
        // aggregate invocation; nothing to gate on.
        continue;
      }
      if (pair != nullptr && pair->consumer_instance == ci) {
        // Shared local memory: data already in place when the producer
        // finishes (or half-way through it when streamed).
        const std::size_t pi = pair->producer_instance;
        plan.gate = std::max(
            plan.gate,
            shared_.handoff(index,
                            step.name + "/shared#" + std::to_string(pi) +
                                "->" + std::to_string(ci),
                            recs_[pi].compute_start, recs_[pi].compute_end,
                            recs_[pi].tau_eff, kernel.span(step.hw_cycles),
                            router_->streamed(pi, ci), stream_overhead_,
                            core::edge_volume(edge)));
        continue;
      }
      // Kernel producer, not shared: NoC if both ends are attached,
      // otherwise fall back to a bus round trip.
      const std::size_t pspec = ctx_->spec_of(edge.producer,
                                              "producer function");
      for (const std::size_t pi : ctx_->instances_of_spec(pspec)) {
        if (!executed_[pi]) {
          // Backward (feedback) edge: previous-iteration data is already
          // in place; the producer's own run accounts for the transfer.
          continue;
        }
        if (router_->noc_usable(pi, ci)) {
          if (router_->streamed(pi, ci)) {
            plan.gate = std::max(
                plan.gate,
                SharedMemoryPolicy::streamed_gate(
                    recs_[pi].compute_start, recs_[pi].compute_end,
                    recs_[pi].tau_eff, kernel.span(step.hw_cycles),
                    stream_overhead_));
          } else {
            const auto it = delivery_.find({pi, ci});
            sim_assert(it != delivery_.end(),
                       "consumer ran before NoC delivery was recorded");
            plan.gate = std::max(
                plan.gate, std::max(it->second, recs_[pi].compute_end));
          }
        } else {
          // Fallback: producer wrote back over the bus (accounted on the
          // producer side); this instance fetches its share.
          if (router_->noc_degraded(pi, ci)) {
            note_degraded(index, step.name, pi, ci);
          }
          const double share_p = design.instances[pi].work_share;
          plan.host_in +=
              scale_bytes(core::edge_volume(edge), share_p * share_c);
          plan.gate = std::max(plan.gate, recs_[pi].done);
        }
      }
    }

    // Outputs: host-consumed (and unreachable kernel-consumed) bytes go
    // back over the bus.
    for (const prof::CommEdge& edge : graph.edges()) {
      if (edge.producer != step.function || edge.producer == edge.consumer) {
        continue;
      }
      if (ctx_->hw_set().count(edge.consumer) == 0) {
        plan.host_out += scale_bytes(core::edge_volume(edge), share_c);
        continue;
      }
      const core::SharedMemoryPairing* pair =
          router_->shared_pair(edge.producer, edge.consumer);
      if (pair != nullptr && pair->producer_instance == ci) {
        continue;  // In place.
      }
      // Consumer instances not reachable via NoC force a bus write-back.
      const std::size_t cspec = ctx_->spec_of(edge.consumer,
                                              "consumer function");
      for (const std::size_t ci2 : ctx_->instances_of_spec(cspec)) {
        if (!router_->noc_usable(ci, ci2)) {
          if (router_->noc_degraded(ci, ci2)) {
            note_degraded(index, step.name, ci, ci2);
          }
          const double share_c2 = design.instances[ci2].work_share;
          plan.host_out +=
              scale_bytes(core::edge_volume(edge), share_c * share_c2);
        }
      }
    }

    plans.push_back(std::move(plan));
  }

  // ---- Phase A: first fetches. ----
  std::vector<Pending*> ops;
  for (Plan& plan : plans) {
    mem::Bram& bram = platform.bram(plan.instance);
    const Bytes first =
        plan.case1 ? Bytes{plan.host_in.count() / 2} : plan.host_in;
    bus_.fetch(index,
               step.name + "/fetch#" + std::to_string(plan.instance),
               plan.gate, first, bram, plan.fetch1);
    ops.push_back(&plan.fetch1);
  }
  wait_all(platform, ops);

  // ---- Phase B: second fetches (case 1) and compute-window timing. ----
  ops.clear();
  for (Plan& plan : plans) {
    if (plan.case1) {
      mem::Bram& bram = platform.bram(plan.instance);
      const Bytes second =
          Bytes{plan.host_in.count() - plan.host_in.count() / 2};
      bus_.fetch(index,
                 step.name + "/fetch2#" + std::to_string(plan.instance),
                 plan.fetch1.at, second, bram, plan.fetch2);
      ops.push_back(&plan.fetch2);
    }
  }
  wait_all(platform, ops);

  for (Plan& plan : plans) {
    InstRec& rec = recs_[plan.instance];
    const core::KernelInstance& inst = design.instances[plan.instance];
    Picoseconds tau = Picoseconds{static_cast<std::uint64_t>(
        static_cast<double>(kernel.span(step.hw_cycles).count()) *
        inst.work_share)};
    if (router_->duplicated_spec(inst.spec_index)) {
      tau += dup_overhead_;
    }
    if (plan.case1) {
      tau += stream_overhead_;
    }
    rec.tau_eff = tau;
    rec.gate = plan.gate;
    rec.compute_start = std::max(plan.fetch1.at, plan.gate);
    if (plan.case1) {
      // Second-half compute cannot finish before the second half of the
      // input arrived.
      rec.compute_end = std::max(rec.compute_start + tau,
                                 plan.fetch2.at + Picoseconds{tau.count() / 2});
    } else {
      rec.compute_end = rec.compute_start + tau;
    }
  }

  // ---- Phase C: NoC sends (overlapped with compute) and write-backs. ----
  ops.clear();
  for (Plan& plan : plans) {
    InstRec& rec = recs_[plan.instance];
    const std::size_t pi = plan.instance;
    const double share_p = design.instances[pi].work_share;

    // Sends to every NoC-reachable consumer instance.
    for (const prof::CommEdge& edge : graph.edges()) {
      if (edge.producer != step.function || edge.producer == edge.consumer ||
          ctx_->hw_set().count(edge.consumer) == 0) {
        continue;
      }
      const core::SharedMemoryPairing* pair =
          router_->shared_pair(edge.producer, edge.consumer);
      if (pair != nullptr && pair->producer_instance == pi) {
        continue;
      }
      for (std::size_t s = 0; s < schedule.specs.size(); ++s) {
        if (schedule.specs[s].function != edge.consumer) {
          continue;
        }
        for (const std::size_t ci : ctx_->instances_of_spec(s)) {
          if (!router_->noc_usable(pi, ci)) {
            continue;
          }
          const double share_c = design.instances[ci].work_share;
          const Bytes bytes =
              scale_bytes(core::edge_volume(edge), share_p * share_c);
          const std::uint32_t src =
              *platform.noc_node(pi, core::NocNodeKind::kKernel);
          const std::uint32_t dst =
              *platform.noc_node(ci, core::NocNodeKind::kLocalMemory);
          plan.sends.emplace_back();
          NocSendOp& op = plan.sends.back();
          const Picoseconds when =
              std::max(rec.compute_start, platform.engine().now());
          const auto key = std::make_pair(pi, ci);
          noc_.send(index,
                    step.name + "/noc#" + std::to_string(pi) + "->" +
                        std::to_string(ci),
                    src, dst, bytes, when, op,
                    [this, key](Picoseconds at) { delivery_[key] = at; });
        }
      }
    }

    // Write-backs of host-bound output.
    mem::Bram& bram = platform.bram(plan.instance);
    if (plan.case1) {
      const Bytes half1{plan.host_out.count() / 2};
      const Bytes half2{plan.host_out.count() - half1.count()};
      const Picoseconds wb1_at =
          std::max(rec.compute_start,
                   rec.compute_end - Picoseconds{rec.tau_eff.count() / 2});
      bus_.writeback(index,
                     step.name + "/wb#" + std::to_string(plan.instance),
                     wb1_at, half1, bram, plan.wb1);
      bus_.writeback(index,
                     step.name + "/wb2#" + std::to_string(plan.instance),
                     rec.compute_end, half2, bram, plan.wb2);
      ops.push_back(&plan.wb1);
      ops.push_back(&plan.wb2);
    } else {
      bus_.writeback(index,
                     step.name + "/wb#" + std::to_string(plan.instance),
                     rec.compute_end, plan.host_out, bram, plan.wb1);
      ops.push_back(&plan.wb1);
    }
    for (NocSendOp& send : plan.sends) {
      ops.push_back(&send.op);
    }
  }
  wait_all(platform, ops);

  // ---- Close the group. ----
  // Duplicated instances run concurrently, so the group's kernel time is
  // wall-clock: compute attribution is the longest instance compute
  // window; everything else exposed within the group span is
  // communication.
  Picoseconds group_done{0};
  Picoseconds group_gate = Picoseconds{UINT64_MAX};
  Picoseconds group_compute_ps{0};
  Picoseconds group_compute_start = Picoseconds{UINT64_MAX};
  for (Plan& plan : plans) {
    InstRec& rec = recs_[plan.instance];
    rec.done = std::max(rec.compute_end, plan.wb1.at);
    if (plan.case1) {
      rec.done = std::max(rec.done, plan.wb2.at);
    }
    for (const NocSendOp& send : plan.sends) {
      app_end_ = std::max(app_end_, send.op.at);
    }
    group_done = std::max(group_done, rec.done);
    group_gate = std::min(group_gate, rec.gate);
    group_compute_ps = std::max(group_compute_ps, rec.tau_eff);
    group_compute_start = std::min(group_compute_start, rec.compute_start);
    executed_[plan.instance] = true;
  }
  const double group_compute = group_compute_ps.seconds();
  const double group_comm =
      std::max(0.0, (group_done - group_gate).seconds() - group_compute);
  // The host cursor does not advance: kernels run decoupled from the host
  // (§IV-A3, "the NoC ensures the parallelism of the processing
  // elements"); downstream steps gate through their data dependencies.
  app_end_ = std::max(app_end_, group_done);

  StepOutcome outcome;
  outcome.start_seconds = group_gate.seconds();
  outcome.done_seconds = group_done.seconds();
  outcome.compute_seconds = group_compute;
  outcome.comm_seconds = group_comm;
  outcome.compute_start_seconds = plans.empty()
                                      ? outcome.start_seconds
                                      : group_compute_start.seconds();
  return outcome;
}

// ---------------------------------------------------------------------------
// CrossbarModel
// ---------------------------------------------------------------------------

StepOutcome CrossbarModel::host_step(std::uint32_t index,
                                     const ScheduleStep& step) {
  Picoseconds ready = t_;
  for (const prof::CommEdge& edge : ctx_->graph().edges()) {
    if (edge.consumer != step.function || edge.producer == edge.consumer ||
        ctx_->hw_set().count(edge.producer) == 0) {
      continue;
    }
    const Rec& rec =
        recs_[ctx_->spec_of(edge.producer, "producer function")];
    if (rec.executed) {
      ready = std::max(ready, rec.done);
    }
  }
  if (trace_ != nullptr && ready > t_) {
    trace_->record({EventKind::kStall, Fabric::kHost, index, 0, t_.seconds(),
                    ready.seconds(), step.name + "/wait-dep"});
  }
  const Picoseconds span = ctx_->host_clock().span(step.sw_cycles);
  StepOutcome outcome;
  outcome.start_seconds = ready.seconds();
  outcome.compute_start_seconds = outcome.start_seconds;
  t_ = ready + span;
  app_end_ = std::max(app_end_, t_);
  outcome.compute_seconds = span.seconds();
  outcome.done_seconds = t_.seconds();
  return outcome;
}

StepOutcome CrossbarModel::kernel_step(std::uint32_t index,
                                       const ScheduleStep& step) {
  const prof::CommGraph& graph = ctx_->graph();
  Platform& platform = ctx_->platform();
  Rec& rec = recs_[step.spec_index];

  // Gate on the host's progress plus data dependencies: a kernel input
  // written through the crossbar is ready when the producer finished
  // streaming it (max of producer end and the port-level write).
  Picoseconds gate = t_;
  Bytes host_in{0};
  for (const prof::CommEdge& edge : graph.edges()) {
    if (edge.consumer != step.function || edge.producer == edge.consumer) {
      continue;
    }
    if (ctx_->hw_set().count(edge.producer) == 0) {
      host_in += core::edge_volume(edge);
      continue;
    }
    const Rec& producer =
        recs_[ctx_->spec_of(edge.producer, "producer function")];
    if (!producer.executed) {
      continue;  // Backward/feedback edge: data already resident.
    }
    gate = std::max(gate,
                    std::max(producer.compute_end, producer.delivered));
  }

  Bytes host_out{0};
  for (const prof::CommEdge& edge : graph.edges()) {
    if (edge.producer != step.function || edge.producer == edge.consumer) {
      continue;
    }
    if (ctx_->hw_set().count(edge.consumer) == 0) {
      host_out += core::edge_volume(edge);
    }
  }

  // Host input over the bus.
  Pending fetch;
  bus_.fetch(index, step.name + "/fetch", gate, host_in,
             platform.bram(step.spec_index), fetch);
  wait_all(platform, {&fetch});
  rec.compute_start = std::max(fetch.at, gate);
  rec.compute_end =
      rec.compute_start + ctx_->kernel_clock().span(step.hw_cycles);

  // Stream kernel-bound outputs through the crossbar during compute: each
  // consumer's BRAM port B is reserved from compute start.
  rec.delivered = rec.compute_end;
  for (const prof::CommEdge& edge : graph.edges()) {
    if (edge.producer != step.function || edge.producer == edge.consumer ||
        ctx_->hw_set().count(edge.consumer) == 0) {
      continue;
    }
    const std::size_t target =
        ctx_->spec_of(edge.consumer, "consumer function");
    const Picoseconds write_done = crossbar_.stream(
        index, step.name + "/xbar->" + std::to_string(target),
        static_cast<std::uint32_t>(step.spec_index),
        static_cast<std::uint32_t>(target), rec.compute_start,
        core::edge_volume(edge));
    rec.delivered = std::max(rec.delivered, write_done);
  }

  // Host-bound output over the bus.
  Pending writeback;
  bus_.writeback(index, step.name + "/writeback", rec.compute_end, host_out,
                 platform.bram(step.spec_index), writeback);
  wait_all(platform, {&writeback});
  rec.done = std::max(rec.compute_end, writeback.at);
  rec.executed = true;

  app_end_ = std::max(app_end_, std::max(rec.done, rec.delivered));
  const double compute = ctx_->kernel_clock().span(step.hw_cycles).seconds();
  const double comm =
      std::max(0.0, (rec.done - gate).seconds() - compute);
  StepOutcome outcome;
  outcome.start_seconds = gate.seconds();
  outcome.compute_start_seconds = rec.compute_start.seconds();
  outcome.compute_seconds = compute;
  outcome.comm_seconds = comm;
  outcome.done_seconds = rec.done.seconds();
  return outcome;
}

}  // namespace hybridic::sys::engine
