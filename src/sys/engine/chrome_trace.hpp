// Chrome-trace (Perfetto-loadable) JSON export of an ExecTrace: one track
// per fabric, one complete ("X") event per trace event. Load the file at
// https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <iosfwd>
#include <string>

#include "sys/engine/trace.hpp"

namespace hybridic::sys::engine {

/// Write `trace` as a Chrome-trace JSON object ("traceEvents" array plus
/// thread-name metadata). `system_name` becomes the process name so traces
/// from several variants can be compared side by side.
void write_chrome_trace(const ExecTrace& trace,
                        const std::string& system_name, std::ostream& out);

/// Convenience wrapper returning the JSON as a string.
[[nodiscard]] std::string chrome_trace_json(const ExecTrace& trace,
                                            const std::string& system_name);

}  // namespace hybridic::sys::engine
