#include "sys/engine/context.hpp"

#include "util/error.hpp"

namespace hybridic::sys::engine {

ExecContext::ExecContext(const AppSchedule& schedule,
                         const PlatformConfig& config,
                         const core::DesignResult* design)
    : schedule_(&schedule),
      design_(design),
      instance_count_(design != nullptr ? design->instances.size()
                                        : schedule.specs.size()),
      platform_(config, instance_count_, design) {
  for (std::size_t s = 0; s < schedule.specs.size(); ++s) {
    hw_set_.insert(schedule.specs[s].function);
    // First spec wins on duplicates, matching the executors' historical
    // first-match linear search.
    spec_of_.emplace(schedule.specs[s].function, s);
  }
  if (design != nullptr) {
    for (std::size_t i = 0; i < design->instances.size(); ++i) {
      require(design->instances[i].spec_index < schedule.specs.size(),
              "design references a spec outside the schedule");
      instances_of_spec_[design->instances[i].spec_index].push_back(i);
    }
  }
}

std::size_t ExecContext::spec_of(prof::FunctionId function,
                                 const char* role) const {
  const auto it = spec_of_.find(function);
  if (it == spec_of_.end()) {
    throw ConfigError{std::string{role} + " has no spec"};
  }
  return it->second;
}

const std::vector<std::size_t>& ExecContext::instances_of_spec(
    std::size_t spec) const {
  return instances_of_spec_.at(spec);
}

double measured_theta(const PlatformConfig& config) {
  Platform probe(config, 1, nullptr);
  return probe.measured_theta();
}

}  // namespace hybridic::sys::engine
