// Experiment facade: given an application schedule (profile + calibrated
// kernels), run the full paper pipeline — design the hybrid interconnect,
// execute the SW / baseline / proposed / NoC-only systems, and collect the
// resource and energy numbers every table and figure needs.
#pragma once

#include <string>

#include "core/design_result.hpp"
#include "core/energy_model.hpp"
#include "core/interconnect_design.hpp"
#include "core/resource_model.hpp"
#include "sys/executor.hpp"
#include "sys/platform.hpp"
#include "sys/schedule.hpp"

namespace hybridic::sys {

/// Per-application constants that are not part of the schedule: the area of
/// the base system infrastructure (host interface, PLB, I/O) on top of
/// which kernels and interconnect are counted.
struct AppEnvironment {
  core::Resources base_infrastructure{3200, 2600};
  core::PowerModel power;
};

/// Everything the benches report for one application.
struct AppExperiment {
  std::string app_name;

  core::DesignResult proposed_design;
  core::DesignResult noc_only_design;

  RunResult sw;
  RunResult baseline;
  RunResult proposed;
  RunResult noc_only;

  core::Resources baseline_resources;
  core::Resources proposed_resources;
  core::Resources noc_only_resources;
  core::Resources kernel_area;           ///< Proposed system's kernels.
  core::Resources interconnect_area;     ///< Proposed custom interconnect.

  double baseline_power_watts = 0.0;
  double proposed_power_watts = 0.0;
  double baseline_energy_joules = 0.0;
  double proposed_energy_joules = 0.0;

  // Derived ratios (the paper's headline numbers).
  [[nodiscard]] double baseline_app_speedup_vs_sw() const {
    return sw.total_seconds / baseline.total_seconds;
  }
  [[nodiscard]] double baseline_kernel_speedup_vs_sw() const {
    return sw.kernel_compute_seconds / baseline.kernel_seconds();
  }
  [[nodiscard]] double proposed_app_speedup_vs_sw() const {
    return sw.total_seconds / proposed.total_seconds;
  }
  [[nodiscard]] double proposed_kernel_speedup_vs_sw() const {
    return sw.kernel_compute_seconds / proposed.kernel_seconds();
  }
  [[nodiscard]] double proposed_app_speedup_vs_baseline() const {
    return baseline.total_seconds / proposed.total_seconds;
  }
  [[nodiscard]] double proposed_kernel_speedup_vs_baseline() const {
    return baseline.kernel_seconds() / proposed.kernel_seconds();
  }
  [[nodiscard]] double baseline_comm_comp_ratio() const {
    return baseline.kernel_comm_seconds / baseline.kernel_compute_seconds;
  }
  [[nodiscard]] double energy_ratio_vs_baseline() const {
    return proposed_energy_joules / baseline_energy_joules;
  }
};

/// Run the full pipeline for one application.
[[nodiscard]] AppExperiment run_experiment(const AppSchedule& schedule,
                                           const PlatformConfig& platform,
                                           const AppEnvironment& env);

/// Build the DesignInput Algorithm 1 consumes for `schedule` on `platform`
/// (θ measured from the simulated bus, overheads from the config).
[[nodiscard]] core::DesignInput make_design_input(
    const AppSchedule& schedule, const PlatformConfig& platform);

}  // namespace hybridic::sys
