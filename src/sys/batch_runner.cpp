#include "sys/batch_runner.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>

#include "util/error.hpp"

namespace hybridic::sys {

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kOk:
      return "ok";
    case JobStatus::kCrashed:
      return "crashed";
    case JobStatus::kTimeout:
      return "timeout";
    case JobStatus::kSkipped:
      return "skipped";
  }
  return "unknown";
}

std::string watchdog_expired_message(double timeout_seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wall-clock watchdog (%gs) expired",
                timeout_seconds);
  return std::string{buf};
}

JobStatus probe_supervised(const std::function<void()>& fn,
                           double timeout_seconds) {
  // `fn` is captured by value: an abandoned watchdog thread may still be
  // inside the call after this frame returns.
  const std::function<int(JobContext&)> wrapped = [fn](JobContext&) {
    fn();
    return 0;
  };
  JobContext context{"probe", 0, Rng{0}, 0};
  const detail::AttemptOutcome<int> outcome =
      timeout_seconds > 0.0
          ? detail::attempt_with_watchdog<int>(wrapped, std::move(context),
                                               nullptr, timeout_seconds)
          : detail::run_attempt<int>(wrapped, context, nullptr);
  return outcome.status;
}

std::uint64_t job_seed(std::string_view key) {
  // FNV-1a 64.
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  // splitmix64 finalizer: decorrelates keys differing in few bits.
  hash = (hash ^ (hash >> 30)) * 0xBF58476D1CE4E5B9ULL;
  hash = (hash ^ (hash >> 27)) * 0x94D049BB133111EBULL;
  return hash ^ (hash >> 31);
}

void BatchRunner::run_erased(
    const std::vector<std::string>& keys,
    const std::function<void(std::size_t, JobContext&)>& invoke) {
  using Clock = std::chrono::steady_clock;

  last_ = BatchReport{};
  last_.thread_count = pool_.thread_count();
  last_.jobs.resize(keys.size());
  if (keys.empty()) {
    return;
  }

  const std::uint64_t steals_before = pool_.steal_count();
  const auto batch_start = Clock::now();

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = keys.size();

  for (std::size_t i = 0; i < keys.size(); ++i) {
    pool_.submit([this, &keys, &invoke, &done_mutex, &done_cv, &remaining,
                  i] {
      JobReport& report = last_.jobs[i];  // Slot is private to this job.
      report.key = keys[i];
      report.seed = job_seed(keys[i]);
      report.index = i;
      report.worker = ThreadPool::current_worker();
      const auto start = Clock::now();
      try {
        JobContext context{keys[i], report.seed, Rng{report.seed}, i};
        invoke(i, context);
      } catch (const std::exception& e) {
        report.ok = false;
        report.error = e.what();
      } catch (...) {
        report.ok = false;
        report.error = "unknown exception";
      }
      const std::chrono::duration<double> elapsed = Clock::now() - start;
      report.wall_seconds = elapsed.count();
      {
        std::unique_lock<std::mutex> lock{done_mutex};
        --remaining;
        // Notify under the lock: the waiter may destroy done_cv the moment
        // it observes remaining == 0, so the signal must not outlive the
        // critical section.
        done_cv.notify_one();
      }
    });
  }

  std::unique_lock<std::mutex> lock{done_mutex};
  done_cv.wait(lock, [&remaining] { return remaining == 0; });

  const std::chrono::duration<double> batch_elapsed =
      Clock::now() - batch_start;
  last_.wall_seconds = batch_elapsed.count();
  last_.steals = pool_.steal_count() - steals_before;
}

void BatchRunner::rethrow_first_failure() const {
  for (const JobReport& job : last_.jobs) {
    if (!job.ok) {
      throw ConfigError{"batch job '" + job.key + "' failed: " + job.error +
                        (last_.failed_count() > 1
                             ? " (+" +
                                   std::to_string(last_.failed_count() - 1) +
                                   " more failed jobs, see last_report())"
                             : "")};
    }
  }
}

}  // namespace hybridic::sys
