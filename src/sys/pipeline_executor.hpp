// Multi-frame pipelined execution — the throughput view of the paper's
// streaming motivation (§IV-A3, case 2 generalized across frames).
//
// With the custom interconnect, consecutive frames can overlap: while
// frame f's consumer kernel computes, frame f+1's producer kernel is
// already running, because kernel→kernel data no longer round-trips
// through the host. This executor models a workload of N identical frames
// as a software pipeline over the kernel instances and reports latency,
// makespan, throughput and the bottleneck stage.
//
// Timing model: per-stage service times come from the same fabric models
// as the single-frame executors (bus θ for host transfers, NoC ideal
// latency for kernel transfers, shared memory free), but scheduling is
// reservation-based (each resource is a busy-until cursor) rather than
// event-driven — the right fidelity for steady-state throughput.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_result.hpp"
#include "sys/platform.hpp"
#include "sys/schedule.hpp"

namespace hybridic::sys {

/// Result of a pipelined multi-frame run.
struct PipelineResult {
  std::string system_name;
  std::uint32_t frames = 0;
  double first_frame_seconds = 0.0;   ///< Latency of frame 0.
  double makespan_seconds = 0.0;      ///< Last frame completion.
  double bottleneck_stage_seconds = 0.0;
  std::string bottleneck_stage;

  /// Steady-state frames per second.
  [[nodiscard]] double throughput_fps() const {
    if (frames <= 1 || makespan_seconds <= first_frame_seconds) {
      return frames / std::max(makespan_seconds, 1e-18);
    }
    return static_cast<double>(frames - 1) /
           (makespan_seconds - first_frame_seconds);
  }
};

/// Run `frames` identical frames through the designed system with
/// cross-frame pipelining. Host steps serialize on the host; each kernel
/// instance serializes on itself; the bus serializes host transfers.
[[nodiscard]] PipelineResult run_designed_pipelined(
    const AppSchedule& schedule, const core::DesignResult& design,
    const PlatformConfig& config, std::uint32_t frames);

/// The baseline has no cross-frame overlap (every transfer serializes on
/// the single bus and the host orchestrates frame by frame): N frames
/// cost N times one frame. Provided for symmetric reporting.
[[nodiscard]] PipelineResult run_baseline_frames(
    const AppSchedule& schedule, const PlatformConfig& config,
    std::uint32_t frames);

}  // namespace hybridic::sys
