// Multi-board execution: replay one application schedule across N boards.
//
// Each board runs the unchanged single-board DesignedModel over its
// projected sub-schedule (its kernels plus, on board 0, every host step);
// the global walk dispatches steps in program order to their owning
// board's model. Cut edges move over the InterBoardLinkPolicy: when a
// producer step finishes, its cross-board bytes ride the serial links
// (store-and-forward, per-directed-link busy cursors) and the consumer
// board's cursor is lifted to the arrival time. With board_count == 1
// everything delegates verbatim to run_designed, so single-board results
// are bit-identical to the pre-multi-board engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/multi_board_design.hpp"
#include "sys/executor.hpp"
#include "sys/platform.hpp"
#include "sys/schedule.hpp"

namespace hybridic::sys {

/// Per-board sub-schedules of `schedule` under the design's partition:
/// board b keeps its own kernel steps (spec indices remapped into the
/// board's spec list) and board 0 additionally keeps every host step.
/// Each returned schedule's graph points into design.board_graphs — the
/// design must outlive the schedules.
[[nodiscard]] std::vector<AppSchedule> board_schedules(
    const AppSchedule& schedule, const core::MultiBoardDesign& design);

/// One multi-board run.
struct MultiBoardRunResult {
  RunResult run;  ///< Global program-order result (merged trace).
  std::vector<double> board_end_seconds;  ///< Per-board completion.
  std::uint64_t inter_board_transfers = 0;
  std::uint64_t inter_board_bytes = 0;
  double inter_board_busy_seconds = 0.0;
  std::uint64_t board_link_reroutes = 0;
};

/// Execute `schedule` on the multi-board platform. Throws ConfigError on
/// board-count mismatches or a disconnected inter-board network.
[[nodiscard]] MultiBoardRunResult run_designed_multi(
    const AppSchedule& schedule, const core::MultiBoardDesign& design,
    const MultiBoardConfig& config,
    std::string system_name = "proposed-multi");

}  // namespace hybridic::sys
