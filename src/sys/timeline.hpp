// Execution-timeline rendering: turns a RunResult's per-step timings into
// an ASCII Gantt chart and a CSV trace, for inspecting where a system
// variant spends its time (which communication got hidden, which did not).
#pragma once

#include <string>

#include "sys/executor.hpp"

namespace hybridic::sys {

/// Options for the ASCII renderer.
struct TimelineOptions {
  std::uint32_t width_chars = 72;  ///< Chart area width.
  bool show_host_steps = true;
};

/// Render `result` as an ASCII Gantt chart: one row per step, '#' for the
/// kernel-compute window and '.' for exposed communication.
[[nodiscard]] std::string render_timeline(const RunResult& result,
                                          const TimelineOptions& options = {});

/// CSV trace: step,name,kind,start_s,done_s,compute_s,comm_s.
[[nodiscard]] std::string timeline_csv(const RunResult& result);

}  // namespace hybridic::sys
