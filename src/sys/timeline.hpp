// Execution-timeline rendering: turns a RunResult's per-step timings and
// its structured ExecTrace into ASCII Gantt charts and CSV traces, for
// inspecting where a system variant spends its time (which communication
// got hidden, which did not, and on which fabric).
#pragma once

#include <string>

#include "sys/executor.hpp"

namespace hybridic::sys {

/// Options for the ASCII renderers.
struct TimelineOptions {
  std::uint32_t width_chars = 72;  ///< Chart area width.
  bool show_host_steps = true;
};

/// Render `result` as an ASCII Gantt chart: one row per step, '#' for the
/// kernel-compute window and '.' for exposed communication.
[[nodiscard]] std::string render_timeline(const RunResult& result,
                                          const TimelineOptions& options = {});

/// CSV trace: step,name,kind,start_s,done_s,compute_s,comm_s.
[[nodiscard]] std::string timeline_csv(const RunResult& result);

/// Render the run's ExecTrace as one lane per fabric: every lane shows
/// where its fabric was busy ('#' compute, '=' DMA, '>' NoC/crossbar
/// transfers, '*' shared-memory handoffs) over the run's span, followed by
/// each fabric's busy time and traffic. Empty fabrics are omitted.
[[nodiscard]] std::string render_trace_lanes(
    const RunResult& result, const TimelineOptions& options = {});

/// Event-level CSV of the trace:
/// event,kind,fabric,step,start_s,end_s,bytes,label (chronological).
[[nodiscard]] std::string trace_csv(const engine::ExecTrace& trace);

}  // namespace hybridic::sys
