// Shared internals of the system executors (run_designed,
// run_crossbar_system): pending-operation bookkeeping around the
// event-driven fabrics. Not part of the public API.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "bus/dma.hpp"
#include "sys/platform.hpp"
#include "util/error.hpp"

namespace hybridic::sys::detail {

inline Picoseconds from_seconds(double seconds) {
  return Picoseconds{static_cast<std::uint64_t>(
      std::llround(std::max(0.0, seconds) * 1e12))};
}

inline Bytes scale_bytes(Bytes bytes, double share) {
  return Bytes{static_cast<std::uint64_t>(
      std::llround(static_cast<double>(bytes.count()) * share))};
}

/// Completion marker for an asynchronous fabric operation.
struct Pending {
  bool done = false;
  Picoseconds at{0};
};

/// Issue a DMA block transfer at (or after) `when`; zero bytes complete
/// immediately at the requested time (no fabric involvement).
inline void issue_dma(Platform& platform, Picoseconds when,
                      bus::DmaDirection dir, Bytes bytes, mem::Bram& bram,
                      Pending& op) {
  if (bytes.count() == 0) {
    op.done = true;
    op.at = when;
    return;
  }
  const Picoseconds at = std::max(when, platform.engine().now());
  platform.engine().schedule_at(at, [&platform, dir, bytes, &bram, &op] {
    platform.dma().transfer(dir, bytes, bram, [&op](Picoseconds done_at) {
      op.done = true;
      op.at = done_at;
    });
  });
}

inline void wait_all(Platform& platform, const std::vector<Pending*>& ops) {
  platform.engine().run_until([&ops] {
    for (const Pending* op : ops) {
      if (!op->done) {
        return false;
      }
    }
    return true;
  });
  for (const Pending* op : ops) {
    sim_assert(op->done, "fabric operation never completed (deadlock?)");
  }
}

}  // namespace hybridic::sys::detail
