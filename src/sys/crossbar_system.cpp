#include "sys/crossbar_system.hpp"

#include <map>
#include <set>

#include "core/kernel_model.hpp"
#include "mem/full_crossbar.hpp"
#include "sys/exec_detail.hpp"

namespace hybridic::sys {

using detail::Pending;

RunResult run_crossbar_system(const AppSchedule& schedule,
                              PlatformConfig config) {
  require(schedule.graph != nullptr, "schedule has no profile graph");
  require(!schedule.specs.empty(), "crossbar system needs kernels");
  const prof::CommGraph& graph = *schedule.graph;

  std::set<prof::FunctionId> hw_set;
  std::map<prof::FunctionId, std::size_t> spec_of;
  for (std::size_t s = 0; s < schedule.specs.size(); ++s) {
    hw_set.insert(schedule.specs[s].function);
    spec_of[schedule.specs[s].function] = s;
  }

  Platform platform(config, schedule.specs.size(), nullptr);
  const sim::ClockDomain& host = platform.host_clock();
  const sim::ClockDomain& kernel = platform.kernel_clock();

  std::vector<mem::Bram*> memories;
  for (std::size_t s = 0; s < schedule.specs.size(); ++s) {
    memories.push_back(&platform.bram(s));
  }
  mem::FullCrossbar crossbar{"xbar", memories};

  struct Rec {
    Picoseconds compute_start{0};
    Picoseconds compute_end{0};
    Picoseconds done{0};        ///< Incl. host write-back.
    Picoseconds delivered{0};   ///< Crossbar writes into consumers done.
    bool executed = false;
  };
  std::vector<Rec> recs(schedule.specs.size());

  RunResult result;
  result.system_name = "crossbar";
  Picoseconds t{0};  // Host cursor.
  Picoseconds app_end{0};

  for (const ScheduleStep& step : schedule.steps) {
    StepTiming timing;
    timing.name = step.name;
    timing.is_kernel = step.is_kernel;

    if (!step.is_kernel) {
      Picoseconds ready = t;
      for (const prof::CommEdge& edge : graph.edges()) {
        if (edge.consumer != step.function ||
            edge.producer == edge.consumer ||
            hw_set.count(edge.producer) == 0) {
          continue;
        }
        const Rec& rec = recs[spec_of.at(edge.producer)];
        if (rec.executed) {
          ready = std::max(ready, rec.done);
        }
      }
      const Picoseconds span = host.span(step.sw_cycles);
      timing.start_seconds = ready.seconds();
      t = ready + span;
      app_end = std::max(app_end, t);
      result.host_seconds += span.seconds();
      timing.compute_seconds = span.seconds();
      timing.done_seconds = t.seconds();
      result.steps.push_back(std::move(timing));
      continue;
    }

    Rec& rec = recs[step.spec_index];

    // Gate on the host's progress plus data dependencies: a kernel input
    // written through the crossbar is ready when the producer finished
    // streaming it (max of producer end and the port-level write).
    Picoseconds gate = t;
    Bytes host_in{0};
    for (const prof::CommEdge& edge : graph.edges()) {
      if (edge.consumer != step.function ||
          edge.producer == edge.consumer) {
        continue;
      }
      if (hw_set.count(edge.producer) == 0) {
        host_in += core::edge_volume(edge);
        continue;
      }
      const Rec& producer = recs[spec_of.at(edge.producer)];
      if (!producer.executed) {
        continue;  // Backward/feedback edge: data already resident.
      }
      gate = std::max(gate,
                      std::max(producer.compute_end, producer.delivered));
    }

    Bytes host_out{0};
    for (const prof::CommEdge& edge : graph.edges()) {
      if (edge.producer != step.function ||
          edge.producer == edge.consumer) {
        continue;
      }
      if (hw_set.count(edge.consumer) == 0) {
        host_out += core::edge_volume(edge);
      }
    }

    // Host input over the bus.
    Pending fetch;
    detail::issue_dma(platform, gate, bus::DmaDirection::kMemToLocal,
                      host_in, platform.bram(step.spec_index), fetch);
    detail::wait_all(platform, {&fetch});
    rec.compute_start = std::max(fetch.at, gate);
    rec.compute_end = rec.compute_start + kernel.span(step.hw_cycles);

    // Stream kernel-bound outputs through the crossbar during compute:
    // each consumer's BRAM port B is reserved from compute start.
    rec.delivered = rec.compute_end;
    for (const prof::CommEdge& edge : graph.edges()) {
      if (edge.producer != step.function ||
          edge.producer == edge.consumer ||
          hw_set.count(edge.consumer) == 0) {
        continue;
      }
      const std::size_t target = spec_of.at(edge.consumer);
      const Picoseconds write_done = crossbar.access(
          static_cast<std::uint32_t>(step.spec_index),
          static_cast<std::uint32_t>(target), rec.compute_start,
          core::edge_volume(edge));
      rec.delivered = std::max(rec.delivered, write_done);
    }

    // Host-bound output over the bus.
    Pending writeback;
    detail::issue_dma(platform, rec.compute_end,
                      bus::DmaDirection::kLocalToMem, host_out,
                      platform.bram(step.spec_index), writeback);
    detail::wait_all(platform, {&writeback});
    rec.done = std::max(rec.compute_end, writeback.at);
    rec.executed = true;

    app_end = std::max(app_end, std::max(rec.done, rec.delivered));
    const double compute = kernel.span(step.hw_cycles).seconds();
    const double comm =
        std::max(0.0, (rec.done - gate).seconds() - compute);
    result.kernel_compute_seconds += compute;
    result.kernel_comm_seconds += comm;
    timing.start_seconds = gate.seconds();
    timing.compute_seconds = compute;
    timing.comm_seconds = comm;
    timing.done_seconds = rec.done.seconds();
    result.steps.push_back(std::move(timing));
  }

  result.total_seconds = app_end.seconds();
  return result;
}

core::Resources crossbar_system_resources(std::uint32_t kernel_count) {
  return core::Resources{
      mem::FullCrossbar::estimate_luts(kernel_count, kernel_count),
      mem::FullCrossbar::estimate_regs(kernel_count, kernel_count)};
}

}  // namespace hybridic::sys
