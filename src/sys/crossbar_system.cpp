#include "sys/crossbar_system.hpp"

#include "faults/injector.hpp"
#include "mem/full_crossbar.hpp"
#include "sys/engine/models.hpp"
#include "sys/engine/walker.hpp"
#include "util/error.hpp"

namespace hybridic::sys {

RunResult run_crossbar_system(const AppSchedule& schedule,
                              PlatformConfig config) {
  require(schedule.graph != nullptr, "schedule has no profile graph");
  require(!schedule.specs.empty(), "crossbar system needs kernels");
  engine::ExecContext ctx(schedule, config, nullptr);
  engine::ScheduleWalker walker(schedule, "crossbar");
  engine::CrossbarModel model(ctx, &walker.trace());
  RunResult result = walker.run(model);
  if (const faults::FaultInjector* injector =
          ctx.platform().fault_injector()) {
    engine::append_fault_events(result.trace, *injector);
    result.fault_stats = injector->stats();
  }
  return result;
}

core::Resources crossbar_system_resources(std::uint32_t kernel_count) {
  return core::Resources{
      mem::FullCrossbar::estimate_luts(kernel_count, kernel_count),
      mem::FullCrossbar::estimate_regs(kernel_count, kernel_count)};
}

}  // namespace hybridic::sys
