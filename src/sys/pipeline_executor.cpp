#include "sys/pipeline_executor.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "core/kernel_model.hpp"
#include "sys/engine/context.hpp"
#include "sys/engine/edge_router.hpp"
#include "sys/engine/policies.hpp"
#include "sys/executor.hpp"
#include "sys/experiment.hpp"
#include "util/error.hpp"

namespace hybridic::sys {

namespace {

/// Busy-until cursor for a serial resource.
class Cursor {
public:
  /// Occupy the resource for `duration` starting no earlier than
  /// `earliest`; returns completion time.
  double reserve(double earliest, double duration) {
    const double start = std::max(earliest, free_at_);
    free_at_ = start + duration;
    occupancy_ += duration;
    return free_at_;
  }
  [[nodiscard]] double peek() const { return free_at_; }
  [[nodiscard]] double occupancy() const { return occupancy_; }

private:
  double free_at_ = 0.0;
  double occupancy_ = 0.0;
};

}  // namespace

PipelineResult run_designed_pipelined(const AppSchedule& schedule,
                                      const core::DesignResult& design,
                                      const PlatformConfig& config,
                                      std::uint32_t frames) {
  require(schedule.graph != nullptr, "schedule has no graph");
  require(frames > 0, "pipeline needs at least one frame");
  const prof::CommGraph& graph = *schedule.graph;

  // Shared engine state: hardware set and the design's per-edge routing.
  engine::ExecContext ctx(schedule, config, &design);
  engine::EdgeRouter router(ctx, &design);
  const std::set<prof::FunctionId>& hw_set = ctx.hw_set();

  // θ of the baseline bus (the same the design algorithm used).
  const double theta = engine::measured_theta(config);

  // Per-spec pipeline-stage parameters.
  struct Stage {
    double tau_eff = 0.0;       ///< Compute window per frame.
    double host_in_theta = 0.0; ///< Bus time for host input.
    double host_out_theta = 0.0;
    std::uint32_t copies = 1;
  };
  std::map<std::size_t, Stage> stages;  // spec index -> stage
  std::map<std::size_t, std::uint32_t> copies_of_spec;
  for (const core::KernelInstance& inst : design.instances) {
    ++copies_of_spec[inst.spec_index];
  }

  for (std::size_t s = 0; s < schedule.specs.size(); ++s) {
    const core::KernelSpec& spec = schedule.specs[s];
    Stage stage;
    stage.copies = copies_of_spec.count(s) > 0 ? copies_of_spec.at(s) : 1;
    stage.tau_eff =
        static_cast<double>(spec.hw_compute_cycles.count()) /
        static_cast<double>(config.kernel_clock.hertz()) /
        stage.copies;
    if (router.duplicated_spec(s)) {
      stage.tau_eff += config.duplication_overhead_seconds;
    }
    stages[s] = stage;
  }

  // Host transfer volumes per step (host edges + fallback kernel edges).
  for (const ScheduleStep& step : schedule.steps) {
    if (!step.is_kernel) {
      continue;
    }
    Stage& stage = stages.at(step.spec_index);
    for (const prof::CommEdge& edge : graph.edges()) {
      if (edge.producer == edge.consumer) {
        continue;
      }
      const Bytes volume = core::edge_volume(edge);
      if (edge.consumer == step.function) {
        const bool from_host = hw_set.count(edge.producer) == 0;
        const bool via_sm = router.shared_edge(edge.producer, edge.consumer);
        const bool via_noc =
            !via_sm && !from_host &&
            router.noc_hops(edge.producer, edge.consumer) > 0;
        if (from_host || (!via_sm && !via_noc)) {
          stage.host_in_theta +=
              theta * static_cast<double>(volume.count());
        }
      }
      if (edge.producer == step.function) {
        const bool to_host = hw_set.count(edge.consumer) == 0;
        const bool via_sm = router.shared_edge(edge.producer, edge.consumer);
        const bool via_noc =
            !via_sm && !to_host &&
            router.noc_hops(edge.producer, edge.consumer) > 0;
        if (to_host || (!via_sm && !via_noc)) {
          stage.host_out_theta +=
              theta * static_cast<double>(volume.count());
        }
      }
    }
  }

  // ---- Pipelined schedule over frames: a greedy list scheduler. ----
  // One op per (frame, step). An op becomes eligible once all its
  // dependencies are scheduled; of the eligible ops the scheduler always
  // starts the one with the earliest achievable start time (ties broken
  // by (frame, step) for determinism). This lets the host load frame f+1
  // while frame f's results are still in flight — the software-pipelined
  // loop the custom interconnect enables.
  Cursor host;
  Cursor bus;
  std::map<std::size_t, Cursor> kernels;  // spec -> serial kernel resource

  struct Op {
    std::uint32_t frame = 0;
    std::size_t step = 0;
    bool scheduled = false;
    double compute_end = 0.0;
    double full_done = 0.0;
  };
  const std::size_t step_count = schedule.steps.size();
  std::vector<Op> ops(static_cast<std::size_t>(frames) * step_count);
  for (std::uint32_t f = 0; f < frames; ++f) {
    for (std::size_t s = 0; s < step_count; ++s) {
      ops[f * step_count + s].frame = f;
      ops[f * step_count + s].step = s;
    }
  }

  // Dependency readiness of `op`: returns false if a dependency is still
  // unscheduled, otherwise sets `ready`.
  const auto dep_ready = [&](const Op& op, double& ready) {
    ready = 0.0;
    const ScheduleStep& step = schedule.steps[op.step];
    for (const prof::CommEdge& edge : graph.edges()) {
      if (edge.consumer != step.function ||
          edge.producer == edge.consumer) {
        continue;
      }
      const std::size_t p_step = schedule.step_of(edge.producer);
      const bool backward = p_step >= op.step;
      if (backward && op.frame == 0) {
        continue;  // No previous frame yet.
      }
      const std::uint32_t dep_frame = backward ? op.frame - 1 : op.frame;
      const Op& source = ops[dep_frame * step_count + p_step];
      if (!source.scheduled) {
        return false;
      }
      const bool via_sm = router.shared_edge(edge.producer, edge.consumer);
      const std::uint32_t hops =
          via_sm ? 0 : router.noc_hops(edge.producer, edge.consumer);
      if (via_sm) {
        ready = std::max(ready, source.compute_end);
      } else if (hops > 0) {
        ready = std::max(ready,
                         source.compute_end +
                             engine::NocPolicy::idle_latency_seconds(
                                 config, core::edge_volume(edge), hops));
      } else {
        ready = std::max(ready, source.full_done);
      }
    }
    return true;
  };

  PipelineResult result;
  result.system_name = "proposed-pipelined";
  result.frames = frames;

  const double host_hz = static_cast<double>(config.host_clock.hertz());
  std::size_t remaining = ops.size();
  while (remaining > 0) {
    // Pick the eligible op with the earliest achievable start.
    std::size_t best = ops.size();
    double best_start = 0.0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      Op& op = ops[i];
      if (op.scheduled) {
        continue;
      }
      // An op can only be considered once the same step of the previous
      // frame is scheduled (a stage processes frames in order).
      if (op.frame > 0 &&
          !ops[(op.frame - 1) * step_count + op.step].scheduled) {
        continue;
      }
      double ready = 0.0;
      if (!dep_ready(op, ready)) {
        continue;
      }
      const ScheduleStep& step = schedule.steps[op.step];
      double start = ready;
      if (!step.is_kernel) {
        start = std::max(start, host.peek());
      } else {
        const Stage& stage = stages.at(step.spec_index);
        if (stage.host_in_theta > 0.0) {
          start = std::max(start, bus.peek());
        }
        // The kernel itself gates after the fetch; using the fetch start
        // keeps the pick greedy but consistent.
      }
      if (best == ops.size() || start < best_start) {
        best = i;
        best_start = start;
      }
    }
    sim_assert(best < ops.size(),
               "pipeline scheduler found no eligible op (cyclic deps?)");

    Op& op = ops[best];
    double ready = 0.0;
    (void)dep_ready(op, ready);
    const ScheduleStep& step = schedule.steps[op.step];
    if (!step.is_kernel) {
      const double span =
          static_cast<double>(step.sw_cycles.count()) / host_hz;
      const double end = host.reserve(ready, span);
      op.compute_end = end;
      op.full_done = end;
    } else {
      const Stage& stage = stages.at(step.spec_index);
      const double fetch_end =
          stage.host_in_theta > 0.0
              ? bus.reserve(ready, stage.host_in_theta)
              : ready;
      Cursor& kernel = kernels[step.spec_index];
      op.compute_end = kernel.reserve(fetch_end, stage.tau_eff);
      const double wb_end =
          stage.host_out_theta > 0.0
              ? bus.reserve(op.compute_end, stage.host_out_theta)
              : op.compute_end;
      op.full_done = std::max(op.compute_end, wb_end);
    }
    op.scheduled = true;
    --remaining;
  }

  for (std::uint32_t f = 0; f < frames; ++f) {
    double frame_done = 0.0;
    for (std::size_t s = 0; s < step_count; ++s) {
      frame_done = std::max(frame_done, ops[f * step_count + s].full_done);
    }
    if (f == 0) {
      result.first_frame_seconds = frame_done;
    }
    result.makespan_seconds =
        std::max(result.makespan_seconds, frame_done);
  }

  // Bottleneck: the resource with the highest per-frame occupancy.
  const double per_frame_host = host.occupancy() / frames;
  const double per_frame_bus = bus.occupancy() / frames;
  result.bottleneck_stage = "host";
  result.bottleneck_stage_seconds = per_frame_host;
  if (per_frame_bus > result.bottleneck_stage_seconds) {
    result.bottleneck_stage = "bus";
    result.bottleneck_stage_seconds = per_frame_bus;
  }
  for (const auto& [spec, cursor] : kernels) {
    const double per_frame = cursor.occupancy() / frames;
    if (per_frame > result.bottleneck_stage_seconds) {
      result.bottleneck_stage = schedule.specs[spec].name;
      result.bottleneck_stage_seconds = per_frame;
    }
  }
  return result;
}

PipelineResult run_baseline_frames(const AppSchedule& schedule,
                                   const PlatformConfig& config,
                                   std::uint32_t frames) {
  require(frames > 0, "pipeline needs at least one frame");
  const RunResult single = run_baseline(schedule, config);
  PipelineResult result;
  result.system_name = "baseline-frames";
  result.frames = frames;
  result.first_frame_seconds = single.total_seconds;
  result.makespan_seconds = single.total_seconds * frames;
  result.bottleneck_stage = "bus (fully serialized)";
  result.bottleneck_stage_seconds = single.total_seconds;
  return result;
}

}  // namespace hybridic::sys
