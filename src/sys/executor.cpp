#include "sys/executor.hpp"

#include <utility>

#include "faults/injector.hpp"
#include "sys/engine/models.hpp"
#include "sys/engine/walker.hpp"
#include "util/error.hpp"

namespace hybridic::sys {

namespace {

/// Fold the run's injected faults into the result: merge the injector's
/// event log into the trace and copy the exact counters.
RunResult finish_run(RunResult result, Platform& platform) {
  if (const faults::FaultInjector* injector = platform.fault_injector()) {
    engine::append_fault_events(result.trace, *injector);
    result.fault_stats = injector->stats();
  }
  return result;
}

}  // namespace

RunResult run_software(const AppSchedule& schedule,
                       const PlatformConfig& config) {
  engine::ScheduleWalker walker(schedule, "software");
  engine::SoftwareModel model(config);
  return walker.run(model);
}

RunResult run_baseline(const AppSchedule& schedule, PlatformConfig config) {
  require(schedule.graph != nullptr, "schedule has no profile graph");
  engine::ExecContext ctx(schedule, config, nullptr);
  engine::ScheduleWalker walker(schedule, "baseline");
  engine::BaselineModel model(ctx, &walker.trace());
  return finish_run(walker.run(model), ctx.platform());
}

RunResult run_designed(const AppSchedule& schedule,
                       const core::DesignResult& design,
                       PlatformConfig config, std::string system_name) {
  require(schedule.graph != nullptr, "schedule has no profile graph");
  require(!design.instances.empty(), "design has no kernel instances");
  engine::ExecContext ctx(schedule, config, &design);
  engine::EdgeRouter router(ctx, &design);
  engine::ScheduleWalker walker(schedule, std::move(system_name));
  engine::DesignedModel model(ctx, router, &walker.trace());
  return finish_run(walker.run(model), ctx.platform());
}

}  // namespace hybridic::sys
