#include "sys/executor.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "core/kernel_model.hpp"
#include "sys/exec_detail.hpp"
#include "util/error.hpp"

namespace hybridic::sys {

using detail::from_seconds;
using detail::issue_dma;
using detail::Pending;
using detail::scale_bytes;
using detail::wait_all;

RunResult run_software(const AppSchedule& schedule,
                       const PlatformConfig& config) {
  RunResult result;
  result.system_name = "software";
  const double period = config.host_clock.period().seconds();
  double t = 0.0;
  for (const ScheduleStep& step : schedule.steps) {
    const double span = static_cast<double>(step.sw_cycles.count()) * period;
    StepTiming timing;
    timing.name = step.name;
    timing.is_kernel = step.is_kernel;
    timing.start_seconds = t;
    t += span;
    timing.done_seconds = t;
    timing.compute_seconds = span;
    if (step.is_kernel) {
      result.kernel_compute_seconds += span;
    } else {
      result.host_seconds += span;
    }
    result.steps.push_back(std::move(timing));
  }
  result.total_seconds = t;
  return result;
}

RunResult run_baseline(const AppSchedule& schedule, PlatformConfig config) {
  require(schedule.graph != nullptr, "schedule has no profile graph");
  const prof::CommGraph& graph = *schedule.graph;

  std::set<prof::FunctionId> hw_set;
  for (const core::KernelSpec& spec : schedule.specs) {
    hw_set.insert(spec.function);
  }

  Platform platform(config, schedule.specs.size(), nullptr);
  const sim::ClockDomain& host = platform.host_clock();
  const sim::ClockDomain& kernel = platform.kernel_clock();

  RunResult result;
  result.system_name = "baseline";
  Picoseconds t{0};

  for (const ScheduleStep& step : schedule.steps) {
    StepTiming timing;
    timing.name = step.name;
    timing.is_kernel = step.is_kernel;
    timing.start_seconds = t.seconds();

    if (!step.is_kernel) {
      const Picoseconds span = host.span(step.sw_cycles);
      t += span;
      result.host_seconds += span.seconds();
      timing.compute_seconds = span.seconds();
      timing.done_seconds = t.seconds();
      result.steps.push_back(std::move(timing));
      continue;
    }

    // Baseline kernel invocation: fetch everything, compute, write back
    // everything (Eq. 2 behaviour on the measured fabrics).
    const core::KernelQuantities q =
        core::derive_quantities(graph, step.function, hw_set);
    mem::Bram& bram = platform.bram(step.spec_index);

    Pending fetch;
    issue_dma(platform, t, bus::DmaDirection::kMemToLocal, q.total_in(),
              bram, fetch);
    wait_all(platform, {&fetch});
    const Picoseconds compute_start = std::max(fetch.at, t);
    const Picoseconds compute_end = compute_start + kernel.span(step.hw_cycles);

    Pending writeback;
    issue_dma(platform, compute_end, bus::DmaDirection::kLocalToMem,
              q.total_out(), bram, writeback);
    wait_all(platform, {&writeback});
    const Picoseconds done = std::max(writeback.at, compute_end);

    const double compute = (compute_end - compute_start).seconds();
    const double comm = (done - t).seconds() - compute;
    result.kernel_compute_seconds += compute;
    result.kernel_comm_seconds += std::max(0.0, comm);
    timing.compute_seconds = compute;
    timing.comm_seconds = std::max(0.0, comm);
    t = done;
    timing.done_seconds = t.seconds();
    result.steps.push_back(std::move(timing));
  }
  result.total_seconds = t.seconds();
  return result;
}

RunResult run_designed(const AppSchedule& schedule,
                       const core::DesignResult& design,
                       PlatformConfig config, std::string system_name) {
  require(schedule.graph != nullptr, "schedule has no profile graph");
  const prof::CommGraph& graph = *schedule.graph;
  const std::size_t instance_count = design.instances.size();
  require(instance_count > 0, "design has no kernel instances");

  std::set<prof::FunctionId> hw_set;
  for (const core::KernelSpec& spec : schedule.specs) {
    hw_set.insert(spec.function);
  }

  // Lookups over the design.
  std::map<std::size_t, std::vector<std::size_t>> instances_of_spec;
  for (std::size_t i = 0; i < instance_count; ++i) {
    require(design.instances[i].spec_index < schedule.specs.size(),
            "design references a spec outside the schedule");
    instances_of_spec[design.instances[i].spec_index].push_back(i);
  }
  std::set<std::size_t> duplicated_specs(
      design.parallel.duplicated_specs.begin(),
      design.parallel.duplicated_specs.end());
  std::set<std::size_t> case1_instances(design.parallel.host_pipelined.begin(),
                                        design.parallel.host_pipelined.end());
  std::set<std::pair<std::size_t, std::size_t>> streamed_pairs;
  for (const core::StreamedEdge& e : design.parallel.streamed) {
    streamed_pairs.insert({e.producer_instance, e.consumer_instance});
  }
  // Shared-memory pairings indexed by (producer fn, consumer fn).
  std::map<std::pair<prof::FunctionId, prof::FunctionId>,
           const core::SharedMemoryPairing*>
      shared_by_fn;
  for (const core::SharedMemoryPairing& pair : design.shared_pairs) {
    shared_by_fn[{design.instances[pair.producer_instance].function,
                  design.instances[pair.consumer_instance].function}] = &pair;
  }

  Platform platform(config, instance_count, &design);
  const sim::ClockDomain& host = platform.host_clock();
  const sim::ClockDomain& kernel = platform.kernel_clock();
  noc::Network* network = platform.network();

  const Picoseconds stream_overhead =
      from_seconds(config.stream_overhead_seconds);
  const Picoseconds dup_overhead =
      from_seconds(config.duplication_overhead_seconds);

  const auto noc_reachable = [&](std::size_t pi, std::size_t ci) {
    return network != nullptr &&
           platform.noc_node(pi, core::NocNodeKind::kKernel).has_value() &&
           platform.noc_node(ci, core::NocNodeKind::kLocalMemory).has_value();
  };

  struct InstRec {
    Picoseconds gate{0};
    Picoseconds compute_start{0};
    Picoseconds compute_end{0};
    Picoseconds done{0};
    Picoseconds tau_eff{0};
  };
  std::vector<InstRec> recs(instance_count);
  std::vector<bool> executed(instance_count, false);
  std::map<std::pair<std::size_t, std::size_t>, Picoseconds> delivery;

  RunResult result;
  result.system_name = std::move(system_name);
  Picoseconds t{0};
  Picoseconds app_end{0};

  for (const ScheduleStep& step : schedule.steps) {
    StepTiming timing;
    timing.name = step.name;
    timing.is_kernel = step.is_kernel;
    timing.start_seconds = t.seconds();

    if (!step.is_kernel) {
      // Host steps serialize on the host and gate on the write-back of
      // any kernel whose output they consume.
      Picoseconds ready = t;
      for (const prof::CommEdge& edge : graph.edges()) {
        if (edge.consumer != step.function ||
            edge.producer == edge.consumer ||
            hw_set.count(edge.producer) == 0) {
          continue;
        }
        for (std::size_t s = 0; s < schedule.specs.size(); ++s) {
          if (schedule.specs[s].function != edge.producer) {
            continue;
          }
          for (const std::size_t pi : instances_of_spec.at(s)) {
            if (executed[pi]) {
              ready = std::max(ready, recs[pi].done);
            }
          }
        }
      }
      timing.start_seconds = ready.seconds();
      const Picoseconds span = host.span(step.sw_cycles);
      t = ready + span;
      app_end = std::max(app_end, t);
      result.host_seconds += span.seconds();
      timing.compute_seconds = span.seconds();
      timing.done_seconds = t.seconds();
      result.steps.push_back(std::move(timing));
      continue;
    }

    const std::vector<std::size_t>& group =
        instances_of_spec.at(step.spec_index);

    // ---- Gather per-instance inputs and gates. ----
    struct Plan {
      std::size_t instance = 0;
      Picoseconds gate{0};
      Bytes host_in{0};
      Bytes host_out{0};
      bool case1 = false;
      Pending fetch1;
      Pending fetch2;
      std::deque<Pending> sends;  // deque: stable addresses for callbacks
      Pending wb1;
      Pending wb2;
    };
    std::vector<Plan> plans;
    plans.reserve(group.size());

    for (const std::size_t ci : group) {
      Plan plan;
      plan.instance = ci;
      plan.gate = t;
      plan.case1 = case1_instances.count(ci) > 0;
      const double share_c = design.instances[ci].work_share;

      for (const prof::CommEdge& edge : graph.edges()) {
        if (edge.consumer != step.function ||
            edge.producer == edge.consumer) {
          continue;
        }
        if (hw_set.count(edge.producer) == 0) {
          // Host-produced input: fetched over the bus.
          plan.host_in += scale_bytes(core::edge_volume(edge), share_c);
          continue;
        }
        const auto shared_it =
            shared_by_fn.find({edge.producer, edge.consumer});
        if (shared_it != shared_by_fn.end() &&
            shared_it->second->consumer_instance == ci &&
            !executed[shared_it->second->producer_instance]) {
          // Backward edge (cyclic graph, e.g. fluid's next-iteration
          // feedback): the data is already resident from the previous
          // aggregate invocation; nothing to gate on.
          continue;
        }
        if (shared_it != shared_by_fn.end() &&
            shared_it->second->consumer_instance == ci) {
          // Shared local memory: data already in place when the producer
          // finishes (or half-way through it when streamed).
          const std::size_t pi = shared_it->second->producer_instance;
          Picoseconds dep = recs[pi].compute_end;
          if (streamed_pairs.count({pi, ci}) > 0) {
            const Picoseconds half =
                Picoseconds{std::min(recs[pi].tau_eff.count(),
                                     kernel.span(step.hw_cycles).count()) /
                            2};
            dep = std::max(recs[pi].compute_start + stream_overhead,
                           recs[pi].compute_end - half + stream_overhead);
          }
          plan.gate = std::max(plan.gate, dep);
          continue;
        }
        // Kernel producer, not shared: NoC if both ends are attached,
        // otherwise fall back to a bus round trip.
        const std::size_t pspec = [&] {
          for (std::size_t s = 0; s < schedule.specs.size(); ++s) {
            if (schedule.specs[s].function == edge.producer) {
              return s;
            }
          }
          throw ConfigError{"producer function has no spec"};
        }();
        for (const std::size_t pi : instances_of_spec.at(pspec)) {
          if (!executed[pi]) {
            // Backward (feedback) edge: previous-iteration data is already
            // in place; the producer's own run accounts for the transfer.
            continue;
          }
          if (noc_reachable(pi, ci)) {
            if (streamed_pairs.count({pi, ci}) > 0) {
              const Picoseconds half =
                  Picoseconds{std::min(recs[pi].tau_eff.count(),
                                       kernel.span(step.hw_cycles).count()) /
                              2};
              plan.gate = std::max(
                  plan.gate,
                  std::max(recs[pi].compute_start + stream_overhead,
                           recs[pi].compute_end - half + stream_overhead));
            } else {
              const auto it = delivery.find({pi, ci});
              sim_assert(it != delivery.end(),
                         "consumer ran before NoC delivery was recorded");
              plan.gate = std::max(
                  plan.gate, std::max(it->second, recs[pi].compute_end));
            }
          } else {
            // Fallback: producer wrote back over the bus (accounted on the
            // producer side); this instance fetches its share.
            const double share_p = design.instances[pi].work_share;
            plan.host_in +=
                scale_bytes(core::edge_volume(edge), share_p * share_c);
            plan.gate = std::max(plan.gate, recs[pi].done);
          }
        }
      }

      // Outputs: host-consumed (and unreachable kernel-consumed) bytes go
      // back over the bus.
      for (const prof::CommEdge& edge : graph.edges()) {
        if (edge.producer != step.function ||
            edge.producer == edge.consumer) {
          continue;
        }
        if (hw_set.count(edge.consumer) == 0) {
          plan.host_out += scale_bytes(core::edge_volume(edge), share_c);
          continue;
        }
        const auto shared_it =
            shared_by_fn.find({edge.producer, edge.consumer});
        if (shared_it != shared_by_fn.end() &&
            shared_it->second->producer_instance == ci) {
          continue;  // In place.
        }
        // Consumer instances not reachable via NoC force a bus write-back.
        const std::size_t cspec = [&] {
          for (std::size_t s = 0; s < schedule.specs.size(); ++s) {
            if (schedule.specs[s].function == edge.consumer) {
              return s;
            }
          }
          throw ConfigError{"consumer function has no spec"};
        }();
        for (const std::size_t ci2 : instances_of_spec.at(cspec)) {
          if (!noc_reachable(ci, ci2)) {
            const double share_c2 = design.instances[ci2].work_share;
            plan.host_out += scale_bytes(core::edge_volume(edge), share_c * share_c2);
          }
        }
      }

      plans.push_back(std::move(plan));
    }

    // ---- Phase A: first fetches. ----
    std::vector<Pending*> ops;
    for (Plan& plan : plans) {
      mem::Bram& bram = platform.bram(plan.instance);
      const Bytes first = plan.case1
                              ? Bytes{plan.host_in.count() / 2}
                              : plan.host_in;
      issue_dma(platform, plan.gate, bus::DmaDirection::kMemToLocal, first,
                bram, plan.fetch1);
      ops.push_back(&plan.fetch1);
    }
    wait_all(platform, ops);

    // ---- Phase B: second fetches (case 1) and compute-window timing. ----
    ops.clear();
    for (Plan& plan : plans) {
      if (plan.case1) {
        mem::Bram& bram = platform.bram(plan.instance);
        const Bytes second =
            Bytes{plan.host_in.count() - plan.host_in.count() / 2};
        issue_dma(platform, plan.fetch1.at, bus::DmaDirection::kMemToLocal,
                  second, bram, plan.fetch2);
        ops.push_back(&plan.fetch2);
      }
    }
    wait_all(platform, ops);

    for (Plan& plan : plans) {
      InstRec& rec = recs[plan.instance];
      const core::KernelInstance& inst = design.instances[plan.instance];
      Picoseconds tau =
          Picoseconds{static_cast<std::uint64_t>(static_cast<double>(
              kernel.span(step.hw_cycles).count()) * inst.work_share)};
      if (duplicated_specs.count(inst.spec_index) > 0) {
        tau += dup_overhead;
      }
      if (plan.case1) {
        tau += stream_overhead;
      }
      rec.tau_eff = tau;
      rec.gate = plan.gate;
      rec.compute_start = std::max(plan.fetch1.at, plan.gate);
      if (plan.case1) {
        // Second-half compute cannot finish before the second half of the
        // input arrived.
        rec.compute_end =
            std::max(rec.compute_start + tau,
                     plan.fetch2.at + Picoseconds{tau.count() / 2});
      } else {
        rec.compute_end = rec.compute_start + tau;
      }
    }

    // ---- Phase C: NoC sends (overlapped with compute) and write-backs. ----
    ops.clear();
    for (Plan& plan : plans) {
      InstRec& rec = recs[plan.instance];
      const std::size_t pi = plan.instance;
      const double share_p = design.instances[pi].work_share;

      // Sends to every NoC-reachable consumer instance.
      for (const prof::CommEdge& edge : graph.edges()) {
        if (edge.producer != step.function ||
            edge.producer == edge.consumer ||
            hw_set.count(edge.consumer) == 0) {
          continue;
        }
        const auto shared_it =
            shared_by_fn.find({edge.producer, edge.consumer});
        if (shared_it != shared_by_fn.end() &&
            shared_it->second->producer_instance == pi) {
          continue;
        }
        for (std::size_t s = 0; s < schedule.specs.size(); ++s) {
          if (schedule.specs[s].function != edge.consumer) {
            continue;
          }
          for (const std::size_t ci : instances_of_spec.at(s)) {
            if (!noc_reachable(pi, ci)) {
              continue;
            }
            const double share_c = design.instances[ci].work_share;
            const Bytes bytes = scale_bytes(core::edge_volume(edge), share_p * share_c);
            const std::uint32_t src =
                *platform.noc_node(pi, core::NocNodeKind::kKernel);
            const std::uint32_t dst =
                *platform.noc_node(ci, core::NocNodeKind::kLocalMemory);
            plan.sends.emplace_back();
            Pending& op = plan.sends.back();
            const Picoseconds when =
                std::max(rec.compute_start, platform.engine().now());
            auto key = std::make_pair(pi, ci);
            platform.engine().schedule_at(
                when, [network, src, dst, bytes, &op, &delivery, key] {
                  network->send(src, dst, bytes,
                                [&op, &delivery, key](std::uint64_t, Bytes,
                                                      Picoseconds at) {
                                  op.done = true;
                                  op.at = at;
                                  delivery[key] = at;
                                });
                });
          }
        }
      }

      // Write-backs of host-bound output.
      mem::Bram& bram = platform.bram(plan.instance);
      if (plan.case1) {
        const Bytes half1{plan.host_out.count() / 2};
        const Bytes half2{plan.host_out.count() - half1.count()};
        const Picoseconds wb1_at =
            std::max(rec.compute_start,
                     rec.compute_end - Picoseconds{rec.tau_eff.count() / 2});
        issue_dma(platform, wb1_at, bus::DmaDirection::kLocalToMem, half1,
                  bram, plan.wb1);
        issue_dma(platform, rec.compute_end, bus::DmaDirection::kLocalToMem,
                  half2, bram, plan.wb2);
        ops.push_back(&plan.wb1);
        ops.push_back(&plan.wb2);
      } else {
        issue_dma(platform, rec.compute_end, bus::DmaDirection::kLocalToMem,
                  plan.host_out, bram, plan.wb1);
        ops.push_back(&plan.wb1);
      }
      for (Pending& send : plan.sends) {
        ops.push_back(&send);
      }
    }
    wait_all(platform, ops);

    // ---- Close the group. ----
    // Duplicated instances run concurrently, so the group's kernel time is
    // wall-clock: compute attribution is the longest instance compute
    // window; everything else exposed within the group span is
    // communication.
    Picoseconds group_done{0};
    Picoseconds group_gate = Picoseconds{UINT64_MAX};
    Picoseconds group_compute_ps{0};
    for (Plan& plan : plans) {
      InstRec& rec = recs[plan.instance];
      rec.done = std::max(rec.compute_end, plan.wb1.at);
      if (plan.case1) {
        rec.done = std::max(rec.done, plan.wb2.at);
      }
      for (const Pending& send : plan.sends) {
        app_end = std::max(app_end, send.at);
      }
      group_done = std::max(group_done, rec.done);
      group_gate = std::min(group_gate, rec.gate);
      group_compute_ps = std::max(group_compute_ps, rec.tau_eff);
      executed[plan.instance] = true;
    }
    const double group_compute = group_compute_ps.seconds();
    const double group_comm = std::max(
        0.0, (group_done - group_gate).seconds() - group_compute);
    // The host cursor does not advance: kernels run decoupled from the
    // host (§IV-A3, "the NoC ensures the parallelism of the processing
    // elements"); downstream steps gate through their data dependencies.
    app_end = std::max(app_end, group_done);
    result.kernel_compute_seconds += group_compute;
    result.kernel_comm_seconds += group_comm;
    timing.compute_seconds = group_compute;
    timing.comm_seconds = group_comm;
    timing.start_seconds = group_gate.seconds();
    timing.done_seconds = group_done.seconds();
    result.steps.push_back(std::move(timing));
  }

  result.total_seconds = app_end.seconds();
  return result;
}

}  // namespace hybridic::sys
