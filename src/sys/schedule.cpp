#include "sys/schedule.hpp"

#include <cmath>
#include <map>

#include "util/error.hpp"

namespace hybridic::sys {

std::size_t AppSchedule::step_of(prof::FunctionId function) const {
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].function == function) {
      return i;
    }
  }
  throw ConfigError{"AppSchedule '" + app_name + "': no step for function id " +
                    std::to_string(function) + " (schedule has " +
                    std::to_string(steps.size()) +
                    " steps; was the schedule built from a different graph?)"};
}

AppSchedule build_schedule(std::string app_name,
                           const prof::CommGraph& graph,
                           const std::vector<CalibrationEntry>& calibration) {
  std::vector<prof::FunctionId> order(graph.function_count());
  for (prof::FunctionId id = 0; id < graph.function_count(); ++id) {
    order[id] = id;
  }
  return build_schedule(std::move(app_name), graph, calibration, order);
}

AppSchedule build_schedule(std::string app_name,
                           const prof::CommGraph& graph,
                           const std::vector<CalibrationEntry>& calibration,
                           const std::vector<prof::FunctionId>& order) {
  AppSchedule schedule;
  schedule.app_name = std::move(app_name);
  schedule.graph = &graph;

  std::map<std::string, const CalibrationEntry*> by_name;
  for (const CalibrationEntry& entry : calibration) {
    require(graph.has_function(entry.function),
            "calibration references unprofiled function: " + entry.function);
    by_name[entry.function] = &entry;
  }

  // Full step order: the supplied order first, then any profiled function
  // it omits (declared but never invoked).
  std::vector<prof::FunctionId> full_order;
  std::vector<bool> seen(graph.function_count(), false);
  for (const prof::FunctionId id : order) {
    require(id < graph.function_count(), "schedule order id out of range");
    require(!seen[id], "duplicate function in schedule order");
    seen[id] = true;
    full_order.push_back(id);
  }
  for (prof::FunctionId id = 0; id < graph.function_count(); ++id) {
    if (!seen[id]) {
      full_order.push_back(id);
    }
  }

  for (const prof::FunctionId id : full_order) {
    const prof::FunctionProfile& fn = graph.function(id);
    const auto it = by_name.find(fn.name);

    ScheduleStep step;
    step.name = fn.name;
    step.function = id;

    const double work = static_cast<double>(fn.work_units);
    const CalibrationEntry* cal = it != by_name.end() ? it->second : nullptr;
    const double host_cpw = cal != nullptr ? cal->host_cycles_per_work_unit
                                           : 4.0;
    step.sw_cycles = Cycles{
        static_cast<std::uint64_t>(std::llround(work * host_cpw))};

    if (cal != nullptr && cal->is_kernel) {
      step.is_kernel = true;
      step.hw_cycles = Cycles{static_cast<std::uint64_t>(
          std::llround(work * cal->kernel_cycles_per_work_unit))};
      core::KernelSpec spec;
      spec.name = fn.name;
      spec.function = id;
      spec.hw_compute_cycles = step.hw_cycles;
      spec.sw_compute_cycles = step.sw_cycles;
      spec.area_luts = cal->area_luts;
      spec.area_regs = cal->area_regs;
      spec.duplicable = cal->duplicable;
      spec.streaming = cal->streaming;
      step.spec_index = schedule.specs.size();
      schedule.specs.push_back(std::move(spec));
    }
    schedule.steps.push_back(std::move(step));
  }
  return schedule;
}

}  // namespace hybridic::sys
