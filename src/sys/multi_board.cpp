#include "sys/multi_board.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "faults/injector.hpp"
#include "sys/engine/models.hpp"
#include "sys/engine/policies.hpp"
#include "util/error.hpp"

namespace hybridic::sys {

namespace {

Picoseconds to_ps(double seconds) {
  // Model cursors are integer picoseconds; their .seconds() round-trips
  // exactly through this.
  return Picoseconds{static_cast<std::uint64_t>(seconds * 1e12 + 0.5)};
}

}  // namespace

std::vector<AppSchedule> board_schedules(
    const AppSchedule& schedule, const core::MultiBoardDesign& design) {
  const std::uint32_t boards = design.board_count();
  std::vector<AppSchedule> subs(boards);
  for (std::uint32_t b = 0; b < boards; ++b) {
    AppSchedule& sub = subs[b];
    sub.app_name = schedule.app_name + "/board" + std::to_string(b);
    sub.graph = design.board_graphs.at(b).get();
    sub.specs = design.board_kernels.at(b);
    std::map<prof::FunctionId, std::size_t> local_spec;
    for (std::size_t s = 0; s < sub.specs.size(); ++s) {
      local_spec[sub.specs[s].function] = s;
    }
    for (const ScheduleStep& step : schedule.steps) {
      const std::uint32_t owner =
          step.is_kernel ? design.partition.board_of(step.function) : 0U;
      if (owner != b) {
        continue;
      }
      ScheduleStep local = step;
      if (step.is_kernel) {
        const auto it = local_spec.find(step.function);
        require(it != local_spec.end(),
                "kernel step '" + step.name + "' has no spec on board " +
                    std::to_string(b));
        local.spec_index = it->second;
      }
      sub.steps.push_back(std::move(local));
    }
  }
  return subs;
}

MultiBoardRunResult run_designed_multi(const AppSchedule& schedule,
                                       const core::MultiBoardDesign& design,
                                       const MultiBoardConfig& config,
                                       std::string system_name) {
  require(schedule.graph != nullptr, "schedule has no profile graph");
  require(design.board_count() == config.board_count(),
          "design and platform disagree on board count");

  MultiBoardRunResult result;
  if (config.board_count() == 1) {
    // The provably-preserved degenerate path: the single-board executor,
    // bit for bit.
    result.run = run_designed(schedule, design.boards.at(0), config.board(0),
                              std::move(system_name));
    result.board_end_seconds = {result.run.total_seconds};
    return result;
  }

  const std::uint32_t boards = config.board_count();
  BoardNetwork net(boards, config.topology, config.link,
                   config.dead_board_links());
  const std::vector<AppSchedule> subs = board_schedules(schedule, design);

  engine::ExecTrace trace;  // Shared: all boards' events interleave here.
  engine::InterBoardLinkPolicy link(net, &trace);

  std::vector<std::unique_ptr<engine::ExecContext>> ctxs(boards);
  std::vector<std::unique_ptr<engine::EdgeRouter>> routers(boards);
  std::vector<std::unique_ptr<engine::DesignedModel>> models(boards);
  for (std::uint32_t b = 0; b < boards; ++b) {
    if (subs[b].steps.empty()) {
      continue;  // Idle board: no steps, no platform.
    }
    ctxs[b] = std::make_unique<engine::ExecContext>(
        subs[b], config.board(b), &design.boards.at(b));
    routers[b] = std::make_unique<engine::EdgeRouter>(*ctxs[b],
                                                      &design.boards.at(b));
    routers[b]->set_board_partition(&design.partition);
    models[b] = std::make_unique<engine::DesignedModel>(*ctxs[b], *routers[b],
                                                        &trace);
  }

  // Cut edges grouped by producer, walked when the producer finishes.
  std::map<prof::FunctionId, std::vector<const core::InterBoardEdge*>>
      cut_of_producer;
  for (const core::InterBoardEdge& edge : design.cut_edges) {
    cut_of_producer[edge.producer].push_back(&edge);
  }

  RunResult& run = result.run;
  run.system_name = std::move(system_name);
  std::set<prof::FunctionId> executed;
  std::map<prof::FunctionId, Picoseconds> arrivals;
  std::vector<std::size_t> local_index(boards, 0);
  double max_arrival_seconds = 0.0;

  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(schedule.steps.size()); ++i) {
    const ScheduleStep& step = schedule.steps[i];
    const std::uint32_t owner =
        step.is_kernel ? design.partition.board_of(step.function) : 0U;
    engine::DesignedModel& model = *models.at(owner);
    const ScheduleStep& local = subs[owner].steps[local_index[owner]++];

    // Gate this board on any inter-board arrival feeding the step.
    const auto arrival = arrivals.find(step.function);
    if (arrival != arrivals.end()) {
      model.lift_cursor(arrival->second);
    }

    // Global step index into the shared trace; board-local spec indices
    // into the board's own context.
    const engine::StepOutcome outcome = step.is_kernel
                                            ? model.kernel_step(i, local)
                                            : model.host_step(i, local);
    StepTiming timing;
    timing.name = step.name;
    timing.is_kernel = step.is_kernel;
    timing.start_seconds = outcome.start_seconds;
    timing.done_seconds = outcome.done_seconds;
    timing.compute_seconds = outcome.compute_seconds;
    timing.comm_seconds = outcome.comm_seconds;
    if (step.is_kernel) {
      run.kernel_compute_seconds += outcome.compute_seconds;
      run.kernel_comm_seconds += outcome.comm_seconds;
    } else {
      run.host_seconds += outcome.compute_seconds;
    }
    if (step.is_kernel || outcome.compute_seconds > 0.0) {
      trace.record({engine::EventKind::kCompute,
                    step.is_kernel ? engine::Fabric::kKernel
                                   : engine::Fabric::kHost,
                    i, 0, outcome.compute_start_seconds,
                    outcome.compute_start_seconds + outcome.compute_seconds,
                    step.name});
    }
    run.steps.push_back(std::move(timing));
    executed.insert(step.function);

    // Launch this step's cross-board transfers; forward consumers gate on
    // the arrival, backward (feedback) edges move bytes for the next
    // frame without gating anything — matching the single-board
    // executed_[] delivery semantics.
    const auto cut = cut_of_producer.find(step.function);
    if (cut == cut_of_producer.end()) {
      continue;
    }
    for (const core::InterBoardEdge* edge : cut->second) {
      const Picoseconds at =
          link.transfer(i, step.name, edge->producer_board,
                        edge->consumer_board, edge->bytes,
                        to_ps(outcome.done_seconds));
      max_arrival_seconds = std::max(max_arrival_seconds, at.seconds());
      if (executed.count(edge->consumer) == 0) {
        Picoseconds& slot = arrivals[edge->consumer];
        slot = std::max(slot, at);
      }
    }
  }

  result.board_end_seconds.assign(boards, 0.0);
  for (std::uint32_t b = 0; b < boards; ++b) {
    if (models[b] != nullptr) {
      result.board_end_seconds[b] = models[b]->total_seconds();
      run.total_seconds =
          std::max(run.total_seconds, result.board_end_seconds[b]);
    }
  }
  run.total_seconds = std::max(run.total_seconds, max_arrival_seconds);

  result.inter_board_transfers = link.transfers();
  result.inter_board_bytes = link.bytes_moved();
  result.board_link_reroutes = link.reroutes();
  result.inter_board_busy_seconds =
      trace.usage(engine::Fabric::kInterBoard).busy_seconds;

  // Fold per-board injected-fault counters (and the link reroutes) into
  // the one global result.
  for (std::uint32_t b = 0; b < boards; ++b) {
    if (ctxs[b] == nullptr) {
      continue;
    }
    if (const faults::FaultInjector* injector =
            ctxs[b]->platform().fault_injector()) {
      engine::append_fault_events(trace, *injector);
      const faults::FaultStats& stats = injector->stats();
      run.fault_stats.flits_corrupted += stats.flits_corrupted;
      run.fault_stats.packets_retransmitted += stats.packets_retransmitted;
      run.fault_stats.retransmit_give_ups += stats.retransmit_give_ups;
      run.fault_stats.messages_lost += stats.messages_lost;
      run.fault_stats.bus_errors += stats.bus_errors;
      run.fault_stats.bus_retries += stats.bus_retries;
      run.fault_stats.bus_stalls += stats.bus_stalls;
      run.fault_stats.mem_bitflips += stats.mem_bitflips;
      run.fault_stats.corrupted_bytes += stats.corrupted_bytes;
      run.fault_stats.degraded_edges += stats.degraded_edges;
      run.fault_stats.noc_reroutes += stats.noc_reroutes;
    }
  }
  run.fault_stats.board_link_reroutes = link.reroutes();
  run.trace = std::move(trace);
  return result;
}

}  // namespace hybridic::sys
