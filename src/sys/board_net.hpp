// BoardNetwork: the inter-board serial-link fabric of a multi-FPGA
// platform. Boards are connected chain / ring / near-square-mesh by
// point-to-point serial links with a configurable per-hop latency and
// bandwidth (the two parameters the HPCC b_eff benchmark measures).
// Routing is deterministic BFS shortest-path with lowest-board-id
// tie-break, aware of permanently dead links: on ring/mesh a dead link
// forces a detour (counted as a reroute); a topology the dead links
// disconnect is rejected up front as a ConfigError.
#pragma once

#include <cstdint>
#include <vector>

#include "core/board_partition.hpp"
#include "faults/fault_spec.hpp"
#include "util/units.hpp"

namespace hybridic::sys {

/// One point-to-point inter-board serial link, b_eff style: a transfer of
/// B bytes over one hop costs latency + B / bandwidth.
struct InterBoardLinkConfig {
  double latency_seconds = 1e-6;               ///< Per-hop link latency.
  double bandwidth_bytes_per_second = 1.25e9;  ///< ~10 Gbit/s serial link.
};

class BoardNetwork {
public:
  /// Throws ConfigError on zero boards, a dead link naming non-adjacent
  /// boards, or dead links that disconnect the topology.
  BoardNetwork(std::uint32_t board_count, core::BoardTopology topology,
               InterBoardLinkConfig link,
               const std::vector<faults::LinkDown>& dead_links = {});

  [[nodiscard]] std::uint32_t board_count() const { return board_count_; }
  [[nodiscard]] core::BoardTopology topology() const { return topology_; }
  [[nodiscard]] const InterBoardLinkConfig& link() const { return link_; }

  /// Topology neighbors of `board` (dead links removed), ascending.
  [[nodiscard]] const std::vector<std::uint32_t>& neighbors(
      std::uint32_t board) const;

  /// Shortest live path src -> dst as the sequence of boards visited
  /// (src first, dst last; src == dst yields {src}). Deterministic:
  /// BFS expanding lowest board id first. `rerouted`, when non-null, is
  /// set when the fault-free canonical path would have crossed a dead
  /// link (ring/mesh reroute-around-dead-link).
  [[nodiscard]] std::vector<std::uint32_t> route(std::uint32_t src,
                                                 std::uint32_t dst,
                                                 bool* rerouted = nullptr)
      const;

  /// Live hop count src -> dst (route().size() - 1).
  [[nodiscard]] std::uint32_t hop_count(std::uint32_t src,
                                        std::uint32_t dst) const;

  /// Store-and-forward transfer time over `hops` links:
  /// hops * (latency + bytes / bandwidth).
  [[nodiscard]] double transfer_seconds(Bytes bytes,
                                        std::uint32_t hops) const;

  /// Near-square mesh dimensions for `boards` (width >= height).
  [[nodiscard]] static std::pair<std::uint32_t, std::uint32_t> mesh_dims(
      std::uint32_t boards);

private:
  [[nodiscard]] std::vector<std::uint32_t> bfs_route(
      std::uint32_t src, std::uint32_t dst,
      const std::vector<std::vector<std::uint32_t>>& adjacency) const;

  std::uint32_t board_count_;
  core::BoardTopology topology_;
  InterBoardLinkConfig link_;
  std::vector<std::vector<std::uint32_t>> live_;      ///< Dead links removed.
  std::vector<std::vector<std::uint32_t>> pristine_;  ///< Full topology.
};

}  // namespace hybridic::sys
