// Executors: replay an application schedule on a platform variant and
// measure where the time goes. All variants are thin configurations of the
// shared execution engine (sys/engine/): a ScheduleWalker replays the
// schedule through a VariantModel whose data movement goes through
// FabricPolicy implementations, producing both the per-step timings and a
// structured ExecTrace.
//
//  - run_software: everything on the 400 MHz host (the paper's SW column).
//  - run_baseline: the conventional bus-based accelerator (§III-A): per
//    kernel invocation, DMA-in all input, compute, DMA-out all output,
//    strictly sequentially (Eq. 2 behaviour, but measured on the simulated
//    fabrics rather than assumed).
//  - run_designed: the proposed system (§IV): shared-local-memory pairs
//    move their bytes for free; kernel→kernel traffic travels the NoC
//    overlapped with producer compute; host traffic stays on the bus with
//    optional case-1 half-pipelining; case-2 streaming lets consumers start
//    early; duplicated instances run concurrently. The same executor also
//    runs the NoC-only comparison system (its DesignResult simply has no
//    shared pairs and naive mapping).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_result.hpp"
#include "faults/fault_spec.hpp"
#include "sys/engine/trace.hpp"
#include "sys/platform.hpp"
#include "sys/schedule.hpp"

namespace hybridic::sys {

/// Timing of one executed step (kernel steps only carry fabric phases).
struct StepTiming {
  std::string name;
  bool is_kernel = false;
  double start_seconds = 0.0;
  double done_seconds = 0.0;
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;  ///< Exposed (non-hidden) communication.
};

/// Result of one run.
struct RunResult {
  std::string system_name;
  double total_seconds = 0.0;
  double host_seconds = 0.0;            ///< Host SW functions.
  double kernel_compute_seconds = 0.0;  ///< Σ kernel compute.
  double kernel_comm_seconds = 0.0;     ///< Σ exposed kernel communication.
  std::vector<StepTiming> steps;

  /// Typed event log of the run (compute windows, DMA transfers, NoC
  /// messages, shared-memory handoffs, stalls).
  engine::ExecTrace trace;

  /// Injected-fault and recovery counters (all zero when the run's
  /// PlatformConfig described no faults).
  faults::FaultStats fault_stats{};

  /// Time attributable to the kernels (the paper's "kernels" rows).
  [[nodiscard]] double kernel_seconds() const {
    return kernel_compute_seconds + kernel_comm_seconds;
  }

  /// Per-fabric busy-time/byte attribution, derived from the trace.
  [[nodiscard]] const engine::FabricUsage& fabric_usage(
      engine::Fabric fabric) const {
    return trace.usage(fabric);
  }
};

/// Pure-software reference on the host.
[[nodiscard]] RunResult run_software(const AppSchedule& schedule,
                                     const PlatformConfig& config);

/// Conventional bus-based accelerator (the baseline system).
[[nodiscard]] RunResult run_baseline(const AppSchedule& schedule,
                                     PlatformConfig config);

/// A system with the given custom interconnect design (proposed or
/// NoC-only, depending on how the design was produced).
[[nodiscard]] RunResult run_designed(const AppSchedule& schedule,
                                     const core::DesignResult& design,
                                     PlatformConfig config,
                                     std::string system_name = "proposed");

}  // namespace hybridic::sys
