#include "sys/board_net.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <string>

#include "util/error.hpp"

namespace hybridic::sys {

namespace {

/// Undirected topology edges for `boards` boards.
std::vector<std::pair<std::uint32_t, std::uint32_t>> topology_links(
    std::uint32_t boards, core::BoardTopology topology) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> links;
  switch (topology) {
    case core::BoardTopology::kChain:
    case core::BoardTopology::kRing:
      for (std::uint32_t b = 0; b + 1 < boards; ++b) {
        links.push_back({b, b + 1});
      }
      // The wrap-around link only exists for rings of >= 3 boards (a
      // 2-board ring is the chain; a duplicate link adds nothing).
      if (topology == core::BoardTopology::kRing && boards >= 3) {
        links.push_back({0, boards - 1});
      }
      break;
    case core::BoardTopology::kMesh: {
      const auto [width, height] = BoardNetwork::mesh_dims(boards);
      (void)height;
      for (std::uint32_t b = 0; b < boards; ++b) {
        const std::uint32_t x = b % width;
        if (x + 1 < width && b + 1 < boards) {
          links.push_back({b, b + 1});
        }
        if (b + width < boards) {
          links.push_back({b, b + width});
        }
      }
      break;
    }
  }
  return links;
}

}  // namespace

std::pair<std::uint32_t, std::uint32_t> BoardNetwork::mesh_dims(
    std::uint32_t boards) {
  std::uint32_t width = 1;
  while (width * width < boards) {
    ++width;
  }
  const std::uint32_t height = (boards + width - 1) / width;
  return {width, height};
}

BoardNetwork::BoardNetwork(std::uint32_t board_count,
                           core::BoardTopology topology,
                           InterBoardLinkConfig link,
                           const std::vector<faults::LinkDown>& dead_links)
    : board_count_(board_count), topology_(topology), link_(link) {
  require(board_count >= 1, "board network needs at least one board");
  require(link.bandwidth_bytes_per_second > 0.0,
          "inter-board link bandwidth must be positive");
  require(link.latency_seconds >= 0.0,
          "inter-board link latency must be non-negative");

  pristine_.assign(board_count, {});
  live_.assign(board_count, {});
  const auto links = topology_links(board_count, topology);
  const auto is_dead = [&](std::uint32_t a, std::uint32_t b) {
    for (const faults::LinkDown& dead : dead_links) {
      if ((dead.a == a && dead.b == b) || (dead.a == b && dead.b == a)) {
        return true;
      }
    }
    return false;
  };
  for (const auto& [a, b] : links) {
    pristine_[a].push_back(b);
    pristine_[b].push_back(a);
    if (!is_dead(a, b)) {
      live_[a].push_back(b);
      live_[b].push_back(a);
    }
  }
  for (auto* adjacency : {&pristine_, &live_}) {
    for (auto& row : *adjacency) {
      std::sort(row.begin(), row.end());
    }
  }

  // Every dead link must name an actual topology link.
  for (const faults::LinkDown& dead : dead_links) {
    const bool exists =
        dead.a < board_count && dead.b < board_count &&
        std::find(pristine_[dead.a].begin(), pristine_[dead.a].end(),
                  dead.b) != pristine_[dead.a].end();
    require(exists, "dead board link " + std::to_string(dead.a) + "-" +
                        std::to_string(dead.b) + " is not a " +
                        std::string(core::to_string(topology)) +
                        " topology link for " + std::to_string(board_count) +
                        " boards");
  }

  // The surviving network must stay connected: a dead chain link (or any
  // cut set) has no detour and would black-hole inter-board traffic.
  std::vector<bool> reachable(board_count, false);
  std::deque<std::uint32_t> frontier{0};
  reachable[0] = true;
  while (!frontier.empty()) {
    const std::uint32_t b = frontier.front();
    frontier.pop_front();
    for (const std::uint32_t n : live_[b]) {
      if (!reachable[n]) {
        reachable[n] = true;
        frontier.push_back(n);
      }
    }
  }
  for (std::uint32_t b = 0; b < board_count; ++b) {
    require(reachable[b],
            "dead inter-board links disconnect board " + std::to_string(b) +
                " (" + std::string(core::to_string(topology)) +
                " topology has no detour)");
  }
}

const std::vector<std::uint32_t>& BoardNetwork::neighbors(
    std::uint32_t board) const {
  require(board < board_count_,
          "board " + std::to_string(board) + " out of range");
  return live_[board];
}

std::vector<std::uint32_t> BoardNetwork::bfs_route(
    std::uint32_t src, std::uint32_t dst,
    const std::vector<std::vector<std::uint32_t>>& adjacency) const {
  std::vector<std::uint32_t> parent(board_count_, board_count_);
  std::deque<std::uint32_t> frontier{src};
  parent[src] = src;
  while (!frontier.empty() && parent[dst] == board_count_) {
    const std::uint32_t b = frontier.front();
    frontier.pop_front();
    for (const std::uint32_t n : adjacency[b]) {  // Ascending: determinism.
      if (parent[n] == board_count_) {
        parent[n] = b;
        frontier.push_back(n);
      }
    }
  }
  std::vector<std::uint32_t> path;
  for (std::uint32_t b = dst; b != src; b = parent[b]) {
    path.push_back(b);
  }
  path.push_back(src);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::uint32_t> BoardNetwork::route(std::uint32_t src,
                                               std::uint32_t dst,
                                               bool* rerouted) const {
  require(src < board_count_ && dst < board_count_,
          "board route endpoint out of range");
  if (rerouted != nullptr) {
    *rerouted = false;
  }
  if (src == dst) {
    return {src};
  }
  const std::vector<std::uint32_t> live_path = bfs_route(src, dst, live_);
  if (rerouted != nullptr) {
    // Rerouted iff the canonical fault-free path crosses a dead link.
    const std::vector<std::uint32_t> canonical =
        bfs_route(src, dst, pristine_);
    for (std::size_t i = 0; i + 1 < canonical.size(); ++i) {
      const std::uint32_t a = canonical[i];
      const std::uint32_t b = canonical[i + 1];
      if (std::find(live_[a].begin(), live_[a].end(), b) == live_[a].end()) {
        *rerouted = true;
        break;
      }
    }
  }
  return live_path;
}

std::uint32_t BoardNetwork::hop_count(std::uint32_t src,
                                      std::uint32_t dst) const {
  return static_cast<std::uint32_t>(route(src, dst).size() - 1);
}

double BoardNetwork::transfer_seconds(Bytes bytes,
                                      std::uint32_t hops) const {
  return static_cast<double>(hops) *
         (link_.latency_seconds + static_cast<double>(bytes.count()) /
                                      link_.bandwidth_bytes_per_second);
}

}  // namespace hybridic::sys
