// Platform: an assembled accelerator system instance — host + SDRAM + PLB
// bus + per-kernel BRAM local memories, optionally extended with the custom
// interconnect (NoC + adapters, crossbars) a DesignResult describes.
//
// Clock rates default to the paper's ML510 setup: host 400 MHz, kernels and
// PLB 100 MHz, NoC routers 150 MHz.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bus/bus.hpp"
#include "bus/dma.hpp"
#include "core/board_partition.hpp"
#include "core/design_result.hpp"
#include "faults/fault_spec.hpp"
#include "faults/injector.hpp"
#include "mem/bram.hpp"
#include "mem/crossbar.hpp"
#include "mem/sdram.hpp"
#include "noc/network.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"
#include "sys/board_net.hpp"

namespace hybridic::sys {

/// Platform-wide configuration.
struct PlatformConfig {
  Frequency host_clock = Frequency::megahertz(400);
  Frequency kernel_clock = Frequency::megahertz(100);
  Frequency bus_clock = Frequency::megahertz(100);
  Frequency noc_clock = Frequency::megahertz(150);

  /// ML510-era PLB behaviour: 32-bit data path, single-beat transfers (the
  /// DWARV-generated CCUs of the paper's platform do not burst), giving an
  /// effective ~10 ns/byte — which is what makes kernel communication the
  /// dominant cost the paper sets out to attack.
  bus::BusConfig bus{4, 1, Cycles{2}, Cycles{1}, 2};
  bus::DmaConfig dma{Cycles{50}, 1024};
  mem::SdramConfig sdram;
  noc::NetworkConfig noc;

  Bytes bram_capacity{64 * 1024};
  std::uint32_t bram_port_width_bytes = 4;

  /// Streaming/duplication overheads (the O terms of §IV-A3); must match
  /// what the design algorithm assumed.
  double stream_overhead_seconds = 15e-6;
  double duplication_overhead_seconds = 30e-6;

  /// Fault-injection campaign for this run; defaults to no faults, in which
  /// case the platform builds no injector and every fault hook stays null.
  faults::FaultSpec faults;

  /// Watchdog for wait_all: a run whose simulated time would exceed this is
  /// aborted with a structured SimTimeoutError naming the stuck ops.
  /// Fault-free runs finish in simulated milliseconds, so the default is
  /// far off the hot path.
  double watchdog_seconds = 10.0;
};

/// A multi-FPGA platform: N per-board PlatformConfigs joined by an
/// inter-board serial-link network (chain / ring / mesh of point-to-point
/// links, b_eff style). The host CPU lives on board 0. board_count() == 1
/// degenerates to the plain single-board platform: every multi-board
/// entry point then delegates verbatim to the single-board code path.
struct MultiBoardConfig {
  std::vector<PlatformConfig> boards{PlatformConfig{}};
  core::BoardTopology topology = core::BoardTopology::kChain;
  InterBoardLinkConfig link;
  /// Seed for the level-one board partition (deterministic tie-breaks).
  std::uint64_t partition_seed = 1;

  [[nodiscard]] std::uint32_t board_count() const {
    return static_cast<std::uint32_t>(boards.size());
  }
  [[nodiscard]] const PlatformConfig& board(std::uint32_t b) const {
    return boards.at(b);
  }
  /// Dead inter-board links travel in the per-board fault spec (board 0
  /// holds the authoritative copy — uniform() replicates one config).
  [[nodiscard]] const std::vector<faults::LinkDown>& dead_board_links()
      const {
    return boards.at(0).faults.dead_board_links;
  }

  /// N identical boards built from `base`.
  [[nodiscard]] static MultiBoardConfig uniform(
      std::uint32_t board_count, const PlatformConfig& base = {},
      core::BoardTopology topology = core::BoardTopology::kChain) {
    MultiBoardConfig config;
    config.boards.assign(board_count, base);
    config.topology = topology;
    return config;
  }
};

/// A runnable platform for one application design. Owns the engine.
class Platform {
public:
  /// Build a platform hosting `instance_count` kernels. If `design` is
  /// non-null and has a NoC plan, the mesh network and adapters are
  /// instantiated per the plan.
  Platform(PlatformConfig config, std::size_t instance_count,
           const core::DesignResult* design);

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const sim::ClockDomain& host_clock() const { return host_; }
  [[nodiscard]] const sim::ClockDomain& kernel_clock() const {
    return kernel_;
  }
  [[nodiscard]] bus::Bus& bus() { return *bus_; }
  [[nodiscard]] bus::Dma& dma() { return *dma_; }
  [[nodiscard]] mem::Sdram& sdram() { return *sdram_; }
  [[nodiscard]] mem::Bram& bram(std::size_t instance);
  [[nodiscard]] noc::Network* network() { return network_.get(); }

  /// Mesh node of an instance's kernel / memory attachment, if on the NoC.
  [[nodiscard]] std::optional<std::uint32_t> noc_node(
      std::size_t instance, core::NocNodeKind kind) const;

  /// Measured average seconds/byte of the bus for a reference transfer —
  /// the θ the design algorithm consumes.
  [[nodiscard]] double measured_theta(Bytes reference = Bytes{4096}) const;

  [[nodiscard]] const PlatformConfig& config() const { return config_; }

  /// The fault injector, or null when the config describes no faults.
  [[nodiscard]] faults::FaultInjector* fault_injector() {
    return injector_.get();
  }
  [[nodiscard]] const faults::FaultInjector* fault_injector() const {
    return injector_.get();
  }

private:
  PlatformConfig config_;
  sim::Engine engine_;
  sim::ClockDomain host_;
  sim::ClockDomain kernel_;
  sim::ClockDomain bus_clock_;
  sim::ClockDomain noc_clock_;

  std::unique_ptr<mem::Sdram> sdram_;
  std::unique_ptr<bus::Bus> bus_;
  std::unique_ptr<bus::Dma> dma_;
  std::vector<std::unique_ptr<mem::Bram>> brams_;
  std::unique_ptr<noc::Network> network_;
  std::map<std::pair<std::size_t, core::NocNodeKind>, std::uint32_t>
      noc_nodes_;
  std::unique_ptr<faults::FaultInjector> injector_;
};

}  // namespace hybridic::sys
