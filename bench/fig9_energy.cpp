// Figure 9: energy consumption of the proposed system normalized to the
// baseline system (power x simulated execution time).
#include <iostream>

#include "bench/bench_common.hpp"

int main() {
  using namespace hybridic;
  const auto experiments = bench::run_all_experiments();

  Table table{"Figure 9 — energy normalized to the baseline system"};
  table.set_header({"app", "base power", "ours power", "base time",
                    "ours time", "energy ratio", "saving"});
  CsvWriter csv{bench::csv_path("fig9_energy"),
                {"app", "baseline_power_w", "proposed_power_w",
                 "baseline_seconds", "proposed_seconds", "energy_ratio"}};

  double max_saving = 0.0;
  std::string max_saving_app;
  for (const auto& name : apps::paper_app_names()) {
    const sys::AppExperiment& exp = experiments.at(name);
    const double ratio = exp.energy_ratio_vs_baseline();
    if (1.0 - ratio > max_saving) {
      max_saving = 1.0 - ratio;
      max_saving_app = name;
    }
    table.add_row({name,
                   format_fixed(exp.baseline_power_watts, 3) + " W",
                   format_fixed(exp.proposed_power_watts, 3) + " W",
                   format_fixed(exp.baseline.total_seconds * 1e3, 3) + " ms",
                   format_fixed(exp.proposed.total_seconds * 1e3, 3) + " ms",
                   format_fixed(ratio, 3), format_percent(1.0 - ratio)});
    csv.add_row({name, format_fixed(exp.baseline_power_watts, 4),
                 format_fixed(exp.proposed_power_watts, 4),
                 format_fixed(exp.baseline.total_seconds, 6),
                 format_fixed(exp.proposed.total_seconds, 6),
                 format_fixed(ratio, 4)});
  }
  table.render(std::cout);
  std::cout << "max energy saving: " << format_percent(max_saving) << " on "
            << max_saving_app << "  (paper: 66.5% on jpeg)\n";
  std::cout << "power is nearly identical between systems (minor increase "
               "for the custom interconnect), so savings track execution "
               "time — the paper's mechanism\n";
  return 0;
}
