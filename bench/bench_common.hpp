// Shared support for the paper-reproduction bench binaries: runs the full
// pipeline for the four applications and carries the paper's published
// numbers so every report prints paper-vs-measured side by side.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "apps/profile_cache.hpp"
#include "sys/batch_runner.hpp"
#include "sys/experiment.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace hybridic::bench {

/// Command-line options shared by the batch-runner-based benches.
struct BenchOptions {
  std::size_t threads = 0;  ///< 0 = hardware concurrency.
  bool trace = false;       ///< Export Chrome-trace JSON per app run.
};

/// Parse `--threads N` (also accepts `--threads=N`) and `--trace`.
/// Unknown arguments abort with usage — the benches take nothing else.
inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--trace") {
      options.trace = true;
      continue;
    }
    if (arg == "--threads" && i + 1 < argc) {
      value = argv[++i];
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(std::string("--threads=").size());
    } else {
      std::cerr << "usage: " << argv[0] << " [--threads N] [--trace]\n";
      std::exit(2);
    }
    options.threads = static_cast<std::size_t>(std::stoul(value));
  }
  return options;
}

/// Paper-published reference numbers (Fig. 4, Table III, Table IV, Fig. 9).
struct PaperReference {
  // Table III.
  double proposed_app_vs_sw;
  double proposed_kernel_vs_sw;
  double proposed_app_vs_baseline;
  double proposed_kernel_vs_baseline;
  // Derived from Table III (baseline = proposed_vs_sw / proposed_vs_base).
  double baseline_app_vs_sw;
  double baseline_kernel_vs_sw;
  // Table IV.
  std::uint64_t baseline_luts, baseline_regs;
  std::uint64_t ours_luts, ours_regs;
  std::uint64_t noc_only_luts, noc_only_regs;
  std::string solution;
};

inline const std::map<std::string, PaperReference>& paper_reference() {
  static const std::map<std::string, PaperReference> kRef{
      {"canny",
       {3.15, 3.88, 1.83, 2.12, 3.15 / 1.83, 3.88 / 2.12, 9926, 12707,
        15227, 18657, 17894, 21059, "NoC, SM, P"}},
      {"jpeg",
       {2.33, 2.50, 2.87, 3.08, 2.33 / 2.87, 2.50 / 3.08, 11755, 11910,
        20837, 20900, 23180, 23188, "NoC, SM, P"}},
      {"klt",
       {3.72, 6.58, 1.26, 1.55, 3.72 / 1.26, 6.58 / 1.55, 4721, 5430, 4921,
        5631, 7358, 8070, "SM"}},
      {"fluid",
       {1.66, 1.68, 1.59, 1.60, 1.66 / 1.59, 1.68 / 1.60, 19125, 28793,
        24156, 36100, 24552, 36110, "NoC"}},
  };
  return kRef;
}

/// Profile + design + simulate all four paper applications on the batch
/// runner — one job per app, profiles served by `cache`. Deterministic:
/// the result map is keyed and every job is isolated, so the outcome is
/// bit-identical at any thread count.
inline std::map<std::string, sys::AppExperiment> run_all_experiments(
    apps::ProfileCache& cache, sys::BatchRunner& runner) {
  const std::vector<std::string> names = apps::paper_app_names();
  std::vector<sys::BatchRunner::Job<sys::AppExperiment>> jobs;
  jobs.reserve(names.size());
  for (const std::string& name : names) {
    jobs.push_back(
        {"experiment/" + name, [&cache, name](sys::JobContext&) {
           const std::shared_ptr<const apps::ProfiledApp> app =
               cache.paper_app(name);
           if (!app->verified) {
             throw ConfigError{"application self-verification failed: " +
                               name + " (" + app->verification_note + ")"};
           }
           return sys::run_experiment(app->schedule(),
                                      sys::PlatformConfig{},
                                      app->environment);
         }});
  }
  std::vector<sys::AppExperiment> results = runner.run(std::move(jobs));
  std::map<std::string, sys::AppExperiment> experiments;
  for (std::size_t i = 0; i < names.size(); ++i) {
    experiments.emplace(names[i], std::move(results[i]));
  }
  return experiments;
}

/// Profile each distinct app once, concurrently, before a cold batch.
/// Campaign batches are typically submitted app-major (every job for app A
/// before any job for app B), so a cold run convoys: the first N workers
/// all want app A, one computes its profile and N-1 block on the in-flight
/// future (ProfileCache::convoy_waits()) while the other apps' profiles
/// sit unstarted. One tiny batch with one job per distinct app makes the
/// misses proceed concurrently without reordering the main batch (and
/// therefore without touching its CSV/report output order).
inline void prewarm_profiles(apps::ProfileCache& cache,
                             sys::BatchRunner& runner,
                             const std::vector<std::string>& names) {
  std::vector<sys::BatchRunner::Job<int>> jobs;
  jobs.reserve(names.size());
  for (const std::string& name : names) {
    jobs.push_back({"prewarm/" + name, [&cache, name](sys::JobContext&) {
                      (void)cache.paper_app(name);
                      return 0;
                    }});
  }
  (void)runner.run(std::move(jobs));
}

/// Convenience overload for benches that don't need to reuse the cache or
/// inspect batch metrics.
inline std::map<std::string, sys::AppExperiment> run_all_experiments(
    std::size_t threads = 0) {
  apps::ProfileCache cache;
  sys::BatchRunner runner{threads};
  return run_all_experiments(cache, runner);
}

/// One-line batch metrics summary for a bench's stdout (never written into
/// table/CSV/JSON outputs, which must stay byte-identical across thread
/// counts).
inline void print_batch_metrics(const sys::BatchRunner& runner,
                                const apps::ProfileCache& cache) {
  const sys::BatchReport& report = runner.last_report();
  std::cout << "[batch] threads=" << report.thread_count
            << " jobs=" << report.jobs.size()
            << " wall=" << report.wall_seconds
            << "s cpu=" << report.total_job_seconds()
            << "s steals=" << report.steals
            << " profile-cache hits=" << cache.hits() << "/"
            << (cache.hits() + cache.misses())
            << " convoy-waits=" << cache.convoy_waits() << "\n";
}

/// Where CSV copies of each table/figure land (./bench_results/).
inline std::string csv_path(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  return "bench_results/" + name + ".csv";
}

/// Replace (or append) one marker-delimited section of
/// bench_results/REPORT.md: everything from `marker` to the end of file is
/// replaced by `section`, so campaign sections re-run idempotently after
/// report_all has written the main report.
inline void patch_report_section(const std::string& marker,
                                 const std::string& section) {
  const std::string path = "bench_results/REPORT.md";
  std::string existing;
  {
    std::ifstream in{path};
    std::stringstream buffer;
    buffer << in.rdbuf();
    existing = buffer.str();
  }
  const std::size_t at = existing.find(marker);
  if (at != std::string::npos) {
    existing.erase(at);
  }
  while (!existing.empty() && existing.back() == '\n') {
    existing.pop_back();
  }
  if (!existing.empty()) {
    existing += "\n\n";
  }
  std::ofstream out{path};
  out << existing << section;
}

}  // namespace hybridic::bench
