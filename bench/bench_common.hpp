// Shared support for the paper-reproduction bench binaries: runs the full
// pipeline for the four applications and carries the paper's published
// numbers so every report prints paper-vs-measured side by side.
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "sys/experiment.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace hybridic::bench {

/// Paper-published reference numbers (Fig. 4, Table III, Table IV, Fig. 9).
struct PaperReference {
  // Table III.
  double proposed_app_vs_sw;
  double proposed_kernel_vs_sw;
  double proposed_app_vs_baseline;
  double proposed_kernel_vs_baseline;
  // Derived from Table III (baseline = proposed_vs_sw / proposed_vs_base).
  double baseline_app_vs_sw;
  double baseline_kernel_vs_sw;
  // Table IV.
  std::uint64_t baseline_luts, baseline_regs;
  std::uint64_t ours_luts, ours_regs;
  std::uint64_t noc_only_luts, noc_only_regs;
  std::string solution;
};

inline const std::map<std::string, PaperReference>& paper_reference() {
  static const std::map<std::string, PaperReference> kRef{
      {"canny",
       {3.15, 3.88, 1.83, 2.12, 3.15 / 1.83, 3.88 / 2.12, 9926, 12707,
        15227, 18657, 17894, 21059, "NoC, SM, P"}},
      {"jpeg",
       {2.33, 2.50, 2.87, 3.08, 2.33 / 2.87, 2.50 / 3.08, 11755, 11910,
        20837, 20900, 23180, 23188, "NoC, SM, P"}},
      {"klt",
       {3.72, 6.58, 1.26, 1.55, 3.72 / 1.26, 6.58 / 1.55, 4721, 5430, 4921,
        5631, 7358, 8070, "SM"}},
      {"fluid",
       {1.66, 1.68, 1.59, 1.60, 1.66 / 1.59, 1.68 / 1.60, 19125, 28793,
        24156, 36100, 24552, 36110, "NoC"}},
  };
  return kRef;
}

/// Profile + design + simulate all four paper applications (deterministic;
/// takes a few seconds).
inline std::map<std::string, sys::AppExperiment> run_all_experiments() {
  std::map<std::string, sys::AppExperiment> experiments;
  for (const auto& name : apps::paper_app_names()) {
    const apps::ProfiledApp app = apps::run_paper_app(name);
    if (!app.verified) {
      throw ConfigError{"application self-verification failed: " + name +
                        " (" + app.verification_note + ")"};
    }
    experiments.emplace(name,
                        sys::run_experiment(app.schedule(),
                                            sys::PlatformConfig{},
                                            app.environment));
  }
  return experiments;
}

/// Where CSV copies of each table/figure land (./bench_results/).
inline std::string csv_path(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  return "bench_results/" + name + ".csv";
}

}  // namespace hybridic::bench
