// Figure 8: resources used by the custom interconnect, normalized to the
// resources used by the kernels (computing) in the proposed system.
#include <iostream>

#include "bench/bench_common.hpp"

int main() {
  using namespace hybridic;
  const auto experiments = bench::run_all_experiments();

  Table table{
      "Figure 8 — interconnect resources normalized to kernel resources"};
  table.set_header({"app", "interconnect L/R", "kernels L/R", "LUT ratio",
                    "reg ratio"});
  CsvWriter csv{bench::csv_path("fig8_interconnect_ratio"),
                {"app", "lut_ratio", "reg_ratio"}};

  double max_ratio = 0.0;
  for (const auto& name : apps::paper_app_names()) {
    const sys::AppExperiment& exp = experiments.at(name);
    const double lut_ratio =
        static_cast<double>(exp.interconnect_area.luts) /
        static_cast<double>(exp.kernel_area.luts);
    const double reg_ratio =
        static_cast<double>(exp.interconnect_area.regs) /
        static_cast<double>(exp.kernel_area.regs);
    max_ratio = std::max(max_ratio, lut_ratio);
    table.add_row({name,
                   std::to_string(exp.interconnect_area.luts) + "/" +
                       std::to_string(exp.interconnect_area.regs),
                   std::to_string(exp.kernel_area.luts) + "/" +
                       std::to_string(exp.kernel_area.regs),
                   format_percent(lut_ratio), format_percent(reg_ratio)});
    csv.add_row({name, format_fixed(lut_ratio, 4),
                 format_fixed(reg_ratio, 4)});
  }
  table.render(std::cout);
  std::cout << "max interconnect/kernels ratio: "
            << format_percent(max_ratio) << "  (paper: at most 40.7%)\n";
  return 0;
}
