// Extension bench: multi-frame throughput. The paper's interconnect hides
// kernel-to-kernel communication inside one invocation; over a stream of
// frames it additionally enables software pipelining across frames. This
// bench reports latency vs throughput for the streaming applications.
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/interconnect_design.hpp"
#include "sys/pipeline_executor.hpp"

int main() {
  using namespace hybridic;
  const sys::PlatformConfig platform;

  Table table{"Multi-frame throughput (64 frames)"};
  table.set_header({"app", "1-frame latency", "baseline 64f", "pipelined "
                    "64f", "throughput", "speedup vs serial",
                    "bottleneck"});
  CsvWriter csv{bench::csv_path("ext_frame_pipeline"),
                {"app", "latency_s", "baseline_makespan_s",
                 "pipelined_makespan_s", "throughput_fps", "bottleneck"}};

  for (const auto& name : apps::paper_app_names()) {
    const apps::ProfiledApp app = apps::run_paper_app(name);
    const sys::AppSchedule schedule = app.schedule();
    const core::DesignResult design = core::design_interconnect(
        sys::make_design_input(schedule, platform));
    constexpr std::uint32_t kFrames = 64;
    const sys::PipelineResult pipelined =
        sys::run_designed_pipelined(schedule, design, platform, kFrames);
    const sys::PipelineResult baseline =
        sys::run_baseline_frames(schedule, platform, kFrames);
    const double serial =
        pipelined.first_frame_seconds * kFrames;  // proposed, unpipelined
    table.add_row(
        {name,
         format_fixed(pipelined.first_frame_seconds * 1e3, 3) + " ms",
         format_fixed(baseline.makespan_seconds * 1e3, 1) + " ms",
         format_fixed(pipelined.makespan_seconds * 1e3, 1) + " ms",
         format_fixed(pipelined.throughput_fps(), 0) + " fps",
         format_ratio(serial / pipelined.makespan_seconds),
         pipelined.bottleneck_stage});
    csv.add_row({name, format_fixed(pipelined.first_frame_seconds, 6),
                 format_fixed(baseline.makespan_seconds, 6),
                 format_fixed(pipelined.makespan_seconds, 6),
                 format_fixed(pipelined.throughput_fps(), 2),
                 pipelined.bottleneck_stage});
  }
  table.render(std::cout);

  std::cout << "\nframe-count scaling (canny):\n";
  {
    const apps::ProfiledApp app = apps::run_paper_app("canny");
    const sys::AppSchedule schedule = app.schedule();
    const core::DesignResult design = core::design_interconnect(
        sys::make_design_input(schedule, platform));
    Table scaling{""};
    scaling.set_header({"frames", "makespan ms", "throughput fps"});
    for (const std::uint32_t frames : {1U, 4U, 16U, 64U, 256U}) {
      const sys::PipelineResult r =
          sys::run_designed_pipelined(schedule, design, platform, frames);
      scaling.add_row({std::to_string(frames),
                       format_fixed(r.makespan_seconds * 1e3, 2),
                       format_fixed(r.throughput_fps(), 1)});
    }
    scaling.render(std::cout);
  }
  std::cout << "takeaway: with the hybrid interconnect the pipeline "
               "reaches the bottleneck-stage bound; the bus-based "
               "baseline cannot overlap frames at all\n";
  return 0;
}
