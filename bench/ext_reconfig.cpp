// Extension bench (paper §VI future work): runtime-reconfigurable
// interconnects for multi-application workloads. Compares bus-only,
// a static union fabric, and per-application partial reconfiguration on
// grouped and alternating schedules of the four paper applications.
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "reconfig/multi_app.hpp"
#include "sys/timeline.hpp"

int main() {
  using namespace hybridic;

  // Profile all four applications once; keep them alive for the run.
  std::vector<apps::ProfiledApp> apps_store;
  std::vector<sys::AppSchedule> schedules;
  for (const auto& name : apps::paper_app_names()) {
    apps_store.push_back(apps::run_paper_app(name));
    schedules.push_back(apps_store.back().schedule());
  }

  const auto make_phases = [&](bool grouped, std::uint32_t frames) {
    std::vector<reconfig::WorkloadPhase> phases;
    if (grouped) {
      for (std::size_t i = 0; i < schedules.size(); ++i) {
        phases.push_back(reconfig::WorkloadPhase{
            apps_store[i].name, &schedules[i], frames});
      }
    } else {
      for (std::uint32_t f = 0; f < frames; ++f) {
        for (std::size_t i = 0; i < schedules.size(); ++i) {
          phases.push_back(reconfig::WorkloadPhase{
              apps_store[i].name, &schedules[i], 1});
        }
      }
    }
    return phases;
  };

  const sys::PlatformConfig platform;
  for (const bool grouped : {true, false}) {
    const auto phases = make_phases(grouped, 10);
    Table table{std::string{"Multi-application workload, "} +
                (grouped ? "grouped (canny x10, jpeg x10, ...)"
                         : "alternating (canny, jpeg, klt, fluid) x10")};
    table.set_header({"strategy", "compute", "reconfig", "total",
                      "interconnect area (LUTs/regs)"});
    CsvWriter csv{bench::csv_path(std::string{"ext_reconfig_"} +
                                  (grouped ? "grouped" : "alternating")),
                  {"strategy", "compute_s", "reconfig_s", "total_s",
                   "area_luts", "area_regs"}};
    for (const reconfig::Strategy strategy :
         {reconfig::Strategy::kBusOnly, reconfig::Strategy::kStaticUnion,
          reconfig::Strategy::kPerAppReconfig}) {
      const reconfig::ScenarioResult result =
          reconfig::evaluate_scenario(phases, strategy, platform);
      table.add_row(
          {reconfig::to_string(strategy),
           format_fixed(result.compute_total_seconds * 1e3, 2) + " ms",
           format_fixed(result.reconfig_total_seconds * 1e3, 2) + " ms",
           format_fixed(result.total_seconds() * 1e3, 2) + " ms",
           std::to_string(result.provisioned_interconnect.luts) + "/" +
               std::to_string(result.provisioned_interconnect.regs)});
      csv.add_row({reconfig::to_string(strategy),
                   format_fixed(result.compute_total_seconds, 6),
                   format_fixed(result.reconfig_total_seconds, 6),
                   format_fixed(result.total_seconds(), 6),
                   std::to_string(result.provisioned_interconnect.luts),
                   std::to_string(result.provisioned_interconnect.regs)});
    }
    table.render(std::cout);
    std::cout << "\n";
  }
  std::cout
      << "takeaway: per-app reconfiguration gets the static union's "
         "performance at a fraction of its interconnect area whenever "
         "phases repeat long enough to amortize the ICAP swap; rapid "
         "alternation favours the static union — quantifying the trade "
         "the paper's conclusion points to\n";

  // Bonus: show where the time goes inside one jpeg iteration.
  const core::DesignInput input =
      sys::make_design_input(schedules[1], platform);
  const core::DesignResult design = core::design_interconnect(input);
  const sys::RunResult run =
      sys::run_designed(schedules[1], design, platform);
  std::cout << "\n" << sys::render_timeline(run);
  return 0;
}
