// Ablation: the adaptive mapping function (Table I) and the shared-local-
// memory step vs the naive "attach everything to the NoC" strategy —
// routers/adapters instantiated, interconnect area, and measured runtime,
// across the four paper applications and a set of synthetic shapes.
//
// Each (app, strategy-pair) evaluation is one batch-runner job; profiles
// come from the cache and rows are emitted in submission order, so the
// table and CSV are byte-identical at any --threads value.
#include <iostream>

#include "apps/synthetic.hpp"
#include "bench/bench_common.hpp"
#include "core/interconnect_design.hpp"

namespace {

using namespace hybridic;

struct Row {
  std::string app;
  std::uint32_t adaptive_routers = 0;
  std::uint32_t naive_routers = 0;
  core::Resources adaptive_area;
  core::Resources naive_area;
  double adaptive_seconds = 0.0;
  double naive_seconds = 0.0;
};

Row evaluate(const std::string& name, const sys::AppSchedule& schedule) {
  const sys::PlatformConfig config;
  core::DesignInput input = sys::make_design_input(schedule, config);
  const core::DesignResult adaptive = core::design_interconnect(input);

  core::DesignInput naive_input = input;
  naive_input.enable_shared_memory = false;
  naive_input.enable_adaptive_mapping = false;
  const core::DesignResult naive = core::design_interconnect(naive_input);

  Row row;
  row.app = name;
  row.adaptive_routers =
      adaptive.uses_noc() ? adaptive.noc->router_count() : 0;
  row.naive_routers = naive.uses_noc() ? naive.noc->router_count() : 0;
  row.adaptive_area = core::interconnect_resources(adaptive);
  row.naive_area = core::interconnect_resources(naive);
  row.adaptive_seconds =
      sys::run_designed(schedule, adaptive, config).total_seconds;
  row.naive_seconds =
      sys::run_designed(schedule, naive, config).total_seconds;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  apps::ProfileCache cache;
  sys::BatchRunner runner{options.threads};

  Table table{
      "Ablation — adaptive mapping + shared memory vs naive NoC-everything"};
  table.set_header({"app", "routers (adaptive)", "routers (naive)",
                    "interconnect LUTs (adaptive)", "(naive)",
                    "time (adaptive)", "(naive)"});
  CsvWriter csv{bench::csv_path("ablation_mapping"),
                {"app", "adaptive_routers", "naive_routers",
                 "adaptive_luts", "naive_luts", "adaptive_seconds",
                 "naive_seconds"}};

  std::vector<sys::BatchRunner::Job<Row>> jobs;
  for (const auto& name : apps::paper_app_names()) {
    jobs.push_back({"ablation-mapping/" + name,
                    [&cache, name](sys::JobContext&) {
                      const auto app = cache.paper_app(name);
                      return evaluate(name, app->schedule());
                    }});
  }
  for (const std::uint64_t seed : {101ULL, 202ULL, 303ULL}) {
    apps::SyntheticConfig config;
    config.seed = seed;
    config.kernel_count = 8;
    jobs.push_back({"ablation-mapping/" +
                        apps::ProfileCache::synthetic_key(config),
                    [&cache, config](sys::JobContext&) {
                      const auto app = cache.synthetic_app(config);
                      return evaluate(app->name, app->schedule());
                    }});
  }
  const std::vector<Row> rows = runner.run(std::move(jobs));

  for (const Row& row : rows) {
    table.add_row({row.app, std::to_string(row.adaptive_routers),
                   std::to_string(row.naive_routers),
                   std::to_string(row.adaptive_area.luts),
                   std::to_string(row.naive_area.luts),
                   format_fixed(row.adaptive_seconds * 1e3, 3) + " ms",
                   format_fixed(row.naive_seconds * 1e3, 3) + " ms"});
    csv.add_row({row.app, std::to_string(row.adaptive_routers),
                 std::to_string(row.naive_routers),
                 std::to_string(row.adaptive_area.luts),
                 std::to_string(row.naive_area.luts),
                 format_fixed(row.adaptive_seconds, 6),
                 format_fixed(row.naive_seconds, 6)});
  }
  table.render(std::cout);
  std::cout << "takeaway: the adaptive strategy keeps performance "
               "(time within a few percent of naive) while instantiating "
               "fewer routers and adapters — the paper's Table IV claim\n";
  bench::print_batch_metrics(runner, cache);
  return 0;
}
