// Figure 4: speed-up of the baseline (bus-based) accelerator over pure
// software, and the ratio of kernel communication time to computation time.
#include <iostream>

#include "bench/bench_common.hpp"

int main() {
  using namespace hybridic;
  const auto experiments = bench::run_all_experiments();

  Table table{"Figure 4 — baseline vs SW speed-up and comm/comp ratio"};
  table.set_header({"app", "app speed-up", "(paper)", "kernel speed-up",
                    "(paper)", "comm/comp", "(paper)"});
  CsvWriter csv{bench::csv_path("fig4_baseline"),
                {"app", "app_speedup", "kernel_speedup", "comm_comp"}};

  for (const auto& [name, exp] : experiments) {
    const bench::PaperReference& ref = bench::paper_reference().at(name);
    const double app_speedup = exp.baseline_app_speedup_vs_sw();
    const double kernel_speedup = exp.baseline_kernel_speedup_vs_sw();
    const double ratio = exp.baseline_comm_comp_ratio();
    table.add_row({name, format_ratio(app_speedup),
                   format_ratio(ref.baseline_app_vs_sw),
                   format_ratio(kernel_speedup),
                   format_ratio(ref.baseline_kernel_vs_sw),
                   format_ratio(ratio),
                   name == "jpeg" ? "3.63x" : "n/a"});
    csv.add_row({name, format_fixed(app_speedup, 3),
                 format_fixed(kernel_speedup, 3), format_fixed(ratio, 3)});
  }
  table.render(std::cout);

  double ratio_sum = 0.0;
  for (const auto& [name, exp] : experiments) {
    ratio_sum += exp.baseline_comm_comp_ratio();
  }
  std::cout << "average comm/comp ratio: "
            << format_ratio(ratio_sum / 4.0)
            << "  (paper: ~2.09x)\n";
  std::cout << "note: jpeg baseline is slower than software, as in the "
               "paper (communication dominates)\n";
  return 0;
}
