// Figure 5: the quantitative data-communication profile of the jpeg
// decoder — the QUAD graph that drives the design algorithm. Prints the
// edge table, emits Graphviz DOT, and checks the qualitative structure the
// paper describes in §V-B.
#include <iostream>
#include <set>

#include "apps/jpeg.hpp"
#include "bench/bench_common.hpp"
#include "prof/dot_export.hpp"

int main() {
  using namespace hybridic;
  const apps::ProfiledApp app = apps::run_jpeg(apps::JpegConfig{});
  std::cout << "jpeg decoder self-verification: "
            << (app.verified ? "PASS" : "FAIL") << " ("
            << app.verification_note << ")\n\n";

  const prof::CommGraph& graph = app.graph();
  Table table{"Figure 5 — jpeg data communication profile (QUAD output)"};
  table.set_header({"producer", "consumer", "bytes accessed",
                    "unique bytes (UMA)"});
  CsvWriter csv{bench::csv_path("fig5_jpeg_profile"),
                {"producer", "consumer", "bytes", "umas"}};
  for (const prof::CommEdge& edge : graph.edges()) {
    if (edge.producer == edge.consumer) {
      continue;
    }
    table.add_row({graph.function(edge.producer).name,
                   graph.function(edge.consumer).name,
                   std::to_string(edge.bytes.count()),
                   std::to_string(edge.unique_addresses)});
    csv.add_row({graph.function(edge.producer).name,
                 graph.function(edge.consumer).name,
                 std::to_string(edge.bytes.count()),
                 std::to_string(edge.unique_addresses)});
  }
  table.render(std::cout);

  std::set<prof::FunctionId> hw;
  for (const auto& fn :
       {"huff_dc_dec", "huff_ac_dec", "dquantz_lum", "j_rev_dct"}) {
    hw.insert(graph.id_of(fn));
  }
  std::cout << "\nGraphviz DOT (render with `dot -Tpng`):\n"
            << prof::to_dot(graph, hw);

  // The §V-B structure checks.
  const auto dq = graph.id_of("dquantz_lum");
  const auto idct = graph.id_of("j_rev_dct");
  const auto host = graph.id_of("read_bitstream");
  std::cout << "\nstructure checks (paper §V-B):\n";
  std::cout << "  dquantz_lum sends to j_rev_dct only: "
            << (graph.total_out(dq).count() ==
                        graph.bytes_between(dq, idct).count() +
                            graph.bytes_between(dq, dq).count()
                    ? "yes"
                    : "NO")
            << "\n";
  std::cout << "  j_rev_dct consumes from host and dquantz_lum: "
            << ((graph.bytes_between(host, idct).count() > 0 &&
                 graph.bytes_between(dq, idct).count() > 0)
                    ? "yes"
                    : "NO")
            << "\n";
  return 0;
}
