// Table IV: whole-system HW resource utilization for the baseline, the
// proposed hybrid system and the NoC-only system, plus the solution tag
// the design algorithm chose per application.
#include <iostream>

#include "bench/bench_common.hpp"

int main() {
  using namespace hybridic;
  const auto experiments = bench::run_all_experiments();

  Table table{"Table IV — system resources (LUTs/registers)"};
  table.set_header({"app", "baseline", "(paper)", "our system", "(paper)",
                    "NoC only", "(paper)", "solution", "(paper)"});
  CsvWriter csv{bench::csv_path("table4_resources"),
                {"app", "baseline_luts", "baseline_regs", "ours_luts",
                 "ours_regs", "noc_only_luts", "noc_only_regs",
                 "solution"}};

  const auto fmt = [](const core::Resources& r) {
    return std::to_string(r.luts) + "/" + std::to_string(r.regs);
  };
  for (const auto& name : apps::paper_app_names()) {
    const sys::AppExperiment& exp = experiments.at(name);
    const bench::PaperReference& ref = bench::paper_reference().at(name);
    table.add_row(
        {name, fmt(exp.baseline_resources),
         std::to_string(ref.baseline_luts) + "/" +
             std::to_string(ref.baseline_regs),
         fmt(exp.proposed_resources),
         std::to_string(ref.ours_luts) + "/" +
             std::to_string(ref.ours_regs),
         fmt(exp.noc_only_resources),
         std::to_string(ref.noc_only_luts) + "/" +
             std::to_string(ref.noc_only_regs),
         exp.proposed_design.solution_tag(), ref.solution});
    csv.add_row({name, std::to_string(exp.baseline_resources.luts),
                 std::to_string(exp.baseline_resources.regs),
                 std::to_string(exp.proposed_resources.luts),
                 std::to_string(exp.proposed_resources.regs),
                 std::to_string(exp.noc_only_resources.luts),
                 std::to_string(exp.noc_only_resources.regs),
                 exp.proposed_design.solution_tag()});
  }
  table.render(std::cout);

  double max_lut_saving = 0.0;
  double max_reg_saving = 0.0;
  for (const auto& [name, exp] : experiments) {
    max_lut_saving = std::max(
        max_lut_saving,
        1.0 - static_cast<double>(exp.proposed_resources.luts) /
                  static_cast<double>(exp.noc_only_resources.luts));
    max_reg_saving = std::max(
        max_reg_saving,
        1.0 - static_cast<double>(exp.proposed_resources.regs) /
                  static_cast<double>(exp.noc_only_resources.regs));
  }
  std::cout << "max saving vs NoC-only: " << format_percent(max_lut_saving)
            << " LUTs, " << format_percent(max_reg_saving)
            << " registers  (paper: 33.1% / 30.2%)\n";
  return 0;
}
