// Google-benchmark micro-benchmarks of the QUAD-style profiler: tracked
// access overhead, shadow-memory scans, and full application profiling.
#include <benchmark/benchmark.h>

#include "apps/canny.hpp"
#include "apps/jpeg.hpp"
#include "prof/tracked.hpp"

namespace {

using namespace hybridic;

void BM_TrackedWriteRead(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  prof::QuadProfiler q;
  const auto writer = q.declare("writer");
  const auto reader = q.declare("reader");
  prof::TrackedBuffer<float> buffer{q, "buf", n};
  for (auto _ : state) {
    {
      prof::ScopedFunction scope{q, writer};
      for (std::size_t i = 0; i < n; ++i) {
        buffer.set(i, static_cast<float>(i));
      }
    }
    float sum = 0.0F;
    {
      prof::ScopedFunction scope{q, reader};
      for (std::size_t i = 0; i < n; ++i) {
        sum += buffer.get(i);
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_TrackedWriteRead)->Arg(1024)->Arg(65536);

void BM_ShadowScanRuns(benchmark::State& state) {
  prof::ShadowMemory shadow;
  // Alternating producers to create many runs.
  for (std::uint64_t i = 0; i < 64; ++i) {
    shadow.write(i * 128, 128, static_cast<prof::FunctionId>(i % 4));
  }
  for (auto _ : state) {
    std::uint64_t total = 0;
    shadow.scan(0, 64 * 128,
                [&total](std::uint64_t, std::uint64_t len,
                         prof::FunctionId) { total += len; });
    benchmark::DoNotOptimize(total);
  }
  state.SetBytesProcessed(state.iterations() * 64 * 128);
}
BENCHMARK(BM_ShadowScanRuns);

void BM_ProfileCanny(benchmark::State& state) {
  for (auto _ : state) {
    apps::CannyConfig config;
    config.width = 96;
    config.height = 64;
    const apps::ProfiledApp app = apps::run_canny(config);
    benchmark::DoNotOptimize(app.graph().edges().size());
  }
}
BENCHMARK(BM_ProfileCanny)->Unit(benchmark::kMillisecond);

void BM_ProfileJpeg(benchmark::State& state) {
  for (auto _ : state) {
    apps::JpegConfig config;
    config.width = 48;
    config.height = 48;
    const apps::ProfiledApp app = apps::run_jpeg(config);
    benchmark::DoNotOptimize(app.graph().edges().size());
  }
}
BENCHMARK(BM_ProfileJpeg)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
