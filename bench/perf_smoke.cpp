// Performance smoke test: runs the three micro-workloads (profiler shadow
// scan, NoC traffic, bus transactions), a per-phase breakdown of the
// end-to-end paper pipeline (profiling vs Algorithm 1 vs simulation), the
// parallel batch-runner evaluation — cold and warm speedups reported
// separately — the persistent-store warm-restart figure, a 2-way sharded
// campaign smoke, and the tiered DSE sweep in all three --tier modes,
// then writes the measured numbers to BENCH_PR7.json so CI can archive
// them. --dse-count N (default 1000) sizes the sweep.
//
// Thread count and per-core throughput are recorded alongside every
// machine-dependent figure so BENCH_PR*.json entries stay comparable
// across machines with different core counts.
//
// This is deliberately NOT a google-benchmark binary: it runs each workload
// a fixed number of times, reports wall-clock medians, and always exits 0 —
// it records performance, it does not gate on it.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/app.hpp"
#include "bench/bench_common.hpp"
#include "bus/bus.hpp"
#include "core/interconnect_design.hpp"
#include "dse/campaign.hpp"
#include "noc/network.hpp"
#include "prof/shadow_memory.hpp"
#include "sim/engine.hpp"
#include "store/adapters.hpp"
#include "store/store.hpp"
#include "sys/batch_runner.hpp"
#include "sys/experiment.hpp"
#include "tiers/tiered_evaluator.hpp"

namespace {

using namespace hybridic;
using Clock = std::chrono::steady_clock;

double median_seconds(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Repeats `body` and returns the median wall-clock seconds per run.
template <typename Body>
double time_runs(int runs, Body&& body) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    const auto start = Clock::now();
    body();
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    samples.push_back(elapsed.count());
  }
  return median_seconds(samples);
}

/// Shadow-memory scan throughput over a fragmented region (many producer
/// runs), the workload the page-granular scan targets.
double shadow_scan_mb_per_sec() {
  prof::ShadowMemory shadow;
  constexpr std::uint64_t kChunks = 4096;
  constexpr std::uint64_t kChunkBytes = 128;
  constexpr std::uint64_t kSpan = kChunks * kChunkBytes;
  for (std::uint64_t i = 0; i < kChunks; ++i) {
    shadow.write(i * kChunkBytes, kChunkBytes,
                 static_cast<prof::FunctionId>(i % 4));
  }
  constexpr int kScansPerRun = 200;
  const double sec = time_runs(9, [&shadow] {
    std::uint64_t total = 0;
    for (int s = 0; s < kScansPerRun; ++s) {
      shadow.scan(0, kSpan,
                  [&total](std::uint64_t, std::uint64_t len,
                           prof::FunctionId) { total += len; });
    }
    if (total != kScansPerRun * kSpan) {
      std::cerr << "shadow scan covered wrong byte count\n";
    }
  });
  return static_cast<double>(kScansPerRun * kSpan) / sec / 1e6;
}

/// NoC all-to-all on a 4x4 mesh; reports simulation events per wall second.
double noc_events_per_sec(std::uint64_t& events_out) {
  constexpr std::uint32_t kDim = 4;
  const sim::ClockDomain noc_clock{"noc", Frequency::megahertz(150)};
  std::uint64_t events = 0;
  const double sec = time_runs(9, [&noc_clock, &events] {
    sim::Engine engine;
    noc::Network network{"noc", engine, noc_clock, noc::Mesh2D{kDim, kDim},
                         noc::NetworkConfig{}};
    for (std::uint32_t n = 0; n < kDim * kDim; ++n) {
      network.attach_adapter(n, "n" + std::to_string(n),
                             noc::AdapterKind::kAccelerator);
    }
    for (std::uint32_t src = 0; src < kDim * kDim; ++src) {
      for (std::uint32_t dst = 0; dst < kDim * kDim; ++dst) {
        if (src != dst) {
          network.send(src, dst, Bytes{256}, {});
        }
      }
    }
    engine.run();
    events = engine.events_executed();
  });
  events_out = events;
  return static_cast<double>(events) / sec;
}

/// Bus transaction burst; reports completed transactions per wall second.
double bus_transactions_per_sec() {
  const sim::ClockDomain bus_clock{"bus", Frequency::megahertz(100)};
  constexpr int kRequests = 4096;
  std::uint64_t transactions = 0;
  const double sec = time_runs(9, [&bus_clock, &transactions] {
    sim::Engine engine;
    bus::Bus plb{"plb", engine, bus_clock,
                 bus::BusConfig{8, 16, Cycles{2}, Cycles{1}, 2},
                 std::make_unique<bus::PriorityArbiter>()};
    for (int i = 0; i < kRequests; ++i) {
      plb.submit(bus::BusRequest{static_cast<std::uint32_t>(i % 2),
                                 Bytes{128}, Picoseconds{0}, {}});
    }
    engine.run();
    transactions = plb.transactions();
  });
  return static_cast<double>(transactions) / sec;
}

/// Per-phase breakdown of the paper pipeline for one app: profiling
/// (QUAD shadow-memory pass), Algorithm 1 (interconnect design), and the
/// cycle-accurate simulation of all variants. The simulation figure is
/// the full run_experiment wall time — it re-runs Algorithm 1 internally,
/// but that is microseconds against milliseconds of event simulation.
struct PhaseBreakdown {
  double profile_ms = 0.0;
  double algorithm1_ms = 0.0;
  double simulate_ms = 0.0;
};

PhaseBreakdown phase_breakdown(const std::string& app_name) {
  PhaseBreakdown out;
  out.profile_ms =
      time_runs(3, [&app_name] { (void)apps::run_paper_app(app_name); }) *
      1e3;
  const apps::ProfiledApp app = apps::run_paper_app(app_name);
  const sys::AppSchedule schedule = app.schedule();
  const sys::PlatformConfig platform;
  const core::DesignInput input = sys::make_design_input(schedule, platform);
  out.algorithm1_ms =
      time_runs(9, [&input] { (void)core::design_interconnect(input); }) *
      1e3;
  out.simulate_ms = time_runs(3, [&schedule, &platform, &app] {
                      const sys::AppExperiment experiment =
                          sys::run_experiment(schedule, platform,
                                              app.environment);
                      if (experiment.proposed.total_seconds <= 0.0) {
                        std::cerr << "experiment produced zero runtime\n";
                      }
                    }) *
                    1e3;
  return out;
}

/// Wall seconds to profile one paper app as a batch job at `threads`.
/// Profiling is deferred-mode: the replay finalize fans out across the
/// job's own pool (ThreadPool::current()), so this measures the parallel
/// cold profiling path end to end.
double profile_once_seconds(std::size_t threads, const std::string& name) {
  sys::BatchRunner runner{threads};
  std::vector<sys::BatchRunner::Job<int>> jobs;
  jobs.push_back({"profile/" + name, [&name](sys::JobContext&) {
                    (void)apps::run_paper_app(name);
                    return 0;
                  }});
  (void)runner.run(std::move(jobs));
  return runner.last_report().wall_seconds;
}

/// All four AppExperiments on the batch runner at `threads`, profiles
/// served by `cache`. Returns batch wall seconds; metrics land in `out`.
double batch_seconds(std::size_t threads, apps::ProfileCache& cache,
                     std::uint64_t& steals_out) {
  sys::BatchRunner runner{threads};
  const auto experiments = bench::run_all_experiments(cache, runner);
  if (experiments.size() != 4) {
    std::cerr << "batch produced wrong experiment count\n";
  }
  steals_out = runner.last_report().steals;
  return runner.last_report().wall_seconds;
}

/// One DSE sweep in `tier` mode; returns wall seconds, stats in `stats`.
double dse_sweep_seconds(std::uint64_t count, tiers::TierMode tier,
                         dse::TierStats& stats) {
  dse::CampaignOptions options;
  options.count = count;
  options.campaign_seed = 1;
  options.max_shrinks = 0;
  options.tier = tier;
  const auto start = Clock::now();
  const dse::CampaignResult result = dse::run_campaign(options);
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  stats = result.tier_stats;
  return elapsed.count();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t dse_count = 1000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--dse-count" && i + 1 < argc) {
      value = argv[++i];
    } else if (arg.rfind("--dse-count=", 0) == 0) {
      value = arg.substr(std::string{"--dse-count="}.size());
    } else {
      std::cerr << "usage: " << argv[0] << " [--dse-count N]\n";
      return 2;
    }
    dse_count = std::stoull(value);
  }
  const unsigned hw_threads = std::max(1U, std::thread::hardware_concurrency());
  std::cout << "perf_smoke: profiler / NoC / bus micro-workloads + "
               "phase breakdown + parallel batch + store restart ("
            << hw_threads << " hardware threads)\n";

  const double scan_mb_s = shadow_scan_mb_per_sec();
  std::cout << "  shadow scan:      " << scan_mb_s << " MB/s\n";

  std::uint64_t noc_events = 0;
  const double noc_ev_s = noc_events_per_sec(noc_events);
  std::cout << "  noc all-to-all:   " << noc_ev_s << " events/s ("
            << noc_events << " events per run)\n";

  const double bus_tx_s = bus_transactions_per_sec();
  std::cout << "  bus transactions: " << bus_tx_s << " tx/s\n";

  // Per-phase pipeline breakdown (jpeg): where an end-to-end run spends
  // its time, so profiling-path fixes are visible in the trajectory.
  const PhaseBreakdown phases = phase_breakdown("jpeg");
  const double jpeg_ms = phases.profile_ms + phases.simulate_ms;
  std::cout << "  jpeg phases:      profile " << phases.profile_ms
            << " ms, algorithm1 " << phases.algorithm1_ms
            << " ms, simulate " << phases.simulate_ms << " ms\n";

  // Cold profiling parallelism: one jpeg profile as a 1-thread batch job
  // (serial replay) vs an N-thread batch job (sharded replay on the
  // pool). Identical CommGraph either way — only the wall time moves.
  const double profile_serial_s = profile_once_seconds(1, "jpeg");
  const double profile_parallel_s =
      profile_once_seconds(hw_threads, "jpeg");
  const double cold_profile_speedup =
      profile_parallel_s > 0 ? profile_serial_s / profile_parallel_s : 0.0;
  std::cout << "  profile jpeg:     " << profile_serial_s * 1e3
            << " ms serial replay, " << profile_parallel_s * 1e3 << " ms @"
            << hw_threads << "t (cold profile speedup "
            << cold_profile_speedup << "x)\n";

  // Batch runner: cold and warm speedups are separate figures — a cold
  // batch is profiling-bound (fixed by the sharded replay), a warm batch
  // is simulation fan-out. PR 6 recorded a single "batch_parallel_speedup"
  // of 0.99 without flagging that it measured the cold path on one core.
  std::uint64_t steals_1 = 0;
  std::uint64_t steals_1_warm = 0;
  std::uint64_t steals_n_cold = 0;
  std::uint64_t steals_n_warm = 0;
  std::uint64_t steals_n_prewarmed = 0;
  apps::ProfileCache cache_cold_1;
  const double batch_1t_cold_s = batch_seconds(1, cache_cold_1, steals_1);
  const double batch_1t_warm_s =
      batch_seconds(1, cache_cold_1, steals_1_warm);
  apps::ProfileCache cache_cold_n;
  const double batch_nt_cold_s =
      batch_seconds(hw_threads, cache_cold_n, steals_n_cold);
  const double batch_nt_warm_s =
      batch_seconds(hw_threads, cache_cold_n, steals_n_warm);
  const std::uint64_t cache_hits = cache_cold_n.hits();
  const std::uint64_t cache_misses = cache_cold_n.misses();
  const std::uint64_t cache_convoys = cache_cold_n.convoy_waits();
  const double cold_speedup =
      batch_nt_cold_s > 0 ? batch_1t_cold_s / batch_nt_cold_s : 0.0;
  const double warm_speedup =
      batch_nt_warm_s > 0 ? batch_1t_warm_s / batch_nt_warm_s : 0.0;
  // Cold again, but with the distinct-app profiles prewarmed concurrently
  // first (the fault-campaign convoy fix); wall time includes the prewarm.
  apps::ProfileCache cache_prewarmed;
  double batch_nt_prewarmed_s = 0.0;
  {
    const auto start = Clock::now();
    sys::BatchRunner runner{hw_threads};
    bench::prewarm_profiles(cache_prewarmed, runner,
                            apps::paper_app_names());
    (void)bench::run_all_experiments(cache_prewarmed, runner);
    batch_nt_prewarmed_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    steals_n_prewarmed = runner.last_report().steals;
  }
  std::cout << "  batch (4 apps):   cold " << batch_1t_cold_s * 1e3
            << " ms @1t -> " << batch_nt_cold_s * 1e3 << " ms @"
            << hw_threads << "t (cold speedup " << cold_speedup
            << "x, steals " << steals_n_cold << ", convoy-waits "
            << cache_convoys << "); warm " << batch_1t_warm_s * 1e3
            << " ms @1t -> " << batch_nt_warm_s * 1e3
            << " ms (warm speedup " << warm_speedup << "x, cache "
            << cache_hits << " hits / " << cache_misses << " misses); "
            << batch_nt_prewarmed_s * 1e3 << " ms cold+prewarm\n";
  if (hw_threads >= 4 && cold_speedup < 2.0) {
    std::cout << "  WARNING: cold batch speedup " << cold_speedup
              << "x < 2x on a " << hw_threads
              << "-thread host — the parallel profiling path is not "
                 "scaling; check BENCH_PR7.json cold figures\n";
  }

  // Store warm restart: populate a fresh on-disk store from one process
  // lifetime (cache A), then time the 4-app batch in a simulated fresh
  // process — new L1 cache, new Store handle, profiles served from disk.
  // The acceptance bar is restart <= 2x the in-process warm batch.
  namespace fs = std::filesystem;
  const fs::path store_root =
      fs::temp_directory_path() / "hybridic_perf_smoke_store";
  std::error_code ec;
  fs::remove_all(store_root, ec);
  double store_restart_s = 0.0;
  std::uint64_t store_restart_l2_hits = 0;
  {
    auto disk = std::make_shared<store::Store>(store_root.string());
    apps::ProfileCache writer;
    writer.set_l2(std::make_shared<store::ProfileStoreL2>(disk));
    std::uint64_t steals = 0;
    (void)batch_seconds(hw_threads, writer, steals);

    auto disk2 = std::make_shared<store::Store>(store_root.string());
    apps::ProfileCache reader;
    reader.set_l2(std::make_shared<store::ProfileStoreL2>(disk2));
    store_restart_s = batch_seconds(hw_threads, reader, steals);
    store_restart_l2_hits = reader.l2_hits();
  }
  fs::remove_all(store_root, ec);
  const double restart_over_warm =
      batch_nt_warm_s > 0 ? store_restart_s / batch_nt_warm_s : 0.0;
  std::cout << "  store restart:    " << store_restart_s * 1e3 << " ms ("
            << store_restart_l2_hits << " L2 hits, " << restart_over_warm
            << "x the in-process warm batch)\n";

  // Sharded campaign smoke: the same small sweep as 2 shards sharing one
  // store; counters prove cross-process reuse plumbing end to end.
  std::uint64_t shard_rows[2] = {0, 0};
  std::uint64_t shard_store_hits = 0;
  std::uint64_t shard_store_puts = 0;
  {
    const fs::path shard_store =
        fs::temp_directory_path() / "hybridic_perf_smoke_shards";
    fs::remove_all(shard_store, ec);
    for (std::uint64_t shard = 0; shard < 2; ++shard) {
      dse::CampaignOptions options;
      options.count = 16;
      options.campaign_seed = 1;
      options.max_shrinks = 0;
      options.tier = tiers::TierMode::kAnalytic;
      options.store_dir = (shard_store / "store").string();
      options.shard_index = shard;
      options.shard_count = 2;
      const dse::CampaignResult result = dse::run_campaign(options);
      shard_rows[shard] = result.cases.size();
      if (result.store_stats.has_value()) {
        shard_store_hits += result.store_stats->hits;
        shard_store_puts += result.store_stats->puts;
      }
    }
    fs::remove_all(shard_store, ec);
  }
  std::cout << "  shard smoke:      " << shard_rows[0] << "+"
            << shard_rows[1] << " rows, store " << shard_store_puts
            << " puts / " << shard_store_hits << " hits across shards\n";

  // Tiered DSE sweep: the same design points priced by the analytic tier,
  // the auto policy (analytic + capped escalation), and the full
  // cycle-accurate engine. tier_speedup is the acceptance figure: designs
  // per wall second in auto mode over cycle mode.
  dse::TierStats stats_analytic;
  dse::TierStats stats_auto;
  dse::TierStats stats_cycle;
  const double dse_analytic_s = dse_sweep_seconds(
      dse_count, tiers::TierMode::kAnalytic, stats_analytic);
  const double dse_auto_s =
      dse_sweep_seconds(dse_count, tiers::TierMode::kAuto, stats_auto);
  const double dse_cycle_s =
      dse_sweep_seconds(dse_count, tiers::TierMode::kCycle, stats_cycle);
  const double analytic_evals_per_sec =
      dse_analytic_s > 0 ? static_cast<double>(dse_count) / dse_analytic_s
                         : 0.0;
  const double tier_speedup = dse_auto_s > 0 ? dse_cycle_s / dse_auto_s : 0.0;
  const double escalation_rate = stats_auto.escalation_rate(dse_count);
  std::cout << "  dse sweep (" << dse_count << " designs): analytic "
            << dse_analytic_s << " s (" << analytic_evals_per_sec
            << " evals/s), auto " << dse_auto_s << " s ("
            << stats_auto.cycle_evals << " escalated, rate "
            << escalation_rate << ", " << stats_auto.band_violations
            << " band violations), cycle " << dse_cycle_s
            << " s -> tier speedup " << tier_speedup << "x\n";

  std::ofstream json{"BENCH_PR7.json"};
  json << "{\n"
       << "  \"bench\": \"perf_smoke\",\n"
       << "  \"pr\": 7,\n"
       << "  \"hardware_threads\": " << hw_threads << ",\n"
       << "  \"shadow_scan_mb_per_sec\": " << scan_mb_s << ",\n"
       << "  \"noc_events_per_sec\": " << noc_ev_s << ",\n"
       << "  \"noc_events_per_run\": " << noc_events << ",\n"
       << "  \"bus_transactions_per_sec\": " << bus_tx_s << ",\n"
       << "  \"noc_events_per_sec_per_core\": " << noc_ev_s / hw_threads
       << ",\n"
       << "  \"bus_transactions_per_sec_per_core\": " << bus_tx_s / hw_threads
       << ",\n"
       << "  \"end_to_end_jpeg_ms\": " << jpeg_ms << ",\n"
       << "  \"phase_profile_jpeg_ms\": " << phases.profile_ms << ",\n"
       << "  \"phase_algorithm1_jpeg_ms\": " << phases.algorithm1_ms << ",\n"
       << "  \"phase_simulate_jpeg_ms\": " << phases.simulate_ms << ",\n"
       << "  \"profile_jpeg_serial_ms\": " << profile_serial_s * 1e3 << ",\n"
       << "  \"profile_jpeg_parallel_ms\": " << profile_parallel_s * 1e3
       << ",\n"
       << "  \"cold_profile_parallel_speedup\": " << cold_profile_speedup
       << ",\n"
       << "  \"batch_4apps_1thread_cold_ms\": " << batch_1t_cold_s * 1e3
       << ",\n"
       << "  \"batch_4apps_1thread_warm_ms\": " << batch_1t_warm_s * 1e3
       << ",\n"
       << "  \"batch_4apps_nthread_cold_ms\": " << batch_nt_cold_s * 1e3
       << ",\n"
       << "  \"batch_4apps_nthread_cold_prewarmed_ms\": "
       << batch_nt_prewarmed_s * 1e3 << ",\n"
       << "  \"batch_4apps_nthread_warm_ms\": " << batch_nt_warm_s * 1e3
       << ",\n"
       << "  \"batch_cold_parallel_speedup\": " << cold_speedup << ",\n"
       << "  \"batch_warm_parallel_speedup\": " << warm_speedup << ",\n"
       << "  \"batch_steals_nthread_cold\": " << steals_n_cold << ",\n"
       << "  \"batch_steals_nthread_prewarmed\": " << steals_n_prewarmed
       << ",\n"
       << "  \"profile_cache_hits\": " << cache_hits << ",\n"
       << "  \"profile_cache_misses\": " << cache_misses << ",\n"
       << "  \"profile_cache_convoy_waits\": " << cache_convoys << ",\n"
       << "  \"store_warm_restart_ms\": " << store_restart_s * 1e3 << ",\n"
       << "  \"store_warm_restart_l2_hits\": " << store_restart_l2_hits
       << ",\n"
       << "  \"store_restart_over_warm_batch\": " << restart_over_warm
       << ",\n"
       << "  \"shard_smoke_rows_shard0\": " << shard_rows[0] << ",\n"
       << "  \"shard_smoke_rows_shard1\": " << shard_rows[1] << ",\n"
       << "  \"shard_smoke_store_puts\": " << shard_store_puts << ",\n"
       << "  \"shard_smoke_store_hits\": " << shard_store_hits << ",\n"
       << "  \"dse_design_count\": " << dse_count << ",\n"
       << "  \"dse_analytic_sweep_s\": " << dse_analytic_s << ",\n"
       << "  \"dse_auto_sweep_s\": " << dse_auto_s << ",\n"
       << "  \"dse_cycle_sweep_s\": " << dse_cycle_s << ",\n"
       << "  \"analytic_evals_per_sec\": " << analytic_evals_per_sec << ",\n"
       << "  \"escalation_rate\": " << escalation_rate << ",\n"
       << "  \"escalated_rank\": " << stats_auto.escalated_rank << ",\n"
       << "  \"escalated_oracle\": " << stats_auto.escalated_oracle << ",\n"
       << "  \"band_violations\": " << stats_auto.band_violations << ",\n"
       << "  \"tier_speedup\": " << tier_speedup << "\n"
       << "}\n";
  std::cout << "wrote BENCH_PR7.json\n";
  return 0;
}
