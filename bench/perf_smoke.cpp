// Performance smoke test: runs the three micro-workloads (profiler shadow
// scan, NoC traffic, bus transactions), one end-to-end paper application,
// the parallel batch-runner evaluation (all four AppExperiments at 1
// thread and at N threads, profile cache warm, plus a prewarmed cold run
// exposing the ProfileCache convoy fix), and the tiered DSE sweep in all
// three --tier modes, then writes the measured numbers to BENCH_PR6.json
// so CI can archive them. --dse-count N (default 1000) sizes the sweep.
//
// Thread count and per-core throughput are recorded alongside every
// machine-dependent figure so BENCH_PR*.json entries stay comparable
// across machines with different core counts.
//
// This is deliberately NOT a google-benchmark binary: it runs each workload
// a fixed number of times, reports wall-clock medians, and always exits 0 —
// it records performance, it does not gate on it.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "apps/app.hpp"
#include "bench/bench_common.hpp"
#include "bus/bus.hpp"
#include "dse/campaign.hpp"
#include "noc/network.hpp"
#include "prof/shadow_memory.hpp"
#include "sim/engine.hpp"
#include "sys/batch_runner.hpp"
#include "sys/experiment.hpp"
#include "tiers/tiered_evaluator.hpp"

namespace {

using namespace hybridic;
using Clock = std::chrono::steady_clock;

double median_seconds(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Repeats `body` and returns the median wall-clock seconds per run.
template <typename Body>
double time_runs(int runs, Body&& body) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    const auto start = Clock::now();
    body();
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    samples.push_back(elapsed.count());
  }
  return median_seconds(samples);
}

/// Shadow-memory scan throughput over a fragmented region (many producer
/// runs), the workload the page-granular scan targets.
double shadow_scan_mb_per_sec() {
  prof::ShadowMemory shadow;
  constexpr std::uint64_t kChunks = 4096;
  constexpr std::uint64_t kChunkBytes = 128;
  constexpr std::uint64_t kSpan = kChunks * kChunkBytes;
  for (std::uint64_t i = 0; i < kChunks; ++i) {
    shadow.write(i * kChunkBytes, kChunkBytes,
                 static_cast<prof::FunctionId>(i % 4));
  }
  constexpr int kScansPerRun = 200;
  const double sec = time_runs(9, [&shadow] {
    std::uint64_t total = 0;
    for (int s = 0; s < kScansPerRun; ++s) {
      shadow.scan(0, kSpan,
                  [&total](std::uint64_t, std::uint64_t len,
                           prof::FunctionId) { total += len; });
    }
    if (total != kScansPerRun * kSpan) {
      std::cerr << "shadow scan covered wrong byte count\n";
    }
  });
  return static_cast<double>(kScansPerRun * kSpan) / sec / 1e6;
}

/// NoC all-to-all on a 4x4 mesh; reports simulation events per wall second.
double noc_events_per_sec(std::uint64_t& events_out) {
  constexpr std::uint32_t kDim = 4;
  const sim::ClockDomain noc_clock{"noc", Frequency::megahertz(150)};
  std::uint64_t events = 0;
  const double sec = time_runs(9, [&noc_clock, &events] {
    sim::Engine engine;
    noc::Network network{"noc", engine, noc_clock, noc::Mesh2D{kDim, kDim},
                         noc::NetworkConfig{}};
    for (std::uint32_t n = 0; n < kDim * kDim; ++n) {
      network.attach_adapter(n, "n" + std::to_string(n),
                             noc::AdapterKind::kAccelerator);
    }
    for (std::uint32_t src = 0; src < kDim * kDim; ++src) {
      for (std::uint32_t dst = 0; dst < kDim * kDim; ++dst) {
        if (src != dst) {
          network.send(src, dst, Bytes{256}, {});
        }
      }
    }
    engine.run();
    events = engine.events_executed();
  });
  events_out = events;
  return static_cast<double>(events) / sec;
}

/// Bus transaction burst; reports completed transactions per wall second.
double bus_transactions_per_sec() {
  const sim::ClockDomain bus_clock{"bus", Frequency::megahertz(100)};
  constexpr int kRequests = 4096;
  std::uint64_t transactions = 0;
  const double sec = time_runs(9, [&bus_clock, &transactions] {
    sim::Engine engine;
    bus::Bus plb{"plb", engine, bus_clock,
                 bus::BusConfig{8, 16, Cycles{2}, Cycles{1}, 2},
                 std::make_unique<bus::PriorityArbiter>()};
    for (int i = 0; i < kRequests; ++i) {
      plb.submit(bus::BusRequest{static_cast<std::uint32_t>(i % 2),
                                 Bytes{128}, Picoseconds{0}, {}});
    }
    engine.run();
    transactions = plb.transactions();
  });
  return static_cast<double>(transactions) / sec;
}

/// End-to-end paper pipeline (profile + design + simulate) for one app.
double end_to_end_ms(const std::string& app_name) {
  return time_runs(3, [&app_name] {
           const apps::ProfiledApp app = apps::run_paper_app(app_name);
           const sys::AppExperiment experiment = sys::run_experiment(
               app.schedule(), sys::PlatformConfig{}, app.environment);
           if (experiment.proposed.total_seconds <= 0.0) {
             std::cerr << "experiment produced zero runtime\n";
           }
         }) *
         1e3;
}

/// All four AppExperiments on the batch runner at `threads`, profiles
/// served by `cache`. Returns batch wall seconds; metrics land in `out`.
double batch_seconds(std::size_t threads, apps::ProfileCache& cache,
                     std::uint64_t& steals_out) {
  sys::BatchRunner runner{threads};
  const auto experiments = bench::run_all_experiments(cache, runner);
  if (experiments.size() != 4) {
    std::cerr << "batch produced wrong experiment count\n";
  }
  steals_out = runner.last_report().steals;
  return runner.last_report().wall_seconds;
}

/// One DSE sweep in `tier` mode; returns wall seconds, stats in `stats`.
double dse_sweep_seconds(std::uint64_t count, tiers::TierMode tier,
                         dse::TierStats& stats) {
  dse::CampaignOptions options;
  options.count = count;
  options.campaign_seed = 1;
  options.max_shrinks = 0;
  options.tier = tier;
  const auto start = Clock::now();
  const dse::CampaignResult result = dse::run_campaign(options);
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  stats = result.tier_stats;
  return elapsed.count();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t dse_count = 1000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--dse-count" && i + 1 < argc) {
      value = argv[++i];
    } else if (arg.rfind("--dse-count=", 0) == 0) {
      value = arg.substr(std::string{"--dse-count="}.size());
    } else {
      std::cerr << "usage: " << argv[0] << " [--dse-count N]\n";
      return 2;
    }
    dse_count = std::stoull(value);
  }
  const unsigned hw_threads = std::max(1U, std::thread::hardware_concurrency());
  std::cout << "perf_smoke: profiler / NoC / bus micro-workloads + "
               "end-to-end app + parallel batch ("
            << hw_threads << " hardware threads)\n";

  const double scan_mb_s = shadow_scan_mb_per_sec();
  std::cout << "  shadow scan:      " << scan_mb_s << " MB/s\n";

  std::uint64_t noc_events = 0;
  const double noc_ev_s = noc_events_per_sec(noc_events);
  std::cout << "  noc all-to-all:   " << noc_ev_s << " events/s ("
            << noc_events << " events per run)\n";

  const double bus_tx_s = bus_transactions_per_sec();
  std::cout << "  bus transactions: " << bus_tx_s << " tx/s\n";

  const double jpeg_ms = end_to_end_ms("jpeg");
  std::cout << "  end-to-end jpeg:  " << jpeg_ms << " ms\n";

  // Batch runner: cold 1-thread run (4 profile misses), then a warm
  // N-thread run (4 hits, pure simulation fan-out), then a cold N-thread
  // run in a fresh cache for the honest parallel-speedup figure.
  std::uint64_t steals_1 = 0;
  std::uint64_t steals_n_cold = 0;
  std::uint64_t steals_n_warm = 0;
  std::uint64_t steals_n_prewarmed = 0;
  apps::ProfileCache cache_cold_1;
  const double batch_1t_s = batch_seconds(1, cache_cold_1, steals_1);
  apps::ProfileCache cache_cold_n;
  const double batch_nt_cold_s =
      batch_seconds(hw_threads, cache_cold_n, steals_n_cold);
  const double batch_nt_warm_s =
      batch_seconds(hw_threads, cache_cold_n, steals_n_warm);
  const std::uint64_t cache_hits = cache_cold_n.hits();
  const std::uint64_t cache_misses = cache_cold_n.misses();
  const std::uint64_t cache_convoys = cache_cold_n.convoy_waits();
  // Cold again, but with the distinct-app profiles prewarmed concurrently
  // first (the fault-campaign convoy fix); wall time includes the prewarm.
  apps::ProfileCache cache_prewarmed;
  double batch_nt_prewarmed_s = 0.0;
  {
    const auto start = Clock::now();
    sys::BatchRunner runner{hw_threads};
    bench::prewarm_profiles(cache_prewarmed, runner,
                            apps::paper_app_names());
    (void)bench::run_all_experiments(cache_prewarmed, runner);
    batch_nt_prewarmed_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    steals_n_prewarmed = runner.last_report().steals;
  }
  std::cout << "  batch (4 apps):   " << batch_1t_s * 1e3 << " ms @1t, "
            << batch_nt_cold_s * 1e3 << " ms @" << hw_threads
            << "t cold (speedup "
            << (batch_nt_cold_s > 0 ? batch_1t_s / batch_nt_cold_s : 0.0)
            << "x, steals " << steals_n_cold << ", convoy-waits "
            << cache_convoys << "), " << batch_nt_prewarmed_s * 1e3
            << " ms cold+prewarm (convoy-waits "
            << cache_prewarmed.convoy_waits() << "), "
            << batch_nt_warm_s * 1e3 << " ms warm (cache " << cache_hits
            << " hits / " << cache_misses << " misses)\n";

  // Tiered DSE sweep: the same design points priced by the analytic tier,
  // the auto policy (analytic + capped escalation), and the full
  // cycle-accurate engine. tier_speedup is the acceptance figure: designs
  // per wall second in auto mode over cycle mode.
  dse::TierStats stats_analytic;
  dse::TierStats stats_auto;
  dse::TierStats stats_cycle;
  const double dse_analytic_s = dse_sweep_seconds(
      dse_count, tiers::TierMode::kAnalytic, stats_analytic);
  const double dse_auto_s =
      dse_sweep_seconds(dse_count, tiers::TierMode::kAuto, stats_auto);
  const double dse_cycle_s =
      dse_sweep_seconds(dse_count, tiers::TierMode::kCycle, stats_cycle);
  const double analytic_evals_per_sec =
      dse_analytic_s > 0 ? static_cast<double>(dse_count) / dse_analytic_s
                         : 0.0;
  const double tier_speedup = dse_auto_s > 0 ? dse_cycle_s / dse_auto_s : 0.0;
  const double escalation_rate = stats_auto.escalation_rate(dse_count);
  std::cout << "  dse sweep (" << dse_count << " designs): analytic "
            << dse_analytic_s << " s (" << analytic_evals_per_sec
            << " evals/s), auto " << dse_auto_s << " s ("
            << stats_auto.cycle_evals << " escalated, rate "
            << escalation_rate << ", " << stats_auto.band_violations
            << " band violations), cycle " << dse_cycle_s
            << " s -> tier speedup " << tier_speedup << "x\n";

  std::ofstream json{"BENCH_PR6.json"};
  json << "{\n"
       << "  \"bench\": \"perf_smoke\",\n"
       << "  \"pr\": 6,\n"
       << "  \"hardware_threads\": " << hw_threads << ",\n"
       << "  \"shadow_scan_mb_per_sec\": " << scan_mb_s << ",\n"
       << "  \"noc_events_per_sec\": " << noc_ev_s << ",\n"
       << "  \"noc_events_per_run\": " << noc_events << ",\n"
       << "  \"bus_transactions_per_sec\": " << bus_tx_s << ",\n"
       << "  \"noc_events_per_sec_per_core\": " << noc_ev_s / hw_threads
       << ",\n"
       << "  \"bus_transactions_per_sec_per_core\": " << bus_tx_s / hw_threads
       << ",\n"
       << "  \"end_to_end_jpeg_ms\": " << jpeg_ms << ",\n"
       << "  \"batch_4apps_1thread_ms\": " << batch_1t_s * 1e3 << ",\n"
       << "  \"batch_4apps_nthread_cold_ms\": " << batch_nt_cold_s * 1e3
       << ",\n"
       << "  \"batch_4apps_nthread_cold_prewarmed_ms\": "
       << batch_nt_prewarmed_s * 1e3 << ",\n"
       << "  \"batch_4apps_nthread_warm_ms\": " << batch_nt_warm_s * 1e3
       << ",\n"
       << "  \"batch_parallel_speedup\": "
       << (batch_nt_cold_s > 0 ? batch_1t_s / batch_nt_cold_s : 0.0) << ",\n"
       << "  \"batch_steals_nthread_cold\": " << steals_n_cold << ",\n"
       << "  \"batch_steals_nthread_prewarmed\": " << steals_n_prewarmed
       << ",\n"
       << "  \"profile_cache_hits\": " << cache_hits << ",\n"
       << "  \"profile_cache_misses\": " << cache_misses << ",\n"
       << "  \"profile_cache_convoy_waits\": " << cache_convoys << ",\n"
       << "  \"dse_design_count\": " << dse_count << ",\n"
       << "  \"dse_analytic_sweep_s\": " << dse_analytic_s << ",\n"
       << "  \"dse_auto_sweep_s\": " << dse_auto_s << ",\n"
       << "  \"dse_cycle_sweep_s\": " << dse_cycle_s << ",\n"
       << "  \"analytic_evals_per_sec\": " << analytic_evals_per_sec << ",\n"
       << "  \"escalation_rate\": " << escalation_rate << ",\n"
       << "  \"escalated_rank\": " << stats_auto.escalated_rank << ",\n"
       << "  \"escalated_oracle\": " << stats_auto.escalated_oracle << ",\n"
       << "  \"band_violations\": " << stats_auto.band_violations << ",\n"
       << "  \"tier_speedup\": " << tier_speedup << "\n"
       << "}\n";
  std::cout << "wrote BENCH_PR6.json\n";
  return 0;
}
