// Fault-injection degradation campaign: sweeps fault rates across the four
// paper applications for the designed / baseline / crossbar variants and
// reports degradation curves — speedup vs fault rate, retransmissions,
// rerouted and degraded edges, corrupted-byte counts.
//
// Outputs (full mode):
//   bench_results/fault_campaign.csv   — one row per (app, variant, point)
//   bench_results/REPORT.md            — a "## Fault-injection degradation
//                                        campaign" section (replaced on
//                                        rerun, appended after report_all)
// Smoke mode (--smoke, used by CI): one app at two fault rates, written to
// bench_results/fault_smoke.json only; byte-identical across reruns and
// --threads values by the batch-runner determinism contract (every job's
// FaultSpec seed is job_seed(key), never time or thread id).
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/interconnect_design.hpp"
#include "noc/topology.hpp"
#include "sys/crossbar_system.hpp"

namespace {

using namespace hybridic;

struct CampaignOptions {
  std::size_t threads = 0;
  bool smoke = false;
};

CampaignOptions parse_campaign_options(int argc, char** argv) {
  CampaignOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--smoke") {
      options.smoke = true;
      continue;
    }
    if (arg == "--threads" && i + 1 < argc) {
      value = argv[++i];
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(std::string("--threads=").size());
    } else {
      std::cerr << "usage: " << argv[0] << " [--threads N] [--smoke]\n";
      std::exit(2);
    }
    options.threads = static_cast<std::size_t>(std::stoul(value));
  }
  return options;
}

/// One campaign point: a full run of one variant under one fault scenario.
struct CampaignRow {
  std::string app;
  std::string variant;   // designed | baseline | crossbar
  std::string scenario;  // sweep | nocrc | linkdown
  double rate = 0.0;
  double total_seconds = 0.0;
  faults::FaultStats stats;
};

/// All fault classes at one Bernoulli rate, recovery on.
faults::FaultSpec spec_at_rate(double rate, std::uint64_t seed) {
  faults::FaultSpec spec;
  spec.seed = seed;
  spec.flit_corruption_rate = rate;
  spec.bus_error_rate = rate;
  spec.bus_stall_rate = rate;
  spec.sdram_bitflip_rate = rate;
  spec.bram_bitflip_rate = rate;
  spec.resilience.noc_crc = true;
  return spec;
}

CampaignRow run_point(apps::ProfileCache& cache, const std::string& app_name,
                      const std::string& variant,
                      const std::string& scenario,
                      const faults::FaultSpec& fault_spec, double rate) {
  const std::shared_ptr<const apps::ProfiledApp> app =
      cache.paper_app(app_name);
  const sys::AppSchedule schedule = app->schedule();
  sys::PlatformConfig config;
  config.faults = fault_spec;

  CampaignRow row;
  row.app = app_name;
  row.variant = variant;
  row.scenario = scenario;
  row.rate = rate;

  sys::RunResult result;
  if (variant == "designed") {
    // The design itself is laid out fault-free; faults strike the deployed
    // system at run time.
    const core::DesignResult design = core::design_interconnect(
        sys::make_design_input(schedule, sys::PlatformConfig{}));
    sys::PlatformConfig faulted = config;
    if ((scenario == "linkdown" || scenario == "onelink") &&
        design.noc.has_value()) {
      // linkdown severs every link of the first kernel attachment's router
      // (worst-case single-node failure: edges through it fall back to
      // bus-DMA round trips instead of hanging). onelink severs only the
      // first link so traffic reroutes in place around the dead segment.
      const noc::Mesh2D mesh{design.noc->mesh_width,
                             design.noc->mesh_height};
      for (const core::NocAttachment& a : design.noc->attachments) {
        if (a.kind != core::NocNodeKind::kKernel) {
          continue;
        }
        for (const noc::PortDir dir :
             {noc::PortDir::kNorth, noc::PortDir::kEast,
              noc::PortDir::kSouth, noc::PortDir::kWest}) {
          if (const auto n = mesh.neighbor(a.node, dir)) {
            faulted.faults.dead_links.push_back({a.node, *n});
            if (scenario == "onelink") {
              break;
            }
          }
        }
        break;
      }
    }
    result = sys::run_designed(schedule, design, faulted);
  } else if (variant == "baseline") {
    result = sys::run_baseline(schedule, config);
  } else {
    result = sys::run_crossbar_system(schedule, config);
  }
  row.total_seconds = result.total_seconds;
  row.stats = result.fault_stats;
  return row;
}

std::string fmt(double value) {
  std::ostringstream out;
  out << std::setprecision(17) << value;
  return out.str();
}

std::string campaign_csv(const std::vector<CampaignRow>& rows) {
  std::ostringstream out;
  out << "app,variant,scenario,rate,total_s,slowdown_vs_clean,"
         "flits_corrupted,retransmits,give_ups,messages_lost,bus_errors,"
         "bus_retries,bus_stalls,mem_bitflips,corrupted_bytes,"
         "degraded_edges,reroutes\n";
  const auto clean_of = [&rows](const CampaignRow& row) {
    for (const CampaignRow& other : rows) {
      if (other.app == row.app && other.variant == row.variant &&
          other.scenario == "sweep" && other.rate == 0.0) {
        return other.total_seconds;
      }
    }
    return row.total_seconds;
  };
  for (const CampaignRow& row : rows) {
    out << row.app << ',' << row.variant << ',' << row.scenario << ','
        << fmt(row.rate) << ',' << fmt(row.total_seconds) << ','
        << fmt(row.total_seconds / clean_of(row)) << ','
        << row.stats.flits_corrupted << ','
        << row.stats.packets_retransmitted << ','
        << row.stats.retransmit_give_ups << ','
        << row.stats.messages_lost << ',' << row.stats.bus_errors << ','
        << row.stats.bus_retries << ',' << row.stats.bus_stalls << ','
        << row.stats.mem_bitflips << ',' << row.stats.corrupted_bytes << ','
        << row.stats.degraded_edges << ',' << row.stats.noc_reroutes
        << '\n';
  }
  return out.str();
}

const char kSectionMarker[] = "## Fault-injection degradation campaign";

std::string campaign_markdown(const std::vector<CampaignRow>& rows,
                              const std::vector<double>& rates) {
  std::ostringstream md;
  md << kSectionMarker << "\n\n";
  md << "Per-event fault rate applied to every class (flit corruption, bus "
        "errors/stalls, memory bit flips) with CRC retransmission and bus "
        "retries on. Cells are slowdown vs the same variant's fault-free "
        "run (1.00 = no degradation).\n\n";
  md << "| app | variant |";
  for (const double rate : rates) {
    md << " r=" << rate << " |";
  }
  md << " retransmits@max | corrupted B@max |\n|---|---|";
  for (std::size_t i = 0; i < rates.size(); ++i) {
    md << "---|";
  }
  md << "---|---|\n";
  const auto find = [&rows](const std::string& app,
                            const std::string& variant, double rate) {
    for (const CampaignRow& row : rows) {
      if (row.app == app && row.variant == variant &&
          row.scenario == "sweep" && row.rate == rate) {
        return &row;
      }
    }
    return static_cast<const CampaignRow*>(nullptr);
  };
  for (const auto& app : apps::paper_app_names()) {
    for (const std::string variant : {"designed", "baseline", "crossbar"}) {
      const CampaignRow* clean = find(app, variant, 0.0);
      if (clean == nullptr) {
        continue;
      }
      md << "| " << app << " | " << variant << " |";
      for (const double rate : rates) {
        const CampaignRow* row = find(app, variant, rate);
        md << ' '
           << (row != nullptr
                   ? format_fixed(row->total_seconds / clean->total_seconds,
                                  3)
                   : std::string("—"))
           << " |";
      }
      const CampaignRow* worst = find(app, variant, rates.back());
      md << ' ' << (worst ? worst->stats.packets_retransmitted : 0) << " | "
         << (worst ? worst->stats.corrupted_bytes : 0) << " |\n";
    }
  }

  md << "\nResilience scenarios (designed system):\n\n";
  md << "| app | scenario | slowdown | degraded edges | reroutes | "
        "corrupted B |\n|---|---|---|---|---|---|\n";
  for (const CampaignRow& row : rows) {
    if (row.scenario == "sweep") {
      continue;
    }
    const CampaignRow* clean = find(row.app, row.variant, 0.0);
    md << "| " << row.app << " | "
       << (row.scenario == "nocrc"      ? "no CRC @ r=1e-3"
           : row.scenario == "onelink" ? "single link failure (reroute)"
                                       : "kernel router isolated (degrade)")
       << " | "
       << (clean != nullptr
               ? format_fixed(row.total_seconds / clean->total_seconds, 3)
               : std::string("—"))
       << " | " << row.stats.degraded_edges << " | "
       << row.stats.noc_reroutes << " | " << row.stats.corrupted_bytes
       << " |\n";
  }
  md << "\nFull per-point counters: `bench_results/fault_campaign.csv`.\n";
  return md.str();
}

std::string smoke_json(const std::vector<CampaignRow>& rows) {
  std::ostringstream out;
  out << "{\n  \"campaign\": \"smoke\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CampaignRow& row = rows[i];
    out << "    {\"app\": \"" << row.app << "\", \"variant\": \""
        << row.variant << "\", \"rate\": " << fmt(row.rate)
        << ", \"total_seconds\": " << fmt(row.total_seconds)
        << ", \"flits_corrupted\": " << row.stats.flits_corrupted
        << ", \"retransmits\": " << row.stats.packets_retransmitted
        << ", \"bus_errors\": " << row.stats.bus_errors
        << ", \"bus_retries\": " << row.stats.bus_retries
        << ", \"mem_bitflips\": " << row.stats.mem_bitflips
        << ", \"corrupted_bytes\": " << row.stats.corrupted_bytes << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const CampaignOptions options = parse_campaign_options(argc, argv);
  apps::ProfileCache cache;
  sys::BatchRunner runner{options.threads};

  const std::vector<double> rates =
      options.smoke ? std::vector<double>{1e-3, 1e-2}
                    : std::vector<double>{0.0, 1e-4, 1e-3, 1e-2};
  const std::vector<std::string> app_names =
      options.smoke ? std::vector<std::string>{"canny"}
                    : apps::paper_app_names();
  const std::vector<std::string> variants =
      options.smoke ? std::vector<std::string>{"designed"}
                    : std::vector<std::string>{"designed", "baseline",
                                               "crossbar"};

  std::vector<sys::BatchRunner::Job<CampaignRow>> jobs;
  const auto add_job = [&](const std::string& app,
                           const std::string& variant,
                           const std::string& scenario, double rate) {
    const std::string key = "fault/" + app + "/" + variant + "/" +
                            scenario + "/" + fmt(rate);
    jobs.push_back({key, [&cache, app, variant, scenario,
                          rate](sys::JobContext& ctx) {
                      faults::FaultSpec spec = spec_at_rate(rate, ctx.seed);
                      if (scenario == "nocrc") {
                        spec.resilience.noc_crc = false;
                      }
                      return run_point(cache, app, variant, scenario, spec,
                                       rate);
                    }});
  };
  for (const std::string& app : app_names) {
    for (const std::string& variant : variants) {
      for (const double rate : rates) {
        add_job(app, variant, "sweep", rate);
      }
    }
    if (!options.smoke) {
      add_job(app, "designed", "nocrc", 1e-3);
      add_job(app, "designed", "onelink", 0.0);
      add_job(app, "designed", "linkdown", 0.0);
    }
  }
  // Profile every distinct app concurrently up front: the job list above
  // is app-major, so a cold cache would convoy the first N workers on one
  // in-flight profile (see ProfileCache::convoy_waits()).
  bench::prewarm_profiles(cache, runner, app_names);
  const std::vector<CampaignRow> rows = runner.run(std::move(jobs));

  (void)bench::csv_path("dummy");  // ensure bench_results/ exists
  if (options.smoke) {
    const std::string path = "bench_results/fault_smoke.json";
    std::ofstream out{path};
    out << smoke_json(rows);
    std::cout << "wrote " << path << " (" << rows.size() << " points)\n";
  } else {
    const std::string csv = campaign_csv(rows);
    std::ofstream out{bench::csv_path("fault_campaign")};
    out << csv;
    bench::patch_report_section(kSectionMarker,
                                campaign_markdown(rows, rates));
    std::cout << "wrote bench_results/fault_campaign.csv (" << rows.size()
              << " points) and the REPORT.md campaign section\n";
  }
  bench::print_batch_metrics(runner, cache);
  return 0;
}
