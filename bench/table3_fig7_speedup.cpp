// Table III / Figure 7: speed-up of the proposed system with respect to
// software and to the baseline system, for the overall application and for
// the kernels alone.
#include <iostream>

#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hybridic;
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  apps::ProfileCache cache;
  sys::BatchRunner runner{options.threads};
  const auto experiments = bench::run_all_experiments(cache, runner);

  Table table{
      "Table III / Fig. 7 — proposed-system speed-ups (measured vs paper)"};
  table.set_header({"app", "vs SW app", "(paper)", "vs SW kern", "(paper)",
                    "vs base app", "(paper)", "vs base kern", "(paper)"});
  CsvWriter csv{bench::csv_path("table3_fig7_speedup"),
                {"app", "vs_sw_app", "vs_sw_kernels", "vs_base_app",
                 "vs_base_kernels"}};

  for (const auto& name : apps::paper_app_names()) {
    const sys::AppExperiment& exp = experiments.at(name);
    const bench::PaperReference& ref = bench::paper_reference().at(name);
    table.add_row({name, format_ratio(exp.proposed_app_speedup_vs_sw()),
                   format_ratio(ref.proposed_app_vs_sw),
                   format_ratio(exp.proposed_kernel_speedup_vs_sw()),
                   format_ratio(ref.proposed_kernel_vs_sw),
                   format_ratio(exp.proposed_app_speedup_vs_baseline()),
                   format_ratio(ref.proposed_app_vs_baseline),
                   format_ratio(exp.proposed_kernel_speedup_vs_baseline()),
                   format_ratio(ref.proposed_kernel_vs_baseline)});
    csv.add_row({name,
                 format_fixed(exp.proposed_app_speedup_vs_sw(), 3),
                 format_fixed(exp.proposed_kernel_speedup_vs_sw(), 3),
                 format_fixed(exp.proposed_app_speedup_vs_baseline(), 3),
                 format_fixed(exp.proposed_kernel_speedup_vs_baseline(),
                              3)});
  }
  table.render(std::cout);

  // Shape checks corresponding to the paper's headline claims.
  double best_vs_sw = 0.0;
  double best_vs_base = 0.0;
  std::string best_vs_base_app;
  for (const auto& [name, exp] : experiments) {
    best_vs_sw = std::max(best_vs_sw, exp.proposed_app_speedup_vs_sw());
    if (exp.proposed_app_speedup_vs_baseline() > best_vs_base) {
      best_vs_base = exp.proposed_app_speedup_vs_baseline();
      best_vs_base_app = name;
    }
  }
  std::cout << "max app speed-up vs SW: " << format_ratio(best_vs_sw)
            << "  (paper: 3.72x)\n";
  std::cout << "max app speed-up vs baseline: " << format_ratio(best_vs_base)
            << " on " << best_vs_base_app << "  (paper: 2.87x on jpeg)\n";
  bench::print_batch_metrics(runner, cache);
  return 0;
}
