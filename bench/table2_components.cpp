// Table II: HW resource utilization and maximum frequency of the
// interconnect components. The model carries the paper's synthesized
// numbers; this bench also cross-checks the §IV-B claim that four routers
// cost ~5x a shared-local-memory solution.
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/resource_model.hpp"

int main() {
  using namespace hybridic;
  using core::Component;

  Table table{"Table II — interconnect component resources"};
  table.set_header({"component", "LUTs", "registers", "fmax"});
  CsvWriter csv{bench::csv_path("table2_components"),
                {"component", "luts", "regs", "fmax_mhz"}};

  for (const Component c :
       {Component::kBus, Component::kCrossbar, Component::kRouter,
        Component::kNaAccelerator, Component::kNaLocalMemory,
        Component::kPortMux}) {
    const core::ComponentCost cost = core::component_cost(c);
    table.add_row({core::to_string(c), std::to_string(cost.luts),
                   std::to_string(cost.regs),
                   cost.fmax_mhz > 0.0
                       ? format_fixed(cost.fmax_mhz, 1) + " MHz"
                       : "N/A"});
    csv.add_row({core::to_string(c), std::to_string(cost.luts),
                 std::to_string(cost.regs),
                 format_fixed(cost.fmax_mhz, 1)});
  }
  table.render(std::cout);

  const auto router = core::component_cost(Component::kRouter);
  const auto na_acc = core::component_cost(Component::kNaAccelerator);
  const auto na_mem = core::component_cost(Component::kNaLocalMemory);
  const auto xbar = core::component_cost(Component::kCrossbar);
  const std::uint64_t noc_pair_cost =
      4 * router.luts + 2 * na_acc.luts + 2 * na_mem.luts;
  std::cout << "cost of connecting one kernel pair via NoC (4 routers + "
               "NAs): "
            << noc_pair_cost << " LUTs vs shared-memory crossbar: "
            << xbar.luts << " LUTs  ("
            << format_fixed(static_cast<double>(noc_pair_cost) /
                                static_cast<double>(xbar.luts),
                            1)
            << "x, paper claims ~5x for routers alone: "
            << format_fixed(static_cast<double>(4 * router.luts) /
                                static_cast<double>(xbar.luts),
                            1)
            << "x)\n";
  return 0;
}
