// Extension bench: all four interconnect classes of the paper's §II-A
// related-work taxonomy on the same applications — bus-only (group 1),
// NoC (group 2), shared memory inside the hybrid (group 3), and a full
// crossbar (group 4) — in performance and interconnect area.
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/interconnect_design.hpp"
#include "sys/crossbar_system.hpp"

int main() {
  using namespace hybridic;
  const sys::PlatformConfig platform;

  Table table{"Interconnect classes (paper §II-A taxonomy) — time and "
              "interconnect LUTs"};
  table.set_header({"app", "bus-only", "full crossbar", "NoC-only",
                    "hybrid (paper)", "xbar LUTs", "NoC LUTs",
                    "hybrid LUTs"});
  CsvWriter csv{bench::csv_path("ext_interconnect_classes"),
                {"app", "bus_s", "crossbar_s", "noc_s", "hybrid_s",
                 "crossbar_luts", "noc_luts", "hybrid_luts"}};

  for (const auto& name : apps::paper_app_names()) {
    const apps::ProfiledApp app = apps::run_paper_app(name);
    const sys::AppSchedule schedule = app.schedule();

    const core::DesignInput input =
        sys::make_design_input(schedule, platform);
    const core::DesignResult hybrid = core::design_interconnect(input);
    core::DesignInput noc_input = input;
    noc_input.enable_shared_memory = false;
    noc_input.enable_adaptive_mapping = false;
    const core::DesignResult noc_only =
        core::design_interconnect(noc_input);

    const sys::RunResult bus = sys::run_baseline(schedule, platform);
    const sys::RunResult xbar =
        sys::run_crossbar_system(schedule, platform);
    const sys::RunResult noc =
        sys::run_designed(schedule, noc_only, platform, "noc-only");
    const sys::RunResult hyb =
        sys::run_designed(schedule, hybrid, platform);

    const core::Resources xbar_area = sys::crossbar_system_resources(
        static_cast<std::uint32_t>(schedule.specs.size()));
    const core::Resources noc_area =
        core::interconnect_resources(noc_only);
    const core::Resources hybrid_area =
        core::interconnect_resources(hybrid);

    const auto ms = [](const sys::RunResult& r) {
      return format_fixed(r.total_seconds * 1e3, 3);
    };
    table.add_row({name, ms(bus), ms(xbar), ms(noc), ms(hyb),
                   std::to_string(xbar_area.luts),
                   std::to_string(noc_area.luts),
                   std::to_string(hybrid_area.luts)});
    csv.add_row({name, format_fixed(bus.total_seconds, 6),
                 format_fixed(xbar.total_seconds, 6),
                 format_fixed(noc.total_seconds, 6),
                 format_fixed(hyb.total_seconds, 6),
                 std::to_string(xbar_area.luts),
                 std::to_string(noc_area.luts),
                 std::to_string(hybrid_area.luts)});
  }
  table.render(std::cout);
  std::cout
      << "takeaway: the crossbar and the NoC both hide kernel traffic "
         "(similar times, far ahead of the bus); the crossbar's "
         "crosspoint area grows quadratically with the kernel count "
         "while the hybrid keeps only the fabric each application "
         "needs — the niche the paper's design strategy occupies\n";
  return 0;
}
