// Google-benchmark micro-benchmarks of the bus/DMA substrate.
#include <benchmark/benchmark.h>

#include <memory>

#include "bus/bus.hpp"
#include "bus/dma.hpp"
#include "mem/bram.hpp"
#include "mem/sdram.hpp"

namespace {

using namespace hybridic;

const sim::ClockDomain kBusClock{"bus", Frequency::megahertz(100)};
const sim::ClockDomain kHostClock{"host", Frequency::megahertz(400)};
const sim::ClockDomain kKernelClock{"kernel", Frequency::megahertz(100)};

void BM_BusTransactions(benchmark::State& state) {
  const auto count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    bus::Bus bus{"plb", engine, kBusClock,
                 bus::BusConfig{8, 16, Cycles{2}, Cycles{1}, 2},
                 std::make_unique<bus::PriorityArbiter>()};
    for (int i = 0; i < count; ++i) {
      bus.submit(bus::BusRequest{static_cast<std::uint32_t>(i % 2),
                                 Bytes{128}, Picoseconds{0}, {}});
    }
    engine.run();
    benchmark::DoNotOptimize(bus.transactions());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_BusTransactions)->Arg(16)->Arg(256)->Arg(4096);

void BM_DmaBlockTransfer(benchmark::State& state) {
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    mem::Sdram sdram{"sdram", kBusClock, mem::SdramConfig{}};
    bus::Bus bus{"plb", engine, kBusClock,
                 bus::BusConfig{4, 1, Cycles{2}, Cycles{1}, 2},
                 std::make_unique<bus::PriorityArbiter>()};
    bus::Dma dma{"dma", engine, bus, sdram, kHostClock,
                 bus::DmaConfig{Cycles{50}, 1024}, 1};
    mem::Bram bram{"bram", kKernelClock, Bytes{1024 * 1024}, 4};
    Picoseconds done{0};
    dma.transfer(bus::DmaDirection::kMemToLocal, Bytes{bytes}, bram,
                 [&done](Picoseconds at) { done = at; });
    engine.run();
    benchmark::DoNotOptimize(done);
    state.counters["sim_time_us"] = done.microseconds();
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DmaBlockTransfer)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_ArbiterSelect(benchmark::State& state) {
  bus::WeightedRoundRobinArbiter arbiter{{3, 1, 2, 1}};
  const std::vector<std::uint32_t> pending{0, 1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(arbiter.select(pending));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArbiterSelect);

}  // namespace

BENCHMARK_MAIN();
