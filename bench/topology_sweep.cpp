// Multi-board topology sweep: every paper application across chain / ring
// / mesh inter-board networks at 2..4 boards, through the full pipeline —
// profile -> two-level design (board partition + per-board Algorithm 1)
// -> multi-board cycle-accurate run — plus the analytic multi-board tier
// for cross-checking. Every point re-checks the byte-conservation ledger
// (intra + cut == profiled unique bytes) inline, and ring/mesh points are
// additionally run with a deterministic dead inter-board link (board 0 <->
// board 1) to exercise reroute-around-failure.
//
// Outputs (full mode):
//   bench_results/topology_sweep.csv  — one row per (app, topology,
//                                       boards, scenario)
//   bench_results/REPORT.md           — a "## Multi-board topology sweep"
//                                       section (replaced on rerun)
// Smoke mode (--smoke, used by CI): jpeg only, chain x2 and ring x3,
// written to bench_results/topology_smoke.csv. All outputs are
// byte-identical across reruns and --threads values: every cell is a pure
// function of the (deterministic) profile and the design seed.
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/kernel_model.hpp"
#include "core/multi_board_design.hpp"
#include "sys/board_net.hpp"
#include "sys/multi_board.hpp"
#include "tiers/analytic.hpp"

namespace {

using namespace hybridic;

struct SweepOptions {
  std::size_t threads = 0;
  bool smoke = false;
};

SweepOptions parse_sweep_options(int argc, char** argv) {
  SweepOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--smoke") {
      options.smoke = true;
      continue;
    }
    if (arg == "--threads" && i + 1 < argc) {
      value = argv[++i];
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(std::string("--threads=").size());
    } else {
      std::cerr << "usage: " << argv[0] << " [--threads N] [--smoke]\n";
      std::exit(2);
    }
    options.threads = static_cast<std::size_t>(std::stoul(value));
  }
  return options;
}

/// One sweep point: an app on one (topology, board count), healthy links
/// or one deterministic dead link.
struct SweepRow {
  std::string app;
  std::string topology;
  std::uint32_t boards = 0;
  std::string scenario;  // healthy | linkdown
  double total_seconds = 0.0;
  double analytic_mid_seconds = 0.0;
  double analytic_lower_seconds = 0.0;
  double analytic_upper_seconds = 0.0;
  std::uint64_t cut_bytes = 0;
  std::uint64_t intra_bytes = 0;
  std::uint64_t profiled_bytes = 0;
  bool conserved = false;
  std::uint64_t inter_transfers = 0;
  std::uint64_t inter_bytes = 0;
  double inter_busy_seconds = 0.0;
  std::uint64_t reroutes = 0;
  std::uint32_t refinement_moves = 0;
};

SweepRow run_point(apps::ProfileCache& cache, const std::string& app_name,
                   core::BoardTopology topology, std::uint32_t boards,
                   bool linkdown) {
  const std::shared_ptr<const apps::ProfiledApp> app =
      cache.paper_app(app_name);
  const sys::AppSchedule schedule = app->schedule();

  core::MultiBoardDesignInput input;
  input.base = sys::make_design_input(schedule, sys::PlatformConfig{});
  input.board_count = boards;
  const core::MultiBoardDesign design = core::design_multi_board(input);

  sys::MultiBoardConfig config = sys::MultiBoardConfig::uniform(
      boards, sys::PlatformConfig{}, topology);
  if (linkdown) {
    // The one deterministic failure: sever board 0 <-> board 1. On a ring
    // or mesh the network stays connected and cut traffic detours around
    // the gap (counted as reroutes); on a chain it would disconnect, so
    // chain points never run this scenario.
    config.boards[0].faults.dead_board_links.push_back({0, 1});
  }
  const sys::MultiBoardRunResult run =
      sys::run_designed_multi(schedule, design, config);
  const tiers::TierEstimate est = tiers::analytic_estimate_multi(
      schedule, design, config, input.base.theta.seconds_per_byte);

  SweepRow row;
  row.app = app_name;
  row.topology = core::to_string(topology);
  row.boards = boards;
  row.scenario = linkdown ? "linkdown" : "healthy";
  row.total_seconds = run.run.total_seconds;
  row.analytic_mid_seconds = est.designed_kernel_seconds;
  row.analytic_lower_seconds = est.designed_lower_seconds;
  row.analytic_upper_seconds = est.designed_upper_seconds;
  row.cut_bytes = design.partition.cut_bytes.count();
  for (const Bytes bytes : design.partition.intra_board_bytes) {
    row.intra_bytes += bytes.count();
  }
  for (const prof::CommEdge& edge : schedule.graph->edges()) {
    if (edge.producer != edge.consumer) {
      row.profiled_bytes += core::edge_volume(edge).count();
    }
  }
  // The conservation ledger the DSE oracle enforces, re-checked here on
  // real (non-synthetic) applications.
  row.conserved =
      row.intra_bytes + row.cut_bytes == row.profiled_bytes &&
      design.partition.total_bytes.count() == row.profiled_bytes;
  row.inter_transfers = run.inter_board_transfers;
  row.inter_bytes = run.inter_board_bytes;
  row.inter_busy_seconds = run.inter_board_busy_seconds;
  row.reroutes = run.board_link_reroutes;
  row.refinement_moves = design.partition.refinement_moves;
  return row;
}

std::string fmt(double value) {
  std::ostringstream out;
  out << std::setprecision(17) << value;
  return out.str();
}

std::string sweep_csv(const std::vector<SweepRow>& rows) {
  std::ostringstream out;
  out << "app,topology,boards,scenario,total_s,analytic_mid_s,"
         "analytic_lower_s,analytic_upper_s,cut_bytes,intra_bytes,"
         "profiled_bytes,conserved,inter_transfers,inter_bytes,"
         "inter_busy_s,reroutes,refinement_moves\n";
  for (const SweepRow& row : rows) {
    out << row.app << ',' << row.topology << ',' << row.boards << ','
        << row.scenario << ',' << fmt(row.total_seconds) << ','
        << fmt(row.analytic_mid_seconds) << ','
        << fmt(row.analytic_lower_seconds) << ','
        << fmt(row.analytic_upper_seconds) << ',' << row.cut_bytes << ','
        << row.intra_bytes << ',' << row.profiled_bytes << ','
        << (row.conserved ? 1 : 0) << ',' << row.inter_transfers << ','
        << row.inter_bytes << ',' << fmt(row.inter_busy_seconds) << ','
        << row.reroutes << ',' << row.refinement_moves << '\n';
  }
  return out.str();
}

const char kSectionMarker[] = "## Multi-board topology sweep";

std::string sweep_markdown(const std::vector<SweepRow>& rows) {
  std::ostringstream md;
  md << kSectionMarker << "\n\n";
  md << "Two-level design (board min-cut partition + per-board Algorithm "
        "1) across inter-board serial-link topologies. `cut%` is the "
        "share of profiled unique bytes forced across boards; every row "
        "re-checks the byte-conservation ledger (intra + cut == "
        "profiled). `linkdown` rows sever the board 0 <-> board 1 link "
        "and count the reroutes the detour takes.\n\n";
  md << "| app | topology | boards | scenario | total ms | analytic band "
        "ms | cut% | conserved | inter-board B | reroutes |\n";
  md << "|---|---|---|---|---|---|---|---|---|---|\n";
  for (const SweepRow& row : rows) {
    const double cut_pct =
        row.profiled_bytes == 0
            ? 0.0
            : 100.0 * static_cast<double>(row.cut_bytes) /
                  static_cast<double>(row.profiled_bytes);
    md << "| " << row.app << " | " << row.topology << " | " << row.boards
       << " | " << row.scenario << " | "
       << format_fixed(row.total_seconds * 1e3, 3) << " | "
       << format_fixed(row.analytic_lower_seconds * 1e3, 3) << " .. "
       << format_fixed(row.analytic_upper_seconds * 1e3, 3) << " | "
       << format_fixed(cut_pct, 1) << " | "
       << (row.conserved ? "yes" : "**NO**") << " | " << row.inter_bytes
       << " | " << row.reroutes << " |\n";
  }
  md << "\nFull counters: `bench_results/topology_sweep.csv`.\n";
  return md.str();
}

}  // namespace

int main(int argc, char** argv) {
  const SweepOptions options = parse_sweep_options(argc, argv);
  apps::ProfileCache cache;
  sys::BatchRunner runner{options.threads};

  const std::vector<std::string> app_names =
      options.smoke ? std::vector<std::string>{"jpeg"}
                    : apps::paper_app_names();
  struct Point {
    core::BoardTopology topology;
    std::uint32_t boards;
    bool linkdown;
  };
  std::vector<Point> points;
  if (options.smoke) {
    points = {{core::BoardTopology::kChain, 2, false},
              {core::BoardTopology::kRing, 3, true}};
  } else {
    for (const core::BoardTopology topology :
         {core::BoardTopology::kChain, core::BoardTopology::kRing,
          core::BoardTopology::kMesh}) {
      for (std::uint32_t boards = 2; boards <= 4; ++boards) {
        points.push_back({topology, boards, false});
      }
    }
    // Link-failure scenarios only where severing 0<->1 leaves the network
    // connected: a ring needs >= 3 boards, the 2x2 mesh has a detour.
    points.push_back({core::BoardTopology::kRing, 3, true});
    points.push_back({core::BoardTopology::kRing, 4, true});
    points.push_back({core::BoardTopology::kMesh, 4, true});
  }

  std::vector<sys::BatchRunner::Job<SweepRow>> jobs;
  for (const std::string& app : app_names) {
    for (const Point& point : points) {
      const std::string key =
          "topology/" + app + "/" +
          std::string(core::to_string(point.topology)) + "/" +
          std::to_string(point.boards) +
          (point.linkdown ? "/linkdown" : "/healthy");
      jobs.push_back({key, [&cache, app, point](sys::JobContext&) {
                        return run_point(cache, app, point.topology,
                                         point.boards, point.linkdown);
                      }});
    }
  }
  bench::prewarm_profiles(cache, runner, app_names);
  const std::vector<SweepRow> rows = runner.run(std::move(jobs));

  std::uint64_t violations = 0;
  for (const SweepRow& row : rows) {
    if (!row.conserved) {
      ++violations;
      std::cerr << "byte-conservation violation: " << row.app << " "
                << row.topology << " x" << row.boards << "\n";
    }
  }

  const std::string name = options.smoke ? "topology_smoke" : "topology_sweep";
  {
    std::ofstream out{bench::csv_path(name)};
    out << sweep_csv(rows);
  }
  if (!options.smoke) {
    bench::patch_report_section(kSectionMarker, sweep_markdown(rows));
  }
  std::cout << "wrote bench_results/" << name << ".csv (" << rows.size()
            << " points" << (options.smoke ? "" : ", REPORT.md section")
            << ")\n";
  bench::print_batch_metrics(runner, cache);
  return violations == 0 ? 0 : 1;
}
