// Consolidated report generator: runs the complete evaluation and writes
// bench_results/REPORT.md — every paper table/figure, the extensions, and
// the design description of each application, in one markdown document.
//
// Parallelised on the batch runner (--threads N): phase 1 fans the four
// AppExperiments out as jobs, phase 2 fans the per-app design sections out
// as jobs; both aggregate in app order, and profiling is served by the
// profile cache, so REPORT.md and every CSV/JSON side-output are
// byte-identical at any thread count.
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/bench_common.hpp"
#include "core/design_validate.hpp"
#include "core/json_export.hpp"
#include "sys/engine/chrome_trace.hpp"
#include "sys/pipeline_executor.hpp"
#include "sys/timeline.hpp"

int main(int argc, char** argv) {
  using namespace hybridic;
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  apps::ProfileCache cache;
  sys::BatchRunner runner{options.threads};

  const auto experiments = bench::run_all_experiments(cache, runner);
  std::ostringstream md;

  md << "# HybridIC — consolidated evaluation report\n\n";
  md << "Deterministic reproduction run of Pham-Quoc et al. 2014. Paper "
        "values in parentheses.\n\n";

  // ---- Fig. 4 ----
  md << "## Fig. 4 — baseline vs software\n\n";
  md << "| app | app speed-up | kernel speed-up | comm/comp |\n";
  md << "|---|---|---|---|\n";
  for (const auto& name : apps::paper_app_names()) {
    const sys::AppExperiment& exp = experiments.at(name);
    const bench::PaperReference& ref = bench::paper_reference().at(name);
    md << "| " << name << " | "
       << format_ratio(exp.baseline_app_speedup_vs_sw()) << " ("
       << format_ratio(ref.baseline_app_vs_sw) << ") | "
       << format_ratio(exp.baseline_kernel_speedup_vs_sw()) << " ("
       << format_ratio(ref.baseline_kernel_vs_sw) << ") | "
       << format_ratio(exp.baseline_comm_comp_ratio()) << " |\n";
  }

  // ---- Table III ----
  md << "\n## Table III / Fig. 7 — proposed-system speed-ups\n\n";
  md << "| app | vs SW app | vs SW kernels | vs baseline app | vs "
        "baseline kernels |\n|---|---|---|---|---|\n";
  for (const auto& name : apps::paper_app_names()) {
    const sys::AppExperiment& exp = experiments.at(name);
    const bench::PaperReference& ref = bench::paper_reference().at(name);
    md << "| " << name << " | "
       << format_ratio(exp.proposed_app_speedup_vs_sw()) << " ("
       << format_ratio(ref.proposed_app_vs_sw) << ") | "
       << format_ratio(exp.proposed_kernel_speedup_vs_sw()) << " ("
       << format_ratio(ref.proposed_kernel_vs_sw) << ") | "
       << format_ratio(exp.proposed_app_speedup_vs_baseline()) << " ("
       << format_ratio(ref.proposed_app_vs_baseline) << ") | "
       << format_ratio(exp.proposed_kernel_speedup_vs_baseline()) << " ("
       << format_ratio(ref.proposed_kernel_vs_baseline) << ") |\n";
  }

  // ---- Table IV ----
  md << "\n## Table IV — system resources (LUTs/regs)\n\n";
  md << "| app | baseline | ours | NoC-only | solution |\n";
  md << "|---|---|---|---|---|\n";
  for (const auto& name : apps::paper_app_names()) {
    const sys::AppExperiment& exp = experiments.at(name);
    const auto fmt = [](const core::Resources& r) {
      return std::to_string(r.luts) + "/" + std::to_string(r.regs);
    };
    md << "| " << name << " | " << fmt(exp.baseline_resources) << " | "
       << fmt(exp.proposed_resources) << " | "
       << fmt(exp.noc_only_resources) << " | "
       << exp.proposed_design.solution_tag() << " |\n";
  }

  // ---- Fig. 9 ----
  md << "\n## Fig. 9 — energy vs baseline\n\n";
  md << "| app | energy ratio | saving |\n|---|---|---|\n";
  for (const auto& name : apps::paper_app_names()) {
    const sys::AppExperiment& exp = experiments.at(name);
    md << "| " << name << " | "
       << format_fixed(exp.energy_ratio_vs_baseline(), 3) << " | "
       << format_percent(1.0 - exp.energy_ratio_vs_baseline()) << " |\n";
  }

  // ---- Per-fabric attribution (from the structured ExecTrace) ----
  md << "\n## Per-fabric communication attribution (proposed system)\n\n";
  md << "| app | bus | NoC | shared-mem |\n|---|---|---|---|\n";
  const auto fabric_cell = [](const sys::engine::FabricUsage& usage) {
    if (usage.ops == 0) {
      return std::string("—");
    }
    return format_fixed(usage.busy_seconds * 1e3, 3) + " ms / " +
           std::to_string(usage.bytes) + " B";
  };
  for (const auto& name : apps::paper_app_names()) {
    const sys::engine::ExecTrace& trace = experiments.at(name).proposed.trace;
    md << "| " << name << " | "
       << fabric_cell(trace.usage(sys::engine::Fabric::kBus)) << " | "
       << fabric_cell(trace.usage(sys::engine::Fabric::kNoc)) << " | "
       << fabric_cell(trace.usage(sys::engine::Fabric::kSharedMemory))
       << " |\n";
  }

  // ---- Per-app design + timeline + validation (one job per app; the
  // profile comes from the cache, so this phase does zero re-profiling).
  (void)bench::csv_path("dummy");  // ensure bench_results/ exists
  std::vector<sys::BatchRunner::Job<std::string>> section_jobs;
  for (const auto& name : apps::paper_app_names()) {
    const sys::AppExperiment& exp = experiments.at(name);
    section_jobs.push_back(
        {"report-section/" + name, [&cache, &exp, name](sys::JobContext&) {
           std::ostringstream section;
           section << "\n## Design: " << name << "\n\n```\n";
           const std::shared_ptr<const apps::ProfiledApp> app =
               cache.paper_app(name);
           section << exp.proposed_design.describe(app->graph());
           section << "```\n\n```\n"
                   << sys::render_timeline(exp.proposed) << "```\n";
           const sys::AppSchedule schedule = app->schedule();
           const auto issues =
               core::validate_design(exp.proposed_design, schedule.specs);
           section << "\nvalidation: "
                   << (issues.empty()
                           ? "clean"
                           : "\n```\n" + core::format_issues(issues) + "```")
                   << "\n";
           // Pipelined throughput.
           const sys::PipelineResult pipelined = sys::run_designed_pipelined(
               schedule, exp.proposed_design, sys::PlatformConfig{}, 64);
           section << "\n64-frame pipelined throughput: "
                   << format_fixed(pipelined.throughput_fps(), 0)
                   << " fps (bottleneck: " << pipelined.bottleneck_stage
                   << ")\n";
           // JSON design (distinct file per app; safe to write in
           // parallel).
           const std::string json_path =
               bench::csv_path(name + "_design").substr(
                   0, bench::csv_path(name + "_design").size() - 4) +
               ".json";
           std::ofstream json_out{json_path};
           json_out << core::to_json(exp.proposed_design, schedule.specs);
           section << "\nmachine-readable design: `" << json_path << "`\n";
           return section.str();
         }});
  }
  for (const std::string& section : runner.run(std::move(section_jobs))) {
    md << section;
  }

  // ---- Optional Chrome-trace export (opt-in: JSON files are not part of
  // the committed byte-identical bench_results set).
  if (options.trace) {
    for (const auto& name : apps::paper_app_names()) {
      const sys::AppExperiment& exp = experiments.at(name);
      const std::string trace_path =
          "bench_results/" + name + "_trace.json";
      std::ofstream trace_out{trace_path};
      sys::engine::write_chrome_trace(exp.proposed.trace,
                                      exp.proposed.system_name, trace_out);
      std::cout << "wrote " << trace_path << "\n";
    }
  }

  const std::string path = "bench_results/REPORT.md";
  std::ofstream out{path};
  out << md.str();
  std::cout << "wrote " << path << " ("
            << md.str().size() << " bytes) plus per-app design JSON\n";
  std::cout << "summary: all four applications verified, designs "
               "validated clean, paper shape reproduced (see REPORT.md)\n";
  bench::print_batch_metrics(runner, cache);
  return 0;
}
