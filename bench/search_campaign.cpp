// Search campaign: annealed interconnect synthesis vs Algorithm 1 over
// the four paper applications plus synthetic extremes (dense, sparse,
// duplication-heavy, fat-edge graphs). For every workload the seeded
// annealer (src/search) starts from the greedy design, so the searched
// point dominates-or-matches Algorithm 1 on the (analytic time, LUTs)
// front by construction; this bench measures by HOW MUCH, re-validates
// every incumbent, and proves the determinism contract by re-running the
// search at --threads 1 and N and comparing the records bit-for-bit.
//
// Outputs:
//   bench_results/search_campaign.csv   the Pareto front, one row per
//                                       workload (searched vs greedy)
//   bench_results/REPORT.md             "Search campaign" section
//   BENCH_PR10.json                     the acceptance record: gains,
//                                       dominance, validator issues,
//                                       thread bit-identity
//
// --smoke shrinks restarts/iterations and skips the end-of-run
// cycle-accurate validation so CI can run it per-push; the full run
// cycle-validates the incumbent of every paper app. Always exits 0 on a
// completed sweep: it records, tests gate (tests/test_search.cpp).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/profile_cache.hpp"
#include "apps/synthetic.hpp"
#include "bench/bench_common.hpp"
#include "core/design_validate.hpp"
#include "search/anneal.hpp"
#include "sys/experiment.hpp"
#include "util/csv.hpp"

#include <algorithm>
#include <limits>

namespace {

using namespace hybridic;

struct Options {
  bool smoke = false;
  std::size_t threads = 0;  ///< 0 = hardware concurrency.
};

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--smoke") {
      options.smoke = true;
      continue;
    }
    if (arg == "--threads" && i + 1 < argc) {
      value = argv[++i];
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(std::string("--threads=").size());
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--threads N]\n";
      std::exit(2);
    }
    options.threads = static_cast<std::size_t>(std::stoul(value));
  }
  return options;
}

std::string fmt(double value) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << value;
  return out.str();
}

struct Workload {
  std::string name;
  std::shared_ptr<const apps::ProfiledApp> app;
  bool cycle_validate = false;
};

/// The synthetic extremes: shapes that stress different corners of the
/// move space (pair churn on dense graphs, duplication on dup-heavy
/// ones, mapping remaps when almost nothing is connected).
std::vector<apps::SyntheticConfig> extreme_configs() {
  std::vector<apps::SyntheticConfig> configs;
  {
    apps::SyntheticConfig dense;
    dense.kernel_count = 10;
    dense.kernel_edge_probability = 0.9;
    dense.duplicable_probability = 0.5;
    dense.seed = 11;
    configs.push_back(dense);
  }
  {
    apps::SyntheticConfig sparse;
    sparse.kernel_count = 8;
    sparse.kernel_edge_probability = 0.08;
    sparse.seed = 12;
    configs.push_back(sparse);
  }
  {
    apps::SyntheticConfig dup_heavy;
    dup_heavy.kernel_count = 8;
    dup_heavy.duplicable_probability = 1.0;
    dup_heavy.streaming_probability = 1.0;
    dup_heavy.seed = 13;
    configs.push_back(dup_heavy);
  }
  {
    apps::SyntheticConfig fat_edges;
    fat_edges.kernel_count = 6;
    fat_edges.min_edge_bytes = 256 * 1024;
    fat_edges.max_edge_bytes = 1024 * 1024;
    fat_edges.streaming_probability = 0.0;
    fat_edges.seed = 14;
    configs.push_back(fat_edges);
  }
  return configs;
}

/// One workload's ledger entry.
struct SweepRow {
  std::string name;
  search::SearchRecord record;
  bool dominates_or_matches = false;
  bool threads_identical = false;
  std::size_t validator_issues = 0;  ///< On the searched incumbent.
  bool cycle_checked = false;
  bool cycle_within_band = false;
};

bool records_identical(const search::SearchRecord& a,
                       const search::SearchRecord& b) {
  return a.solution_tag == b.solution_tag &&
         a.analytic_seconds == b.analytic_seconds &&
         a.algorithm1_analytic_seconds == b.algorithm1_analytic_seconds &&
         a.luts == b.luts && a.algorithm1_luts == b.algorithm1_luts &&
         a.gain == b.gain && a.best_restart == b.best_restart &&
         a.proposed == b.proposed && a.accepted == b.accepted &&
         a.rejected_illegal == b.rejected_illegal &&
         a.cache_hits == b.cache_hits;
}

SweepRow sweep_one(const Workload& workload, const Options& options,
                   std::uint32_t restarts, std::uint32_t iterations) {
  const sys::PlatformConfig platform;
  const sys::AppSchedule schedule = workload.app->schedule();
  const core::DesignInput input = sys::make_design_input(schedule, platform);

  search::AnnealOptions sopt;
  sopt.restarts = restarts;
  sopt.iterations = iterations;
  sopt.cycle_validate = workload.cycle_validate;

  // The determinism contract, proved in-bench: the same search at
  // --threads 1 and --threads N must agree on every record field.
  sopt.threads = 1;
  const search::SearchResult serial =
      search::anneal_interconnect(schedule, input, platform, sopt);
  sopt.threads = options.threads == 0
                     ? std::max<std::size_t>(
                           2, std::thread::hardware_concurrency())
                     : options.threads;
  sopt.cycle_validate = false;  // Identity covers the search, not the sim.
  const search::SearchResult parallel =
      search::anneal_interconnect(schedule, input, platform, sopt);

  SweepRow row;
  row.name = workload.name;
  row.record = serial.record();
  row.threads_identical =
      records_identical(row.record, parallel.record()) &&
      serial.best_vars == parallel.best_vars &&
      serial.incumbent_trace == parallel.incumbent_trace;
  row.dominates_or_matches =
      row.record.analytic_seconds <=
          row.record.algorithm1_analytic_seconds &&
      row.record.luts <= row.record.algorithm1_luts;
  row.validator_issues =
      core::validate_design(serial.best, input.kernels).size();
  if (serial.cycle.has_value()) {
    row.cycle_checked = true;
    row.cycle_within_band = serial.cycle->within_band;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  const std::uint32_t restarts = options.smoke ? 2 : 4;
  const std::uint32_t iterations = options.smoke ? 24 : 120;

  apps::ProfileCache cache;
  std::vector<Workload> workloads;
  for (const std::string& name : apps::paper_app_names()) {
    workloads.push_back({name, cache.paper_app(name), !options.smoke});
  }
  for (const apps::SyntheticConfig& config : extreme_configs()) {
    auto app = std::make_shared<apps::ProfiledApp>(
        apps::make_synthetic_app(config));
    workloads.push_back({"synthetic_s" + std::to_string(config.seed),
                         std::move(app), false});
  }

  std::vector<SweepRow> rows;
  rows.reserve(workloads.size());
  for (const Workload& workload : workloads) {
    rows.push_back(sweep_one(workload, options, restarts, iterations));
    const SweepRow& row = rows.back();
    std::cout << row.name << ": alg1 "
              << row.record.algorithm1_analytic_seconds * 1e3
              << " ms / " << row.record.algorithm1_luts << " LUTs -> searched "
              << row.record.analytic_seconds * 1e3 << " ms / "
              << row.record.luts << " LUTs (gain " << row.record.gain
              << "x, " << (row.dominates_or_matches ? "dominates-or-matches"
                                                    : "REGRESSED")
              << ", threads "
              << (row.threads_identical ? "bit-identical" : "DIVERGED")
              << ")\n";
  }

  // Pareto CSV.
  {
    CsvWriter csv{bench::csv_path("search_campaign"),
                  {"workload", "solution", "alg1_analytic_s",
                   "searched_analytic_s", "gain", "alg1_luts",
                   "searched_luts", "best_restart", "proposed", "accepted",
                   "rejected_illegal", "cache_hits", "dominates_or_matches",
                   "threads_identical", "validator_issues"}};
    for (const SweepRow& row : rows) {
      csv.add_row({row.name, row.record.solution_tag,
                   fmt(row.record.algorithm1_analytic_seconds),
                   fmt(row.record.analytic_seconds), fmt(row.record.gain),
                   std::to_string(row.record.algorithm1_luts),
                   std::to_string(row.record.luts),
                   std::to_string(row.record.best_restart),
                   std::to_string(row.record.proposed),
                   std::to_string(row.record.accepted),
                   std::to_string(row.record.rejected_illegal),
                   std::to_string(row.record.cache_hits),
                   row.dominates_or_matches ? "yes" : "no",
                   row.threads_identical ? "yes" : "no",
                   std::to_string(row.validator_issues)});
    }
  }

  // REPORT.md section.
  std::size_t dominated = 0, identical = 0, clean = 0;
  double best_gain = 1.0, gain_sum = 0.0;
  for (const SweepRow& row : rows) {
    dominated += row.dominates_or_matches ? 1 : 0;
    identical += row.threads_identical ? 1 : 0;
    clean += row.validator_issues == 0 ? 1 : 0;
    best_gain = std::max(best_gain, row.record.gain);
    gain_sum += row.record.gain;
  }
  {
    std::ostringstream section;
    section << "## Search campaign (annealed vs Algorithm 1)\n\n"
            << "| workload | solution | alg1 ms | searched ms | gain | "
               "alg1 LUTs | searched LUTs |\n"
            << "|---|---|---|---|---|---|---|\n";
    for (const SweepRow& row : rows) {
      section << "| " << row.name << " | " << row.record.solution_tag
              << " | " << row.record.algorithm1_analytic_seconds * 1e3
              << " | " << row.record.analytic_seconds * 1e3 << " | "
              << row.record.gain << "x | " << row.record.algorithm1_luts
              << " | " << row.record.luts << " |\n";
    }
    section << "\nDominates-or-matches Algorithm 1: " << dominated << "/"
            << rows.size() << ". Thread-count bit-identical: " << identical
            << "/" << rows.size() << ". Validator-clean incumbents: "
            << clean << "/" << rows.size() << ".\n";
    bench::patch_report_section(
        "## Search campaign (annealed vs Algorithm 1)", section.str());
  }

  // The acceptance record.
  {
    std::ofstream json{"BENCH_PR10.json"};
    json << "{\n"
         << "  \"bench\": \"search_campaign\",\n"
         << "  \"pr\": 10,\n"
         << "  \"smoke\": " << (options.smoke ? "true" : "false") << ",\n"
         << "  \"restarts\": " << restarts << ",\n"
         << "  \"iterations\": " << iterations << ",\n"
         << "  \"workloads\": " << rows.size() << ",\n"
         << "  \"dominates_or_matches\": " << dominated << ",\n"
         << "  \"threads_bit_identical\": " << identical << ",\n"
         << "  \"validator_clean\": " << clean << ",\n"
         << "  \"best_gain\": " << best_gain << ",\n"
         << "  \"mean_gain\": "
         << (rows.empty() ? 1.0 : gain_sum / static_cast<double>(rows.size()))
         << ",\n"
         << "  \"entries\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& row = rows[i];
      json << "    {\"workload\": \"" << row.name << "\", \"gain\": "
           << row.record.gain << ", \"alg1_luts\": "
           << row.record.algorithm1_luts << ", \"searched_luts\": "
           << row.record.luts << ", \"dominates_or_matches\": "
           << (row.dominates_or_matches ? "true" : "false")
           << ", \"threads_bit_identical\": "
           << (row.threads_identical ? "true" : "false")
           << ", \"validator_issues\": " << row.validator_issues
           << ", \"cycle_within_band\": "
           << (row.cycle_checked ? (row.cycle_within_band ? "true" : "false")
                                 : "null")
           << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
  }
  std::cout << "wrote " << bench::csv_path("search_campaign")
            << " and BENCH_PR10.json\n";
  return 0;
}
