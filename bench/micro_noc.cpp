// Google-benchmark micro-benchmarks of the NoC substrate: message latency
// and simulation throughput across mesh sizes, payloads and routings.
#include <benchmark/benchmark.h>

#include "noc/network.hpp"
#include "sim/engine.hpp"

namespace {

using namespace hybridic;

const sim::ClockDomain kNocClock{"noc", Frequency::megahertz(150)};

void BM_NocSingleMessage(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  const auto bytes = static_cast<std::uint64_t>(state.range(1));
  for (auto _ : state) {
    sim::Engine engine;
    noc::Network network{"noc", engine, kNocClock,
                         noc::Mesh2D{dim, dim}, noc::NetworkConfig{}};
    network.attach_adapter(0, "src", noc::AdapterKind::kAccelerator);
    network.attach_adapter(dim * dim - 1, "dst",
                           noc::AdapterKind::kLocalMemory);
    Picoseconds delivered{0};
    network.send(0, dim * dim - 1, Bytes{bytes},
                 [&delivered](std::uint64_t, Bytes, Picoseconds at) {
                   delivered = at;
                 });
    engine.run();
    benchmark::DoNotOptimize(delivered);
    state.counters["sim_latency_us"] = delivered.microseconds();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_NocSingleMessage)
    ->Args({2, 1024})
    ->Args({4, 1024})
    ->Args({8, 1024})
    ->Args({4, 65536});

void BM_NocAllToAll(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    noc::Network network{"noc", engine, kNocClock,
                         noc::Mesh2D{dim, dim}, noc::NetworkConfig{}};
    for (std::uint32_t n = 0; n < dim * dim; ++n) {
      network.attach_adapter(n, "n" + std::to_string(n),
                             noc::AdapterKind::kAccelerator);
    }
    int delivered = 0;
    for (std::uint32_t src = 0; src < dim * dim; ++src) {
      for (std::uint32_t dst = 0; dst < dim * dim; ++dst) {
        if (src != dst) {
          network.send(src, dst, Bytes{256},
                       [&delivered](std::uint64_t, Bytes, Picoseconds) {
                         ++delivered;
                       });
        }
      }
    }
    engine.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0) * (state.range(0) * state.range(0) - 1));
}
BENCHMARK(BM_NocAllToAll)->Arg(2)->Arg(3)->Arg(4);

void BM_NocRoutingChoice(benchmark::State& state) {
  const std::string routing = state.range(0) == 0 ? "XY" : "YX";
  for (auto _ : state) {
    sim::Engine engine;
    noc::NetworkConfig config;
    config.routing = routing;
    noc::Network network{"noc", engine, kNocClock, noc::Mesh2D{4, 4},
                         config};
    network.attach_adapter(0, "a", noc::AdapterKind::kAccelerator);
    network.attach_adapter(15, "b", noc::AdapterKind::kLocalMemory);
    network.send(0, 15, Bytes{4096}, {});
    engine.run();
    benchmark::DoNotOptimize(network.stats().flits_ejected);
  }
}
BENCHMARK(BM_NocRoutingChoice)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
