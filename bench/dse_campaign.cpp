// Property-based design-space exploration campaign: sweeps >= 1000
// generated SyntheticConfig design points through profiling, Algorithm 1
// and the tiered evaluation engine (--tier=auto|analytic|cycle; cycle
// rows run all five system variants), checks the invariant oracles per
// design, and shrinks failures into standalone JSON reproducers.
//
// Outputs (full mode):
//   bench_results/dse_campaign.csv       — one row per explored design
//   bench_results/REPORT.md              — a "## Design-space exploration
//                                          campaign" section (idempotent)
//   bench_results/dse_reproducers/*.json — shrunk failure reproducers, if
//                                          any oracle failed (copy into
//                                          tests/fixtures/dse/ to pin them)
// Smoke mode (--smoke, used by CI): a small sweep written to
// bench_results/dse_smoke.csv only; byte-identical across reruns and
// --threads values (every case is sampled from (campaign_seed, index),
// never from time or thread id).
//
// Scaling out (docs/MODEL.md §15): `--store DIR` attaches the persistent
// content-addressed result store (profiles + analytic estimates survive
// restarts and are shared between processes); `--shard i/N` evaluates
// only indices where index % N == i, writing `<name>.shardIofN.csv`.
// `tools/merge_shards.py` reassembles the N shard CSVs into a file
// byte-identical to the unsharded run.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "bench/bench_common.hpp"
#include "dse/campaign.hpp"
#include "store/store.hpp"
#include "util/error.hpp"

namespace {

using namespace hybridic;

// Exit codes follow the PR 4 scheme: 0 ok / 1 failures found / 2 usage /
// 3 config / 5 store error. PR 9 adds 6 (interrupted and drained) and
// 7 (completed with quarantined jobs); 6 beats 7 beats 1.
constexpr int kExitFailures = 1;
constexpr int kExitUsage = 2;
constexpr int kExitConfig = 3;
constexpr int kExitStore = 5;
constexpr int kExitInterrupted = 6;
constexpr int kExitQuarantined = 7;

/// Set (only) by the SIGINT/SIGTERM handler; the campaign polls it as an
/// admission gate, drains in-flight jobs, and flushes the journal.
std::atomic<bool> g_stop{false};

void handle_stop_signal(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

void install_signal_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // No SA_RESTART: the drain must not wait on a retry.
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

struct Options {
  std::size_t threads = 0;
  std::uint64_t count = 1000;
  std::uint64_t seed = 1;
  bool smoke = false;
  tiers::TierMode tier = tiers::TierMode::kCycle;
  std::string store_dir;
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
  /// CI warm-restart smoke: exit kExitStore unless the store served at
  /// least one profile (proves a second --store run actually hits L2).
  bool assert_warm = false;
  std::uint32_t boards = 1;
  std::string board_topology = "chain";
  std::string journal_path;
  bool resume = false;
  double job_timeout = 0.0;
  bool search = false;
  std::uint32_t search_restarts = 2;
  std::uint32_t search_iterations = 60;
};

void print_help(const char* argv0, std::ostream& out) {
  out << "usage: " << argv0
      << " [--threads N] [--count N] [--seed S]"
      << " [--tier auto|analytic|cycle] [--smoke]"
      << " [--store DIR] [--shard I/N] [--assert-warm]"
      << " [--boards N] [--board-topology chain|ring|mesh]"
      << " [--journal FILE] [--resume] [--job-timeout S]\n"
      << "       [--search anneal] [--search-restarts N]"
      << " [--search-iterations N]\n"
      << "\n"
      << "Property-based design-space exploration campaign: sweeps\n"
      << "generated design points through profiling, Algorithm 1 and the\n"
      << "tiered evaluation engine, checks the invariant oracles, and\n"
      << "shrinks failures into JSON reproducers.\n"
      << "\n"
      << "  --threads N     worker threads (0 = hardware concurrency)\n"
      << "  --count N       design points to sweep (default 1000; 32 with"
      << " --smoke)\n"
      << "  --seed S        campaign seed (default 1)\n"
      << "  --tier MODE     auto | analytic | cycle (default cycle)\n"
      << "  --smoke         small CI sweep -> bench_results/dse_smoke.csv\n"
      << "  --store DIR     persistent content-addressed result store\n"
      << "  --shard I/N     evaluate only indices with index % N == I\n"
      << "  --assert-warm   fail unless the store served >= 1 hit\n"
      << "  --boards N      sample board counts in [1, N]; N > 1 runs the\n"
      << "                  two-level multi-board design on sampled rows\n"
      << "  --board-topology chain|ring|mesh   inter-board network shape\n"
      << "  --journal FILE  append-only run journal: every settled design\n"
      << "                  is checkpointed the moment it completes\n"
      << "  --resume        skip designs already journaled for this exact\n"
      << "                  campaign (requires --journal)\n"
      << "  --job-timeout S wall-clock watchdog per design; a design that\n"
      << "                  exceeds it is quarantined, not retried\n"
      << "  --search anneal run the seeded annealer on every design and\n"
      << "                  record it next to Algorithm 1 (searched_* CSV\n"
      << "                  columns + the REPORT Pareto section)\n"
      << "  --search-restarts N    annealer restarts per design"
      << " (default 2)\n"
      << "  --search-iterations N  annealer iterations per restart"
      << " (default 60)\n"
      << "  --version       print the engine revision and exit 0\n"
      << "  --help          print this help and exit 0\n"
      << "\n"
      << "SIGINT/SIGTERM stop admission, drain in-flight designs, flush\n"
      << "the journal, and exit 6; a later --resume run continues where\n"
      << "the drain stopped.\n"
      << "\n"
      << "Exit codes:\n"
      << "  0  campaign completed, every oracle passed\n"
      << "  1  campaign completed with oracle failures (or errors)\n"
      << "  2  usage error: unknown flag or malformed value\n"
      << "  3  semantic configuration error\n"
      << "  5  store error: --store directory unusable (or --assert-warm"
      << " cold)\n"
      << "  6  interrupted by SIGINT/SIGTERM and drained cleanly\n"
      << "  7  campaign completed but quarantined >= 1 poison design\n";
}

void usage(const char* argv0) {
  print_help(argv0, std::cerr);
  std::exit(kExitUsage);
}

Options parse(int argc, char** argv) {
  Options options;
  bool count_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& flag) -> std::string {
      if (arg == flag && i + 1 < argc) {
        return argv[++i];
      }
      if (arg.rfind(flag + "=", 0) == 0) {
        return arg.substr(flag.size() + 1);
      }
      return "";
    };
    if (arg == "--help") {
      print_help(argv[0], std::cout);
      std::exit(0);
    }
    if (arg == "--version") {
      std::cout << "dse_campaign engine revision "
                << store::kEngineRevision << "\n";
      std::exit(0);
    }
    if (arg == "--resume") {
      options.resume = true;
      continue;
    }
    if (arg == "--smoke") {
      options.smoke = true;
      continue;
    }
    if (arg == "--assert-warm") {
      options.assert_warm = true;
      continue;
    }
    if (std::string v = value_of("--threads"); !v.empty()) {
      options.threads = static_cast<std::size_t>(std::stoul(v));
      continue;
    }
    if (std::string v = value_of("--count"); !v.empty()) {
      options.count = std::stoull(v);
      count_given = true;
      continue;
    }
    if (std::string v = value_of("--seed"); !v.empty()) {
      options.seed = std::stoull(v);
      continue;
    }
    if (std::string v = value_of("--store"); !v.empty()) {
      options.store_dir = v;
      continue;
    }
    if (std::string v = value_of("--journal"); !v.empty()) {
      options.journal_path = v;
      continue;
    }
    if (std::string v = value_of("--job-timeout"); !v.empty()) {
      try {
        options.job_timeout = std::stod(v);
      } catch (const std::exception&) {
        options.job_timeout = -1.0;
      }
      if (!(options.job_timeout > 0.0)) {
        std::cerr << "--job-timeout expects a positive number of seconds, "
                     "got '"
                  << v << "'\n";
        std::exit(kExitUsage);
      }
      continue;
    }
    if (std::string v = value_of("--shard"); !v.empty()) {
      const std::size_t slash = v.find('/');
      if (slash == std::string::npos || slash == 0 ||
          slash + 1 >= v.size()) {
        std::cerr << "--shard expects I/N (e.g. --shard 0/2)\n";
        std::exit(kExitUsage);
      }
      try {
        options.shard_index = std::stoull(v.substr(0, slash));
        options.shard_count = std::stoull(v.substr(slash + 1));
      } catch (const std::exception&) {
        std::cerr << "--shard expects I/N (e.g. --shard 0/2)\n";
        std::exit(kExitUsage);
      }
      if (options.shard_count == 0 ||
          options.shard_index >= options.shard_count) {
        std::cerr << "--shard " << v << ": need 0 <= I < N\n";
        std::exit(kExitUsage);
      }
      continue;
    }
    if (std::string v = value_of("--tier"); !v.empty()) {
      if (const auto mode = tiers::parse_tier_mode(v)) {
        options.tier = *mode;
        continue;
      }
      std::cerr << "unknown --tier value '" << v
                << "' (expected auto, analytic, or cycle)\n";
      std::exit(kExitUsage);
    }
    if (std::string v = value_of("--search"); !v.empty()) {
      if (v != "anneal") {
        std::cerr << "unknown --search value '" << v
                  << "' (expected anneal)\n";
        std::exit(kExitUsage);
      }
      options.search = true;
      continue;
    }
    if (std::string v = value_of("--search-restarts"); !v.empty()) {
      try {
        options.search_restarts = static_cast<std::uint32_t>(std::stoul(v));
      } catch (const std::exception&) {
        options.search_restarts = 0;
      }
      if (options.search_restarts == 0) {
        std::cerr << "--search-restarts expects a positive integer, got '"
                  << v << "'\n";
        std::exit(kExitUsage);
      }
      continue;
    }
    if (std::string v = value_of("--search-iterations"); !v.empty()) {
      try {
        options.search_iterations =
            static_cast<std::uint32_t>(std::stoul(v));
      } catch (const std::exception&) {
        options.search_iterations = 0;
      }
      if (options.search_iterations == 0) {
        std::cerr << "--search-iterations expects a positive integer, got '"
                  << v << "'\n";
        std::exit(kExitUsage);
      }
      continue;
    }
    if (std::string v = value_of("--boards"); !v.empty()) {
      try {
        options.boards = static_cast<std::uint32_t>(std::stoul(v));
      } catch (const std::exception&) {
        options.boards = 0;
      }
      if (options.boards == 0) {
        std::cerr << "--boards expects a positive integer, got '" << v
                  << "'\n";
        std::exit(kExitUsage);
      }
      continue;
    }
    if (std::string v = value_of("--board-topology"); !v.empty()) {
      if (v != "chain" && v != "ring" && v != "mesh") {
        std::cerr << "unknown --board-topology value '" << v
                  << "' (expected chain, ring, or mesh)\n";
        std::exit(kExitUsage);
      }
      options.board_topology = v;
      continue;
    }
    std::cerr << "unknown flag '" << arg << "'\n";
    usage(argv[0]);
  }
  if (options.smoke && !count_given) {
    options.count = 32;
  }
  if (options.shard_count > 1 && options.tier == tiers::TierMode::kAuto) {
    // Auto-mode escalation selection is global; a shard cannot rank
    // against estimates it never computed.
    std::cerr << "--shard requires --tier=analytic or --tier=cycle\n";
    std::exit(kExitUsage);
  }
  if (options.resume && options.journal_path.empty()) {
    std::cerr << "--resume requires --journal FILE\n";
    std::exit(kExitUsage);
  }
  if (!options.journal_path.empty() &&
      options.tier == tiers::TierMode::kAuto) {
    // Same global-selection problem as sharding: a resumed run would
    // rank escalations against a different survivor set.
    std::cerr << "--journal requires --tier=analytic or --tier=cycle\n";
    std::exit(kExitUsage);
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);
  install_signal_handlers();

  dse::CampaignOptions campaign;
  campaign.count = options.count;
  campaign.campaign_seed = options.seed;
  campaign.threads = options.threads;
  campaign.tier = options.tier;
  campaign.store_dir = options.store_dir;
  campaign.shard_index = options.shard_index;
  campaign.shard_count = options.shard_count;
  campaign.journal_path = options.journal_path;
  campaign.resume = options.resume;
  campaign.job_timeout_seconds = options.job_timeout;
  campaign.search = options.search;
  campaign.search_restarts = options.search_restarts;
  campaign.search_iterations = options.search_iterations;
  campaign.stop_requested = &g_stop;
  // Test harness hook: HYBRIDIC_WEDGE_INDEX=N wedges design N forever,
  // exercising the watchdog/quarantine path from the real binary. The
  // abandoned thread sleeps until process exit.
  if (const char* wedge_env = std::getenv("HYBRIDIC_WEDGE_INDEX")) {
    const std::uint64_t wedge_index = std::stoull(wedge_env);
    campaign.job_started_hook = [wedge_index](std::uint64_t index) {
      while (index == wedge_index) {
        std::this_thread::sleep_for(std::chrono::seconds(3600));
      }
    };
  }
  if (options.boards > 1) {
    campaign.space.min_boards = 1;
    campaign.space.max_boards = options.boards;
    campaign.space.board_topologies = {options.board_topology};
  }
  if (options.smoke) {
    // CI smoke: keep the sweep cheap and skip shrinking (a shrink run
    // re-executes the pipeline dozens of times).
    campaign.space.max_kernels = 6;
    campaign.max_shrinks = 0;
  }

  const auto t0 = std::chrono::steady_clock::now();
  dse::CampaignResult result;
  try {
    result = dse::run_campaign(campaign);
  } catch (const store::StoreError& e) {
    std::cerr << "store error: " << e.what() << "\n";
    return kExitStore;
  } catch (const ConfigError& e) {
    std::cerr << "config error: " << e.what() << "\n";
    return kExitConfig;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::uint64_t failures = 0;
  for (const auto& outcome : result.cases) {
    if (!outcome.all_pass()) {
      ++failures;
    }
  }

  const dse::TierStats& tiers_ran = result.tier_stats;
  std::cout << "tier=" << tiers::to_string(campaign.tier) << " analytic="
            << tiers_ran.analytic_evals << " cycle=" << tiers_ran.cycle_evals
            << " band_violations=" << tiers_ran.band_violations << " elapsed="
            << elapsed << "s ("
            << (elapsed > 0.0
                    ? static_cast<double>(result.cases.size()) / elapsed
                    : 0.0)
            << " designs/s)\n";
  if (options.shard_count > 1) {
    std::cout << "shard " << options.shard_index << "/"
              << options.shard_count << ": " << result.cases.size()
              << " of " << options.count << " designs\n";
  }
  if (!options.journal_path.empty()) {
    std::cout << "journal " << options.journal_path
              << ": resumed=" << result.resumed_count
              << " quarantined=" << result.quarantined_count
              << " drained=" << result.skipped_count
              << " damaged_lines=" << result.journal_skipped_lines << "\n";
  }
  if (result.interrupted) {
    std::cout << "interrupted: admission stopped, in-flight designs "
                 "drained, journal flushed ("
              << result.skipped_count << " designs not started)\n";
  }

  // Live cache/store counters: stdout only — they vary with thread count,
  // shard split, and store warmth, so they never enter the CSV/REPORT.
  const apps::ProfileCacheStats& pc = result.profile_cache_stats;
  std::cout << "profile_cache hits=" << pc.hits << " misses=" << pc.misses
            << " l2_hits=" << pc.l2_hits << " l2_stores=" << pc.l2_stores
            << " evictions=" << pc.evictions << " resident_entries="
            << pc.entries << " resident_bytes=" << pc.resident_bytes
            << "\n";
  std::cout << "estimate_l2 hits=" << result.estimate_l2_hits
            << " stores=" << result.estimate_l2_stores << "\n";
  if (result.store_stats.has_value()) {
    const store::StoreStats& ss = *result.store_stats;
    std::cout << "store puts=" << ss.puts << " hits=" << ss.hits
              << " misses=" << ss.misses << " corrupt=" << ss.corrupt_entries
              << "\n";
  }
  if (options.assert_warm) {
    if (!result.store_stats.has_value() ||
        result.store_stats->hits == 0) {
      std::cerr << "--assert-warm: the store served zero hits (expected a "
                   "warm restart to reuse persisted artifacts)\n";
      return kExitStore;
    }
    std::cout << "warm restart confirmed: " << result.store_stats->hits
              << " store hits\n";
  }

  // Shard runs suffix their CSV so N concurrent shards (sharing one
  // store) never clobber each other; the merge tool globs the suffix.
  const auto shard_name = [&options](const std::string& base) {
    if (options.shard_count <= 1) {
      return base;
    }
    return base + ".shard" + std::to_string(options.shard_index) + "of" +
           std::to_string(options.shard_count);
  };

  if (options.smoke) {
    const std::string path = bench::csv_path(shard_name("dse_smoke"));
    std::ofstream out{path};
    out << dse::campaign_csv(result);
    std::cout << "wrote " << path << " (" << result.cases.size()
              << " designs, " << failures << " with failures)\n";
    // Smoke skips oracle shrinking (max_shrinks 0) but still pins poison
    // designs: quarantine reproducers bypass that budget.
    const std::vector<std::string> saved = dse::save_reproducers(
        result, "bench_results/dse_reproducers");
    for (const std::string& p : saved) {
      std::cout << "shrunk reproducer: " << p << "\n";
    }
  } else {
    const std::string path = bench::csv_path(shard_name("dse_campaign"));
    std::ofstream out{path};
    out << dse::campaign_csv(result);
    if (options.shard_count <= 1) {
      bench::patch_report_section(dse::campaign_section_marker(),
                                  dse::campaign_markdown(result, campaign));
    }
    const std::vector<std::string> saved = dse::save_reproducers(
        result, "bench_results/dse_reproducers");
    std::cout << "wrote " << path << " (" << result.cases.size()
              << " designs, " << failures << " with failures)"
              << (options.shard_count <= 1
                      ? " and the REPORT.md campaign section"
                      : "")
              << "\n";
    for (const std::string& p : saved) {
      std::cout << "shrunk reproducer: " << p << "\n";
    }
  }
  // Precedence: a drain outranks quarantine outranks oracle failures —
  // the caller must first learn the run is incomplete, then that some
  // designs never produced a verdict, then the verdicts themselves.
  if (result.interrupted) {
    return kExitInterrupted;
  }
  if (result.quarantined_count > 0) {
    return kExitQuarantined;
  }
  return failures == 0 ? 0 : kExitFailures;
}
