// Property-based design-space exploration campaign: sweeps >= 1000
// generated SyntheticConfig design points through profiling, Algorithm 1
// and the tiered evaluation engine (--tier=auto|analytic|cycle; cycle
// rows run all five system variants), checks the invariant oracles per
// design, and shrinks failures into standalone JSON reproducers.
//
// Outputs (full mode):
//   bench_results/dse_campaign.csv       — one row per explored design
//   bench_results/REPORT.md              — a "## Design-space exploration
//                                          campaign" section (idempotent)
//   bench_results/dse_reproducers/*.json — shrunk failure reproducers, if
//                                          any oracle failed (copy into
//                                          tests/fixtures/dse/ to pin them)
// Smoke mode (--smoke, used by CI): a small sweep written to
// bench_results/dse_smoke.csv only; byte-identical across reruns and
// --threads values (every case is sampled from (campaign_seed, index),
// never from time or thread id).
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "dse/campaign.hpp"

namespace {

using namespace hybridic;

struct Options {
  std::size_t threads = 0;
  std::uint64_t count = 1000;
  std::uint64_t seed = 1;
  bool smoke = false;
  tiers::TierMode tier = tiers::TierMode::kCycle;
};

Options parse(int argc, char** argv) {
  Options options;
  bool count_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& flag) -> std::string {
      if (arg == flag && i + 1 < argc) {
        return argv[++i];
      }
      if (arg.rfind(flag + "=", 0) == 0) {
        return arg.substr(flag.size() + 1);
      }
      return "";
    };
    if (arg == "--smoke") {
      options.smoke = true;
      continue;
    }
    if (std::string v = value_of("--threads"); !v.empty()) {
      options.threads = static_cast<std::size_t>(std::stoul(v));
      continue;
    }
    if (std::string v = value_of("--count"); !v.empty()) {
      options.count = std::stoull(v);
      count_given = true;
      continue;
    }
    if (std::string v = value_of("--seed"); !v.empty()) {
      options.seed = std::stoull(v);
      continue;
    }
    if (std::string v = value_of("--tier"); !v.empty()) {
      if (const auto mode = tiers::parse_tier_mode(v)) {
        options.tier = *mode;
        continue;
      }
      std::cerr << "unknown --tier value '" << v
                << "' (expected auto, analytic, or cycle)\n";
      std::exit(2);
    }
    std::cerr << "usage: " << argv[0]
              << " [--threads N] [--count N] [--seed S]"
              << " [--tier auto|analytic|cycle] [--smoke]\n";
    std::exit(2);
  }
  if (options.smoke && !count_given) {
    options.count = 32;
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);

  dse::CampaignOptions campaign;
  campaign.count = options.count;
  campaign.campaign_seed = options.seed;
  campaign.threads = options.threads;
  campaign.tier = options.tier;
  if (options.smoke) {
    // CI smoke: keep the sweep cheap and skip shrinking (a shrink run
    // re-executes the pipeline dozens of times).
    campaign.space.max_kernels = 6;
    campaign.max_shrinks = 0;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const dse::CampaignResult result = dse::run_campaign(campaign);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::uint64_t failures = 0;
  for (const auto& outcome : result.cases) {
    if (!outcome.all_pass()) {
      ++failures;
    }
  }

  const dse::TierStats& tiers_ran = result.tier_stats;
  std::cout << "tier=" << tiers::to_string(campaign.tier) << " analytic="
            << tiers_ran.analytic_evals << " cycle=" << tiers_ran.cycle_evals
            << " band_violations=" << tiers_ran.band_violations << " elapsed="
            << elapsed << "s ("
            << (elapsed > 0.0
                    ? static_cast<double>(result.cases.size()) / elapsed
                    : 0.0)
            << " designs/s)\n";

  if (options.smoke) {
    const std::string path = bench::csv_path("dse_smoke");
    std::ofstream out{path};
    out << dse::campaign_csv(result);
    std::cout << "wrote " << path << " (" << result.cases.size()
              << " designs, " << failures << " with failures)\n";
  } else {
    std::ofstream out{bench::csv_path("dse_campaign")};
    out << dse::campaign_csv(result);
    bench::patch_report_section(dse::campaign_section_marker(),
                                dse::campaign_markdown(result, campaign));
    const std::vector<std::string> saved = dse::save_reproducers(
        result, "bench_results/dse_reproducers");
    std::cout << "wrote bench_results/dse_campaign.csv ("
              << result.cases.size() << " designs, " << failures
              << " with failures) and the REPORT.md campaign section\n";
    for (const std::string& path : saved) {
      std::cout << "shrunk reproducer: " << path << "\n";
    }
  }
  return failures == 0 ? 0 : 1;
}
