// Ablation sweeps:
//  1. Bus-throughput (θ) sweep — how the proposed system's advantage over
//     the baseline shrinks as the system bus gets faster (burst support),
//     locating the crossover where a custom interconnect stops paying off.
//  2. NoC packet-size sweep — jpeg runtime sensitivity to the maximum
//     packet payload (serialization vs per-packet overhead).
//  3. Streaming-overhead (O) sweep — when case-1/2 pipelining stops being
//     selected by the design algorithm.
//
// Every sweep point is an independent batch-runner job. The jpeg profile
// is config-independent (θ, packet size, and O only affect design and
// simulation), so all 16 points share one cached profiling pass — the
// first job misses, the other 15 hit, and no point re-runs the
// shadow-memory analysis. Rows are aggregated in submission order, so
// tables and CSVs are byte-identical at any --threads value.
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/interconnect_design.hpp"

namespace {

using namespace hybridic;

/// One rendered sweep point: already formatted table + CSV cells.
struct SweepRow {
  std::vector<std::string> table_cells;
  std::vector<std::string> csv_cells;
};

/// The jpeg schedule for one sweep job, served from the profile cache.
sys::AppSchedule jpeg_schedule(apps::ProfileCache& cache,
                               std::shared_ptr<const apps::ProfiledApp>& keep) {
  keep = cache.paper_app("jpeg");
  return keep->schedule();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  apps::ProfileCache cache;
  sys::BatchRunner runner{options.threads};

  std::vector<sys::BatchRunner::Job<SweepRow>> jobs;

  // ---- 1. Bus burst-length sweep. ----
  const std::vector<std::uint32_t> burst_beats{1U, 2U, 4U, 8U, 16U, 64U};
  for (const std::uint32_t beats : burst_beats) {
    jobs.push_back({"sweep/bus-theta/beats=" + std::to_string(beats),
                    [&cache, beats](sys::JobContext&) {
                      std::shared_ptr<const apps::ProfiledApp> app;
                      const sys::AppSchedule schedule =
                          jpeg_schedule(cache, app);
                      sys::PlatformConfig config;
                      config.bus.max_burst_beats = beats;
                      core::DesignInput input =
                          sys::make_design_input(schedule, config);
                      const core::DesignResult design =
                          core::design_interconnect(input);
                      const sys::RunResult baseline =
                          sys::run_baseline(schedule, config);
                      const sys::RunResult proposed =
                          sys::run_designed(schedule, design, config);
                      const double speedup =
                          baseline.total_seconds / proposed.total_seconds;
                      SweepRow row;
                      row.table_cells = {
                          std::to_string(beats),
                          format_fixed(input.theta.seconds_per_byte * 1e9, 2),
                          format_fixed(baseline.total_seconds * 1e3, 3),
                          format_fixed(proposed.total_seconds * 1e3, 3),
                          format_ratio(speedup)};
                      row.csv_cells = {
                          std::to_string(beats),
                          format_fixed(input.theta.seconds_per_byte * 1e9, 3),
                          format_fixed(baseline.total_seconds, 6),
                          format_fixed(proposed.total_seconds, 6),
                          format_fixed(speedup, 3)};
                      return row;
                    }});
  }

  // ---- 2. NoC packet-size sweep. ----
  const std::vector<std::uint32_t> payloads{16U, 64U, 256U, 1024U, 4096U};
  for (const std::uint32_t payload : payloads) {
    jobs.push_back({"sweep/noc-packet/payload=" + std::to_string(payload),
                    [&cache, payload](sys::JobContext&) {
                      std::shared_ptr<const apps::ProfiledApp> app;
                      const sys::AppSchedule schedule =
                          jpeg_schedule(cache, app);
                      sys::PlatformConfig config;
                      config.noc.max_packet_payload_bytes = payload;
                      core::DesignInput input =
                          sys::make_design_input(schedule, config);
                      const core::DesignResult design =
                          core::design_interconnect(input);
                      const sys::RunResult proposed =
                          sys::run_designed(schedule, design, config);
                      SweepRow row;
                      row.table_cells = {
                          std::to_string(payload),
                          format_fixed(proposed.total_seconds * 1e3, 3)};
                      row.csv_cells = {
                          std::to_string(payload),
                          format_fixed(proposed.total_seconds, 6)};
                      return row;
                    }});
  }

  // ---- 3. Streaming-overhead sweep. ----
  const std::vector<double> overheads_us{1.0, 15.0, 60.0, 250.0, 2000.0};
  for (const double o_us : overheads_us) {
    jobs.push_back(
        {"sweep/stream-overhead/o_us=" + format_fixed(o_us, 1),
         [&cache, o_us](sys::JobContext&) {
           std::shared_ptr<const apps::ProfiledApp> app;
           const sys::AppSchedule schedule = jpeg_schedule(cache, app);
           sys::PlatformConfig config;
           config.stream_overhead_seconds = o_us * 1e-6;
           core::DesignInput input =
               sys::make_design_input(schedule, config);
           const core::DesignResult design =
               core::design_interconnect(input);
           const sys::RunResult proposed =
               sys::run_designed(schedule, design, config);
           SweepRow row;
           row.table_cells = {
               format_fixed(o_us, 0),
               std::to_string(design.parallel.host_pipelined.size()),
               std::to_string(design.parallel.streamed.size()),
               format_fixed(proposed.total_seconds * 1e3, 3)};
           row.csv_cells = {
               format_fixed(o_us, 1),
               std::to_string(design.parallel.host_pipelined.size()),
               std::to_string(design.parallel.streamed.size()),
               format_fixed(proposed.total_seconds, 6)};
           return row;
         }});
  }

  const std::vector<SweepRow> rows = runner.run(std::move(jobs));
  std::size_t next = 0;

  {
    Table table{"Sweep — bus burst length (effective θ) vs speed-up"};
    table.set_header({"burst beats", "theta ns/B", "baseline ms",
                      "proposed ms", "speed-up"});
    CsvWriter csv{bench::csv_path("sweep_bus_theta"),
                  {"burst_beats", "theta_ns_per_byte", "baseline_seconds",
                   "proposed_seconds", "speedup"}};
    for (std::size_t i = 0; i < burst_beats.size(); ++i, ++next) {
      table.add_row(rows[next].table_cells);
      csv.add_row(rows[next].csv_cells);
    }
    table.render(std::cout);
    std::cout << "takeaway: the slower the system bus, the more the "
                 "custom interconnect pays off; with deep bursts the gap "
                 "narrows toward the compute bound\n\n";
  }

  {
    Table table{"Sweep — NoC max packet payload vs jpeg runtime"};
    table.set_header({"payload B", "proposed ms"});
    CsvWriter csv{bench::csv_path("sweep_noc_packet"),
                  {"payload_bytes", "proposed_seconds"}};
    for (std::size_t i = 0; i < payloads.size(); ++i, ++next) {
      table.add_row(rows[next].table_cells);
      csv.add_row(rows[next].csv_cells);
    }
    table.render(std::cout);
    std::cout << "\n";
  }

  {
    Table table{"Sweep — streaming overhead O vs parallel decisions"};
    table.set_header({"O (us)", "case-1 instances", "case-2 edges",
                      "proposed ms"});
    CsvWriter csv{bench::csv_path("sweep_stream_overhead"),
                  {"overhead_us", "case1", "case2", "proposed_seconds"}};
    for (std::size_t i = 0; i < overheads_us.size(); ++i, ++next) {
      table.add_row(rows[next].table_cells);
      csv.add_row(rows[next].csv_cells);
    }
    table.render(std::cout);
    std::cout << "takeaway: with large O the algorithm stops selecting the "
                 "parallel solutions (Δp1/Δp2 <= 0), exactly per the "
                 "paper's §IV-A3 conditions\n";
  }
  bench::print_batch_metrics(runner, cache);
  return 0;
}
