// Ablation sweeps:
//  1. Bus-throughput (θ) sweep — how the proposed system's advantage over
//     the baseline shrinks as the system bus gets faster (burst support),
//     locating the crossover where a custom interconnect stops paying off.
//  2. NoC packet-size sweep — jpeg runtime sensitivity to the maximum
//     packet payload (serialization vs per-packet overhead).
//  3. Streaming-overhead (O) sweep — when case-1/2 pipelining stops being
//     selected by the design algorithm.
#include <iostream>

#include "apps/jpeg.hpp"
#include "bench/bench_common.hpp"
#include "core/interconnect_design.hpp"

int main() {
  using namespace hybridic;
  const apps::ProfiledApp jpeg = apps::run_jpeg(apps::JpegConfig{});
  const sys::AppSchedule schedule = jpeg.schedule();

  // ---- 1. Bus burst-length sweep. ----
  {
    Table table{"Sweep — bus burst length (effective θ) vs speed-up"};
    table.set_header({"burst beats", "theta ns/B", "baseline ms",
                      "proposed ms", "speed-up"});
    CsvWriter csv{bench::csv_path("sweep_bus_theta"),
                  {"burst_beats", "theta_ns_per_byte", "baseline_seconds",
                   "proposed_seconds", "speedup"}};
    for (const std::uint32_t beats : {1U, 2U, 4U, 8U, 16U, 64U}) {
      sys::PlatformConfig config;
      config.bus.max_burst_beats = beats;
      core::DesignInput input = sys::make_design_input(schedule, config);
      const core::DesignResult design = core::design_interconnect(input);
      const sys::RunResult baseline = sys::run_baseline(schedule, config);
      const sys::RunResult proposed =
          sys::run_designed(schedule, design, config);
      const double speedup =
          baseline.total_seconds / proposed.total_seconds;
      table.add_row({std::to_string(beats),
                     format_fixed(input.theta.seconds_per_byte * 1e9, 2),
                     format_fixed(baseline.total_seconds * 1e3, 3),
                     format_fixed(proposed.total_seconds * 1e3, 3),
                     format_ratio(speedup)});
      csv.add_row({std::to_string(beats),
                   format_fixed(input.theta.seconds_per_byte * 1e9, 3),
                   format_fixed(baseline.total_seconds, 6),
                   format_fixed(proposed.total_seconds, 6),
                   format_fixed(speedup, 3)});
    }
    table.render(std::cout);
    std::cout << "takeaway: the slower the system bus, the more the "
                 "custom interconnect pays off; with deep bursts the gap "
                 "narrows toward the compute bound\n\n";
  }

  // ---- 2. NoC packet-size sweep. ----
  {
    Table table{"Sweep — NoC max packet payload vs jpeg runtime"};
    table.set_header({"payload B", "proposed ms"});
    CsvWriter csv{bench::csv_path("sweep_noc_packet"),
                  {"payload_bytes", "proposed_seconds"}};
    for (const std::uint32_t payload : {16U, 64U, 256U, 1024U, 4096U}) {
      sys::PlatformConfig config;
      config.noc.max_packet_payload_bytes = payload;
      core::DesignInput input = sys::make_design_input(schedule, config);
      const core::DesignResult design = core::design_interconnect(input);
      const sys::RunResult proposed =
          sys::run_designed(schedule, design, config);
      table.add_row({std::to_string(payload),
                     format_fixed(proposed.total_seconds * 1e3, 3)});
      csv.add_row({std::to_string(payload),
                   format_fixed(proposed.total_seconds, 6)});
    }
    table.render(std::cout);
    std::cout << "\n";
  }

  // ---- 3. Streaming-overhead sweep. ----
  {
    Table table{"Sweep — streaming overhead O vs parallel decisions"};
    table.set_header({"O (us)", "case-1 instances", "case-2 edges",
                      "proposed ms"});
    CsvWriter csv{bench::csv_path("sweep_stream_overhead"),
                  {"overhead_us", "case1", "case2", "proposed_seconds"}};
    for (const double o_us : {1.0, 15.0, 60.0, 250.0, 2000.0}) {
      sys::PlatformConfig config;
      config.stream_overhead_seconds = o_us * 1e-6;
      core::DesignInput input = sys::make_design_input(schedule, config);
      const core::DesignResult design = core::design_interconnect(input);
      const sys::RunResult proposed =
          sys::run_designed(schedule, design, config);
      table.add_row({format_fixed(o_us, 0),
                     std::to_string(design.parallel.host_pipelined.size()),
                     std::to_string(design.parallel.streamed.size()),
                     format_fixed(proposed.total_seconds * 1e3, 3)});
      csv.add_row({format_fixed(o_us, 1),
                   std::to_string(design.parallel.host_pipelined.size()),
                   std::to_string(design.parallel.streamed.size()),
                   format_fixed(proposed.total_seconds, 6)});
    }
    table.render(std::cout);
    std::cout << "takeaway: with large O the algorithm stops selecting the "
                 "parallel solutions (Δp1/Δp2 <= 0), exactly per the "
                 "paper's §IV-A3 conditions\n";
  }
  return 0;
}
