// Figure 6: the hybrid custom interconnect Algorithm 1 produces for the
// jpeg decoder — duplication of huff_ac_dec, the dquantz/j_rev_dct shared
// local memory, and the NoC attachment/mapping of the remaining kernels.
#include <iostream>

#include "apps/jpeg.hpp"
#include "bench/bench_common.hpp"
#include "core/interconnect_design.hpp"

int main() {
  using namespace hybridic;
  const apps::ProfiledApp app = apps::run_jpeg(apps::JpegConfig{});
  const sys::AppSchedule schedule = app.schedule();
  const core::DesignInput input =
      sys::make_design_input(schedule, sys::PlatformConfig{});
  const core::DesignResult design = core::design_interconnect(input);

  std::cout << "== Figure 6 — proposed system for the jpeg decoder ==\n\n";
  std::cout << design.describe(app.graph());

  Table table{"Adaptive mapping per kernel instance (Table I applied)"};
  table.set_header({"instance", "communication", "interconnect",
                    "paper expectation"});
  CsvWriter csv{bench::csv_path("fig6_jpeg_design"),
                {"instance", "comm_class", "mapping"}};
  const auto expectation = [](const std::string& name) -> std::string {
    if (name == "huff_dc_dec") {
      return "{R2,S1} -> {K2,M1}";
    }
    if (name.rfind("huff_ac_dec", 0) == 0) {
      return "{R3,S1} -> {K2,M3} (mux on BRAM)";
    }
    if (name == "dquantz_lum") {
      return "memory on NoC (pair producer)";
    }
    if (name == "j_rev_dct") {
      return "bus only + crossbar (pair consumer)";
    }
    return "";
  };
  for (const core::KernelInstance& inst : design.instances) {
    table.add_row({inst.name, core::to_string(inst.comm_class),
                   core::to_string(inst.mapping),
                   expectation(inst.name)});
    csv.add_row({inst.name, core::to_string(inst.comm_class),
                 core::to_string(inst.mapping)});
  }
  table.render(std::cout);

  std::cout << "\nanalytical estimate: baseline "
            << format_fixed(design.estimate.baseline_seconds * 1e3, 3)
            << " ms -> proposed "
            << format_fixed(design.estimate.proposed_seconds() * 1e3, 3)
            << " ms (Δsm "
            << format_fixed(design.estimate.delta_shared_memory_seconds * 1e6,
                            1)
            << " us, Δnoc "
            << format_fixed(design.estimate.delta_noc_seconds * 1e6, 1)
            << " us, Δparallel "
            << format_fixed(design.estimate.delta_parallel_seconds * 1e6, 1)
            << " us, Δdup "
            << format_fixed(design.estimate.delta_duplication_seconds * 1e6,
                            1)
            << " us)\n";
  return 0;
}
