# Empty dependencies file for test_crossbar_system.
# This may be replaced when dependencies are built.
