file(REMOVE_RECURSE
  "CMakeFiles/test_crossbar_system.dir/test_crossbar_system.cpp.o"
  "CMakeFiles/test_crossbar_system.dir/test_crossbar_system.cpp.o.d"
  "test_crossbar_system"
  "test_crossbar_system.pdb"
  "test_crossbar_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crossbar_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
