file(REMOVE_RECURSE
  "CMakeFiles/test_jpeg_codec.dir/test_jpeg_codec.cpp.o"
  "CMakeFiles/test_jpeg_codec.dir/test_jpeg_codec.cpp.o.d"
  "test_jpeg_codec"
  "test_jpeg_codec.pdb"
  "test_jpeg_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jpeg_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
