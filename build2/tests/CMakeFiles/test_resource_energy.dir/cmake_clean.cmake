file(REMOVE_RECURSE
  "CMakeFiles/test_resource_energy.dir/test_resource_energy.cpp.o"
  "CMakeFiles/test_resource_energy.dir/test_resource_energy.cpp.o.d"
  "test_resource_energy"
  "test_resource_energy.pdb"
  "test_resource_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resource_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
