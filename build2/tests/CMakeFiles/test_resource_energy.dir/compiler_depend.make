# Empty compiler generated dependencies file for test_resource_energy.
# This may be replaced when dependencies are built.
