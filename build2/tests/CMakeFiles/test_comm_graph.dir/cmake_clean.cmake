file(REMOVE_RECURSE
  "CMakeFiles/test_comm_graph.dir/test_comm_graph.cpp.o"
  "CMakeFiles/test_comm_graph.dir/test_comm_graph.cpp.o.d"
  "test_comm_graph"
  "test_comm_graph.pdb"
  "test_comm_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
