file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_memory.dir/test_shadow_memory.cpp.o"
  "CMakeFiles/test_shadow_memory.dir/test_shadow_memory.cpp.o.d"
  "test_shadow_memory"
  "test_shadow_memory.pdb"
  "test_shadow_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
