file(REMOVE_RECURSE
  "CMakeFiles/test_log_platform.dir/test_log_platform.cpp.o"
  "CMakeFiles/test_log_platform.dir/test_log_platform.cpp.o.d"
  "test_log_platform"
  "test_log_platform.pdb"
  "test_log_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_log_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
