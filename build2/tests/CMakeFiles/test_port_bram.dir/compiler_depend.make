# Empty compiler generated dependencies file for test_port_bram.
# This may be replaced when dependencies are built.
