file(REMOVE_RECURSE
  "CMakeFiles/test_port_bram.dir/test_port_bram.cpp.o"
  "CMakeFiles/test_port_bram.dir/test_port_bram.cpp.o.d"
  "test_port_bram"
  "test_port_bram.pdb"
  "test_port_bram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_port_bram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
