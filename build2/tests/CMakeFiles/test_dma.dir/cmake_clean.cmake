file(REMOVE_RECURSE
  "CMakeFiles/test_dma.dir/test_dma.cpp.o"
  "CMakeFiles/test_dma.dir/test_dma.cpp.o.d"
  "test_dma"
  "test_dma.pdb"
  "test_dma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
