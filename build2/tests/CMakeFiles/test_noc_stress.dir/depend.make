# Empty dependencies file for test_noc_stress.
# This may be replaced when dependencies are built.
