file(REMOVE_RECURSE
  "CMakeFiles/test_noc_stress.dir/test_noc_stress.cpp.o"
  "CMakeFiles/test_noc_stress.dir/test_noc_stress.cpp.o.d"
  "test_noc_stress"
  "test_noc_stress.pdb"
  "test_noc_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
