# Empty compiler generated dependencies file for test_crossbar_mux.
# This may be replaced when dependencies are built.
