file(REMOVE_RECURSE
  "CMakeFiles/test_crossbar_mux.dir/test_crossbar_mux.cpp.o"
  "CMakeFiles/test_crossbar_mux.dir/test_crossbar_mux.cpp.o.d"
  "test_crossbar_mux"
  "test_crossbar_mux.pdb"
  "test_crossbar_mux[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crossbar_mux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
