# Empty dependencies file for test_vcd_stats.
# This may be replaced when dependencies are built.
