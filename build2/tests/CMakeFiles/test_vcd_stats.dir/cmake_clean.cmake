file(REMOVE_RECURSE
  "CMakeFiles/test_vcd_stats.dir/test_vcd_stats.cpp.o"
  "CMakeFiles/test_vcd_stats.dir/test_vcd_stats.cpp.o.d"
  "test_vcd_stats"
  "test_vcd_stats.pdb"
  "test_vcd_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vcd_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
