file(REMOVE_RECURSE
  "CMakeFiles/test_executor_semantics.dir/test_executor_semantics.cpp.o"
  "CMakeFiles/test_executor_semantics.dir/test_executor_semantics.cpp.o.d"
  "test_executor_semantics"
  "test_executor_semantics.pdb"
  "test_executor_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
