file(REMOVE_RECURSE
  "CMakeFiles/test_tracked.dir/test_tracked.cpp.o"
  "CMakeFiles/test_tracked.dir/test_tracked.cpp.o.d"
  "test_tracked"
  "test_tracked.pdb"
  "test_tracked[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
