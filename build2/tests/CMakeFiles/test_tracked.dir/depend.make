# Empty dependencies file for test_tracked.
# This may be replaced when dependencies are built.
