# Empty compiler generated dependencies file for test_classify_mapping.
# This may be replaced when dependencies are built.
