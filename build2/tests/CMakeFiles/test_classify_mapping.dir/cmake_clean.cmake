file(REMOVE_RECURSE
  "CMakeFiles/test_classify_mapping.dir/test_classify_mapping.cpp.o"
  "CMakeFiles/test_classify_mapping.dir/test_classify_mapping.cpp.o.d"
  "test_classify_mapping"
  "test_classify_mapping.pdb"
  "test_classify_mapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classify_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
