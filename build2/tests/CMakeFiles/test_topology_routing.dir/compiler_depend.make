# Empty compiler generated dependencies file for test_topology_routing.
# This may be replaced when dependencies are built.
