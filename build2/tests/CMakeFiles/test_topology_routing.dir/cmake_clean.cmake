file(REMOVE_RECURSE
  "CMakeFiles/test_topology_routing.dir/test_topology_routing.cpp.o"
  "CMakeFiles/test_topology_routing.dir/test_topology_routing.cpp.o.d"
  "test_topology_routing"
  "test_topology_routing.pdb"
  "test_topology_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
