file(REMOVE_RECURSE
  "CMakeFiles/test_sdram.dir/test_sdram.cpp.o"
  "CMakeFiles/test_sdram.dir/test_sdram.cpp.o.d"
  "test_sdram"
  "test_sdram.pdb"
  "test_sdram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
