# Empty compiler generated dependencies file for test_sdram.
# This may be replaced when dependencies are built.
