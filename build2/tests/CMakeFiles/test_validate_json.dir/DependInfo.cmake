
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_validate_json.cpp" "tests/CMakeFiles/test_validate_json.dir/test_validate_json.cpp.o" "gcc" "tests/CMakeFiles/test_validate_json.dir/test_validate_json.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/apps/CMakeFiles/hybridic_apps.dir/DependInfo.cmake"
  "/root/repo/build2/src/reconfig/CMakeFiles/hybridic_reconfig.dir/DependInfo.cmake"
  "/root/repo/build2/src/sys/CMakeFiles/hybridic_sys.dir/DependInfo.cmake"
  "/root/repo/build2/src/core/CMakeFiles/hybridic_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/prof/CMakeFiles/hybridic_prof.dir/DependInfo.cmake"
  "/root/repo/build2/src/bus/CMakeFiles/hybridic_bus.dir/DependInfo.cmake"
  "/root/repo/build2/src/noc/CMakeFiles/hybridic_noc.dir/DependInfo.cmake"
  "/root/repo/build2/src/mem/CMakeFiles/hybridic_mem.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/hybridic_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/hybridic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
