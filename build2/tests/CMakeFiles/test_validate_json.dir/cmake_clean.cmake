file(REMOVE_RECURSE
  "CMakeFiles/test_validate_json.dir/test_validate_json.cpp.o"
  "CMakeFiles/test_validate_json.dir/test_validate_json.cpp.o.d"
  "test_validate_json"
  "test_validate_json.pdb"
  "test_validate_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_validate_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
