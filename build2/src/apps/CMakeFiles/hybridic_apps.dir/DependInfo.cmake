
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cpp" "src/apps/CMakeFiles/hybridic_apps.dir/app.cpp.o" "gcc" "src/apps/CMakeFiles/hybridic_apps.dir/app.cpp.o.d"
  "/root/repo/src/apps/canny.cpp" "src/apps/CMakeFiles/hybridic_apps.dir/canny.cpp.o" "gcc" "src/apps/CMakeFiles/hybridic_apps.dir/canny.cpp.o.d"
  "/root/repo/src/apps/fluid.cpp" "src/apps/CMakeFiles/hybridic_apps.dir/fluid.cpp.o" "gcc" "src/apps/CMakeFiles/hybridic_apps.dir/fluid.cpp.o.d"
  "/root/repo/src/apps/jpeg.cpp" "src/apps/CMakeFiles/hybridic_apps.dir/jpeg.cpp.o" "gcc" "src/apps/CMakeFiles/hybridic_apps.dir/jpeg.cpp.o.d"
  "/root/repo/src/apps/jpeg_bitstream.cpp" "src/apps/CMakeFiles/hybridic_apps.dir/jpeg_bitstream.cpp.o" "gcc" "src/apps/CMakeFiles/hybridic_apps.dir/jpeg_bitstream.cpp.o.d"
  "/root/repo/src/apps/jpeg_codec.cpp" "src/apps/CMakeFiles/hybridic_apps.dir/jpeg_codec.cpp.o" "gcc" "src/apps/CMakeFiles/hybridic_apps.dir/jpeg_codec.cpp.o.d"
  "/root/repo/src/apps/klt.cpp" "src/apps/CMakeFiles/hybridic_apps.dir/klt.cpp.o" "gcc" "src/apps/CMakeFiles/hybridic_apps.dir/klt.cpp.o.d"
  "/root/repo/src/apps/synthetic.cpp" "src/apps/CMakeFiles/hybridic_apps.dir/synthetic.cpp.o" "gcc" "src/apps/CMakeFiles/hybridic_apps.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/sys/CMakeFiles/hybridic_sys.dir/DependInfo.cmake"
  "/root/repo/build2/src/prof/CMakeFiles/hybridic_prof.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/hybridic_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/core/CMakeFiles/hybridic_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/bus/CMakeFiles/hybridic_bus.dir/DependInfo.cmake"
  "/root/repo/build2/src/noc/CMakeFiles/hybridic_noc.dir/DependInfo.cmake"
  "/root/repo/build2/src/mem/CMakeFiles/hybridic_mem.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/hybridic_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
