file(REMOVE_RECURSE
  "CMakeFiles/hybridic_apps.dir/app.cpp.o"
  "CMakeFiles/hybridic_apps.dir/app.cpp.o.d"
  "CMakeFiles/hybridic_apps.dir/canny.cpp.o"
  "CMakeFiles/hybridic_apps.dir/canny.cpp.o.d"
  "CMakeFiles/hybridic_apps.dir/fluid.cpp.o"
  "CMakeFiles/hybridic_apps.dir/fluid.cpp.o.d"
  "CMakeFiles/hybridic_apps.dir/jpeg.cpp.o"
  "CMakeFiles/hybridic_apps.dir/jpeg.cpp.o.d"
  "CMakeFiles/hybridic_apps.dir/jpeg_bitstream.cpp.o"
  "CMakeFiles/hybridic_apps.dir/jpeg_bitstream.cpp.o.d"
  "CMakeFiles/hybridic_apps.dir/jpeg_codec.cpp.o"
  "CMakeFiles/hybridic_apps.dir/jpeg_codec.cpp.o.d"
  "CMakeFiles/hybridic_apps.dir/klt.cpp.o"
  "CMakeFiles/hybridic_apps.dir/klt.cpp.o.d"
  "CMakeFiles/hybridic_apps.dir/synthetic.cpp.o"
  "CMakeFiles/hybridic_apps.dir/synthetic.cpp.o.d"
  "libhybridic_apps.a"
  "libhybridic_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridic_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
