file(REMOVE_RECURSE
  "libhybridic_apps.a"
)
