# Empty dependencies file for hybridic_apps.
# This may be replaced when dependencies are built.
