
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_mapping.cpp" "src/core/CMakeFiles/hybridic_core.dir/adaptive_mapping.cpp.o" "gcc" "src/core/CMakeFiles/hybridic_core.dir/adaptive_mapping.cpp.o.d"
  "/root/repo/src/core/comm_classify.cpp" "src/core/CMakeFiles/hybridic_core.dir/comm_classify.cpp.o" "gcc" "src/core/CMakeFiles/hybridic_core.dir/comm_classify.cpp.o.d"
  "/root/repo/src/core/design_result.cpp" "src/core/CMakeFiles/hybridic_core.dir/design_result.cpp.o" "gcc" "src/core/CMakeFiles/hybridic_core.dir/design_result.cpp.o.d"
  "/root/repo/src/core/design_validate.cpp" "src/core/CMakeFiles/hybridic_core.dir/design_validate.cpp.o" "gcc" "src/core/CMakeFiles/hybridic_core.dir/design_validate.cpp.o.d"
  "/root/repo/src/core/energy_model.cpp" "src/core/CMakeFiles/hybridic_core.dir/energy_model.cpp.o" "gcc" "src/core/CMakeFiles/hybridic_core.dir/energy_model.cpp.o.d"
  "/root/repo/src/core/interconnect_design.cpp" "src/core/CMakeFiles/hybridic_core.dir/interconnect_design.cpp.o" "gcc" "src/core/CMakeFiles/hybridic_core.dir/interconnect_design.cpp.o.d"
  "/root/repo/src/core/json_export.cpp" "src/core/CMakeFiles/hybridic_core.dir/json_export.cpp.o" "gcc" "src/core/CMakeFiles/hybridic_core.dir/json_export.cpp.o.d"
  "/root/repo/src/core/kernel_model.cpp" "src/core/CMakeFiles/hybridic_core.dir/kernel_model.cpp.o" "gcc" "src/core/CMakeFiles/hybridic_core.dir/kernel_model.cpp.o.d"
  "/root/repo/src/core/noc_placement.cpp" "src/core/CMakeFiles/hybridic_core.dir/noc_placement.cpp.o" "gcc" "src/core/CMakeFiles/hybridic_core.dir/noc_placement.cpp.o.d"
  "/root/repo/src/core/perf_model.cpp" "src/core/CMakeFiles/hybridic_core.dir/perf_model.cpp.o" "gcc" "src/core/CMakeFiles/hybridic_core.dir/perf_model.cpp.o.d"
  "/root/repo/src/core/resource_model.cpp" "src/core/CMakeFiles/hybridic_core.dir/resource_model.cpp.o" "gcc" "src/core/CMakeFiles/hybridic_core.dir/resource_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/prof/CMakeFiles/hybridic_prof.dir/DependInfo.cmake"
  "/root/repo/build2/src/mem/CMakeFiles/hybridic_mem.dir/DependInfo.cmake"
  "/root/repo/build2/src/noc/CMakeFiles/hybridic_noc.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/hybridic_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/hybridic_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
