file(REMOVE_RECURSE
  "CMakeFiles/hybridic_core.dir/adaptive_mapping.cpp.o"
  "CMakeFiles/hybridic_core.dir/adaptive_mapping.cpp.o.d"
  "CMakeFiles/hybridic_core.dir/comm_classify.cpp.o"
  "CMakeFiles/hybridic_core.dir/comm_classify.cpp.o.d"
  "CMakeFiles/hybridic_core.dir/design_result.cpp.o"
  "CMakeFiles/hybridic_core.dir/design_result.cpp.o.d"
  "CMakeFiles/hybridic_core.dir/design_validate.cpp.o"
  "CMakeFiles/hybridic_core.dir/design_validate.cpp.o.d"
  "CMakeFiles/hybridic_core.dir/energy_model.cpp.o"
  "CMakeFiles/hybridic_core.dir/energy_model.cpp.o.d"
  "CMakeFiles/hybridic_core.dir/interconnect_design.cpp.o"
  "CMakeFiles/hybridic_core.dir/interconnect_design.cpp.o.d"
  "CMakeFiles/hybridic_core.dir/json_export.cpp.o"
  "CMakeFiles/hybridic_core.dir/json_export.cpp.o.d"
  "CMakeFiles/hybridic_core.dir/kernel_model.cpp.o"
  "CMakeFiles/hybridic_core.dir/kernel_model.cpp.o.d"
  "CMakeFiles/hybridic_core.dir/noc_placement.cpp.o"
  "CMakeFiles/hybridic_core.dir/noc_placement.cpp.o.d"
  "CMakeFiles/hybridic_core.dir/perf_model.cpp.o"
  "CMakeFiles/hybridic_core.dir/perf_model.cpp.o.d"
  "CMakeFiles/hybridic_core.dir/resource_model.cpp.o"
  "CMakeFiles/hybridic_core.dir/resource_model.cpp.o.d"
  "libhybridic_core.a"
  "libhybridic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
