# Empty dependencies file for hybridic_core.
# This may be replaced when dependencies are built.
