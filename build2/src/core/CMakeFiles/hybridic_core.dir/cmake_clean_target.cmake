file(REMOVE_RECURSE
  "libhybridic_core.a"
)
