file(REMOVE_RECURSE
  "libhybridic_reconfig.a"
)
