file(REMOVE_RECURSE
  "CMakeFiles/hybridic_reconfig.dir/bitstream_model.cpp.o"
  "CMakeFiles/hybridic_reconfig.dir/bitstream_model.cpp.o.d"
  "CMakeFiles/hybridic_reconfig.dir/multi_app.cpp.o"
  "CMakeFiles/hybridic_reconfig.dir/multi_app.cpp.o.d"
  "libhybridic_reconfig.a"
  "libhybridic_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridic_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
