# Empty dependencies file for hybridic_reconfig.
# This may be replaced when dependencies are built.
