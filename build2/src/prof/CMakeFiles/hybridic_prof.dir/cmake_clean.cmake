file(REMOVE_RECURSE
  "CMakeFiles/hybridic_prof.dir/comm_graph.cpp.o"
  "CMakeFiles/hybridic_prof.dir/comm_graph.cpp.o.d"
  "CMakeFiles/hybridic_prof.dir/dot_export.cpp.o"
  "CMakeFiles/hybridic_prof.dir/dot_export.cpp.o.d"
  "CMakeFiles/hybridic_prof.dir/quad.cpp.o"
  "CMakeFiles/hybridic_prof.dir/quad.cpp.o.d"
  "CMakeFiles/hybridic_prof.dir/shadow_memory.cpp.o"
  "CMakeFiles/hybridic_prof.dir/shadow_memory.cpp.o.d"
  "libhybridic_prof.a"
  "libhybridic_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridic_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
