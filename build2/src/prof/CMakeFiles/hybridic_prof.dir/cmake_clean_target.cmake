file(REMOVE_RECURSE
  "libhybridic_prof.a"
)
