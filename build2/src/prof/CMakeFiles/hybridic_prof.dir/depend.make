# Empty dependencies file for hybridic_prof.
# This may be replaced when dependencies are built.
