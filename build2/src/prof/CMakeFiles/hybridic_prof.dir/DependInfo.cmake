
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prof/comm_graph.cpp" "src/prof/CMakeFiles/hybridic_prof.dir/comm_graph.cpp.o" "gcc" "src/prof/CMakeFiles/hybridic_prof.dir/comm_graph.cpp.o.d"
  "/root/repo/src/prof/dot_export.cpp" "src/prof/CMakeFiles/hybridic_prof.dir/dot_export.cpp.o" "gcc" "src/prof/CMakeFiles/hybridic_prof.dir/dot_export.cpp.o.d"
  "/root/repo/src/prof/quad.cpp" "src/prof/CMakeFiles/hybridic_prof.dir/quad.cpp.o" "gcc" "src/prof/CMakeFiles/hybridic_prof.dir/quad.cpp.o.d"
  "/root/repo/src/prof/shadow_memory.cpp" "src/prof/CMakeFiles/hybridic_prof.dir/shadow_memory.cpp.o" "gcc" "src/prof/CMakeFiles/hybridic_prof.dir/shadow_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/util/CMakeFiles/hybridic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
