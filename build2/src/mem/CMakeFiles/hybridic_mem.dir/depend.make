# Empty dependencies file for hybridic_mem.
# This may be replaced when dependencies are built.
