
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/bram.cpp" "src/mem/CMakeFiles/hybridic_mem.dir/bram.cpp.o" "gcc" "src/mem/CMakeFiles/hybridic_mem.dir/bram.cpp.o.d"
  "/root/repo/src/mem/crossbar.cpp" "src/mem/CMakeFiles/hybridic_mem.dir/crossbar.cpp.o" "gcc" "src/mem/CMakeFiles/hybridic_mem.dir/crossbar.cpp.o.d"
  "/root/repo/src/mem/full_crossbar.cpp" "src/mem/CMakeFiles/hybridic_mem.dir/full_crossbar.cpp.o" "gcc" "src/mem/CMakeFiles/hybridic_mem.dir/full_crossbar.cpp.o.d"
  "/root/repo/src/mem/mux.cpp" "src/mem/CMakeFiles/hybridic_mem.dir/mux.cpp.o" "gcc" "src/mem/CMakeFiles/hybridic_mem.dir/mux.cpp.o.d"
  "/root/repo/src/mem/port.cpp" "src/mem/CMakeFiles/hybridic_mem.dir/port.cpp.o" "gcc" "src/mem/CMakeFiles/hybridic_mem.dir/port.cpp.o.d"
  "/root/repo/src/mem/sdram.cpp" "src/mem/CMakeFiles/hybridic_mem.dir/sdram.cpp.o" "gcc" "src/mem/CMakeFiles/hybridic_mem.dir/sdram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/sim/CMakeFiles/hybridic_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/hybridic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
