file(REMOVE_RECURSE
  "libhybridic_mem.a"
)
