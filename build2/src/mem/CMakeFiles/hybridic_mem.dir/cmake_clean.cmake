file(REMOVE_RECURSE
  "CMakeFiles/hybridic_mem.dir/bram.cpp.o"
  "CMakeFiles/hybridic_mem.dir/bram.cpp.o.d"
  "CMakeFiles/hybridic_mem.dir/crossbar.cpp.o"
  "CMakeFiles/hybridic_mem.dir/crossbar.cpp.o.d"
  "CMakeFiles/hybridic_mem.dir/full_crossbar.cpp.o"
  "CMakeFiles/hybridic_mem.dir/full_crossbar.cpp.o.d"
  "CMakeFiles/hybridic_mem.dir/mux.cpp.o"
  "CMakeFiles/hybridic_mem.dir/mux.cpp.o.d"
  "CMakeFiles/hybridic_mem.dir/port.cpp.o"
  "CMakeFiles/hybridic_mem.dir/port.cpp.o.d"
  "CMakeFiles/hybridic_mem.dir/sdram.cpp.o"
  "CMakeFiles/hybridic_mem.dir/sdram.cpp.o.d"
  "libhybridic_mem.a"
  "libhybridic_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridic_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
