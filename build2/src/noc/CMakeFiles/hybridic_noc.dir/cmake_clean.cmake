file(REMOVE_RECURSE
  "CMakeFiles/hybridic_noc.dir/adapter.cpp.o"
  "CMakeFiles/hybridic_noc.dir/adapter.cpp.o.d"
  "CMakeFiles/hybridic_noc.dir/network.cpp.o"
  "CMakeFiles/hybridic_noc.dir/network.cpp.o.d"
  "CMakeFiles/hybridic_noc.dir/router.cpp.o"
  "CMakeFiles/hybridic_noc.dir/router.cpp.o.d"
  "CMakeFiles/hybridic_noc.dir/routing.cpp.o"
  "CMakeFiles/hybridic_noc.dir/routing.cpp.o.d"
  "CMakeFiles/hybridic_noc.dir/topology.cpp.o"
  "CMakeFiles/hybridic_noc.dir/topology.cpp.o.d"
  "CMakeFiles/hybridic_noc.dir/vcd_trace.cpp.o"
  "CMakeFiles/hybridic_noc.dir/vcd_trace.cpp.o.d"
  "libhybridic_noc.a"
  "libhybridic_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridic_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
