
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/adapter.cpp" "src/noc/CMakeFiles/hybridic_noc.dir/adapter.cpp.o" "gcc" "src/noc/CMakeFiles/hybridic_noc.dir/adapter.cpp.o.d"
  "/root/repo/src/noc/network.cpp" "src/noc/CMakeFiles/hybridic_noc.dir/network.cpp.o" "gcc" "src/noc/CMakeFiles/hybridic_noc.dir/network.cpp.o.d"
  "/root/repo/src/noc/router.cpp" "src/noc/CMakeFiles/hybridic_noc.dir/router.cpp.o" "gcc" "src/noc/CMakeFiles/hybridic_noc.dir/router.cpp.o.d"
  "/root/repo/src/noc/routing.cpp" "src/noc/CMakeFiles/hybridic_noc.dir/routing.cpp.o" "gcc" "src/noc/CMakeFiles/hybridic_noc.dir/routing.cpp.o.d"
  "/root/repo/src/noc/topology.cpp" "src/noc/CMakeFiles/hybridic_noc.dir/topology.cpp.o" "gcc" "src/noc/CMakeFiles/hybridic_noc.dir/topology.cpp.o.d"
  "/root/repo/src/noc/vcd_trace.cpp" "src/noc/CMakeFiles/hybridic_noc.dir/vcd_trace.cpp.o" "gcc" "src/noc/CMakeFiles/hybridic_noc.dir/vcd_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/sim/CMakeFiles/hybridic_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/hybridic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
