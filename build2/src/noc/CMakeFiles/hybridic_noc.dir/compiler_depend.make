# Empty compiler generated dependencies file for hybridic_noc.
# This may be replaced when dependencies are built.
