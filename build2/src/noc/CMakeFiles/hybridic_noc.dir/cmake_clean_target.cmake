file(REMOVE_RECURSE
  "libhybridic_noc.a"
)
