file(REMOVE_RECURSE
  "CMakeFiles/hybridic_util.dir/csv.cpp.o"
  "CMakeFiles/hybridic_util.dir/csv.cpp.o.d"
  "CMakeFiles/hybridic_util.dir/log.cpp.o"
  "CMakeFiles/hybridic_util.dir/log.cpp.o.d"
  "CMakeFiles/hybridic_util.dir/table.cpp.o"
  "CMakeFiles/hybridic_util.dir/table.cpp.o.d"
  "CMakeFiles/hybridic_util.dir/units.cpp.o"
  "CMakeFiles/hybridic_util.dir/units.cpp.o.d"
  "libhybridic_util.a"
  "libhybridic_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridic_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
