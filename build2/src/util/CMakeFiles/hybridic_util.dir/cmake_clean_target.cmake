file(REMOVE_RECURSE
  "libhybridic_util.a"
)
