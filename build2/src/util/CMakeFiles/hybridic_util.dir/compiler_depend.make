# Empty compiler generated dependencies file for hybridic_util.
# This may be replaced when dependencies are built.
