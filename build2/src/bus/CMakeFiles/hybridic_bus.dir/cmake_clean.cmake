file(REMOVE_RECURSE
  "CMakeFiles/hybridic_bus.dir/arbiter.cpp.o"
  "CMakeFiles/hybridic_bus.dir/arbiter.cpp.o.d"
  "CMakeFiles/hybridic_bus.dir/bus.cpp.o"
  "CMakeFiles/hybridic_bus.dir/bus.cpp.o.d"
  "CMakeFiles/hybridic_bus.dir/dma.cpp.o"
  "CMakeFiles/hybridic_bus.dir/dma.cpp.o.d"
  "libhybridic_bus.a"
  "libhybridic_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridic_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
