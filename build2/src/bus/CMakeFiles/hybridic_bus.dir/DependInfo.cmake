
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bus/arbiter.cpp" "src/bus/CMakeFiles/hybridic_bus.dir/arbiter.cpp.o" "gcc" "src/bus/CMakeFiles/hybridic_bus.dir/arbiter.cpp.o.d"
  "/root/repo/src/bus/bus.cpp" "src/bus/CMakeFiles/hybridic_bus.dir/bus.cpp.o" "gcc" "src/bus/CMakeFiles/hybridic_bus.dir/bus.cpp.o.d"
  "/root/repo/src/bus/dma.cpp" "src/bus/CMakeFiles/hybridic_bus.dir/dma.cpp.o" "gcc" "src/bus/CMakeFiles/hybridic_bus.dir/dma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/sim/CMakeFiles/hybridic_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/mem/CMakeFiles/hybridic_mem.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/hybridic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
