file(REMOVE_RECURSE
  "libhybridic_bus.a"
)
