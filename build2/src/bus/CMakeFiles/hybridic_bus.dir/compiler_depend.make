# Empty compiler generated dependencies file for hybridic_bus.
# This may be replaced when dependencies are built.
