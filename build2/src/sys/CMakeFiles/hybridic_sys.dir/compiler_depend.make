# Empty compiler generated dependencies file for hybridic_sys.
# This may be replaced when dependencies are built.
