file(REMOVE_RECURSE
  "CMakeFiles/hybridic_sys.dir/crossbar_system.cpp.o"
  "CMakeFiles/hybridic_sys.dir/crossbar_system.cpp.o.d"
  "CMakeFiles/hybridic_sys.dir/executor.cpp.o"
  "CMakeFiles/hybridic_sys.dir/executor.cpp.o.d"
  "CMakeFiles/hybridic_sys.dir/experiment.cpp.o"
  "CMakeFiles/hybridic_sys.dir/experiment.cpp.o.d"
  "CMakeFiles/hybridic_sys.dir/pipeline_executor.cpp.o"
  "CMakeFiles/hybridic_sys.dir/pipeline_executor.cpp.o.d"
  "CMakeFiles/hybridic_sys.dir/platform.cpp.o"
  "CMakeFiles/hybridic_sys.dir/platform.cpp.o.d"
  "CMakeFiles/hybridic_sys.dir/schedule.cpp.o"
  "CMakeFiles/hybridic_sys.dir/schedule.cpp.o.d"
  "CMakeFiles/hybridic_sys.dir/timeline.cpp.o"
  "CMakeFiles/hybridic_sys.dir/timeline.cpp.o.d"
  "libhybridic_sys.a"
  "libhybridic_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridic_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
