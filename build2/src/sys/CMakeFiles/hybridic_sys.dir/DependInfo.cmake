
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sys/crossbar_system.cpp" "src/sys/CMakeFiles/hybridic_sys.dir/crossbar_system.cpp.o" "gcc" "src/sys/CMakeFiles/hybridic_sys.dir/crossbar_system.cpp.o.d"
  "/root/repo/src/sys/executor.cpp" "src/sys/CMakeFiles/hybridic_sys.dir/executor.cpp.o" "gcc" "src/sys/CMakeFiles/hybridic_sys.dir/executor.cpp.o.d"
  "/root/repo/src/sys/experiment.cpp" "src/sys/CMakeFiles/hybridic_sys.dir/experiment.cpp.o" "gcc" "src/sys/CMakeFiles/hybridic_sys.dir/experiment.cpp.o.d"
  "/root/repo/src/sys/pipeline_executor.cpp" "src/sys/CMakeFiles/hybridic_sys.dir/pipeline_executor.cpp.o" "gcc" "src/sys/CMakeFiles/hybridic_sys.dir/pipeline_executor.cpp.o.d"
  "/root/repo/src/sys/platform.cpp" "src/sys/CMakeFiles/hybridic_sys.dir/platform.cpp.o" "gcc" "src/sys/CMakeFiles/hybridic_sys.dir/platform.cpp.o.d"
  "/root/repo/src/sys/schedule.cpp" "src/sys/CMakeFiles/hybridic_sys.dir/schedule.cpp.o" "gcc" "src/sys/CMakeFiles/hybridic_sys.dir/schedule.cpp.o.d"
  "/root/repo/src/sys/timeline.cpp" "src/sys/CMakeFiles/hybridic_sys.dir/timeline.cpp.o" "gcc" "src/sys/CMakeFiles/hybridic_sys.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/core/CMakeFiles/hybridic_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/bus/CMakeFiles/hybridic_bus.dir/DependInfo.cmake"
  "/root/repo/build2/src/noc/CMakeFiles/hybridic_noc.dir/DependInfo.cmake"
  "/root/repo/build2/src/mem/CMakeFiles/hybridic_mem.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/hybridic_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/prof/CMakeFiles/hybridic_prof.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/hybridic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
