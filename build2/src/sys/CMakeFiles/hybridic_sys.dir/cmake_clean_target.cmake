file(REMOVE_RECURSE
  "libhybridic_sys.a"
)
