file(REMOVE_RECURSE
  "libhybridic_sim.a"
)
