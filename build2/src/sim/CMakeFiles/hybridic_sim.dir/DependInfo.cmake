
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/hybridic_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/hybridic_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/event.cpp" "src/sim/CMakeFiles/hybridic_sim.dir/event.cpp.o" "gcc" "src/sim/CMakeFiles/hybridic_sim.dir/event.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/hybridic_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/hybridic_sim.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/util/CMakeFiles/hybridic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
