file(REMOVE_RECURSE
  "CMakeFiles/hybridic_sim.dir/engine.cpp.o"
  "CMakeFiles/hybridic_sim.dir/engine.cpp.o.d"
  "CMakeFiles/hybridic_sim.dir/event.cpp.o"
  "CMakeFiles/hybridic_sim.dir/event.cpp.o.d"
  "CMakeFiles/hybridic_sim.dir/stats.cpp.o"
  "CMakeFiles/hybridic_sim.dir/stats.cpp.o.d"
  "libhybridic_sim.a"
  "libhybridic_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridic_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
