# Empty compiler generated dependencies file for hybridic_sim.
# This may be replaced when dependencies are built.
