# Empty compiler generated dependencies file for micro_profiler.
# This may be replaced when dependencies are built.
