file(REMOVE_RECURSE
  "CMakeFiles/micro_profiler.dir/micro_profiler.cpp.o"
  "CMakeFiles/micro_profiler.dir/micro_profiler.cpp.o.d"
  "micro_profiler"
  "micro_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
