file(REMOVE_RECURSE
  "CMakeFiles/ext_frame_pipeline.dir/ext_frame_pipeline.cpp.o"
  "CMakeFiles/ext_frame_pipeline.dir/ext_frame_pipeline.cpp.o.d"
  "ext_frame_pipeline"
  "ext_frame_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_frame_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
