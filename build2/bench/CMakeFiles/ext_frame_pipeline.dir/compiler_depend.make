# Empty compiler generated dependencies file for ext_frame_pipeline.
# This may be replaced when dependencies are built.
