# Empty dependencies file for fig8_interconnect_ratio.
# This may be replaced when dependencies are built.
