file(REMOVE_RECURSE
  "CMakeFiles/fig8_interconnect_ratio.dir/fig8_interconnect_ratio.cpp.o"
  "CMakeFiles/fig8_interconnect_ratio.dir/fig8_interconnect_ratio.cpp.o.d"
  "fig8_interconnect_ratio"
  "fig8_interconnect_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_interconnect_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
