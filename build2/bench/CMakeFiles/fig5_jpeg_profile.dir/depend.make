# Empty dependencies file for fig5_jpeg_profile.
# This may be replaced when dependencies are built.
