file(REMOVE_RECURSE
  "CMakeFiles/fig5_jpeg_profile.dir/fig5_jpeg_profile.cpp.o"
  "CMakeFiles/fig5_jpeg_profile.dir/fig5_jpeg_profile.cpp.o.d"
  "fig5_jpeg_profile"
  "fig5_jpeg_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_jpeg_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
