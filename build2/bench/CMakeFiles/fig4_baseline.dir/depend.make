# Empty dependencies file for fig4_baseline.
# This may be replaced when dependencies are built.
