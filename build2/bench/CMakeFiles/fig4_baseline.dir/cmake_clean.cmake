file(REMOVE_RECURSE
  "CMakeFiles/fig4_baseline.dir/fig4_baseline.cpp.o"
  "CMakeFiles/fig4_baseline.dir/fig4_baseline.cpp.o.d"
  "fig4_baseline"
  "fig4_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
