file(REMOVE_RECURSE
  "CMakeFiles/ext_reconfig.dir/ext_reconfig.cpp.o"
  "CMakeFiles/ext_reconfig.dir/ext_reconfig.cpp.o.d"
  "ext_reconfig"
  "ext_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
