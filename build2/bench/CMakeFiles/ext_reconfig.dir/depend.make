# Empty dependencies file for ext_reconfig.
# This may be replaced when dependencies are built.
