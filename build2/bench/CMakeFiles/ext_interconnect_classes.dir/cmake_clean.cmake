file(REMOVE_RECURSE
  "CMakeFiles/ext_interconnect_classes.dir/ext_interconnect_classes.cpp.o"
  "CMakeFiles/ext_interconnect_classes.dir/ext_interconnect_classes.cpp.o.d"
  "ext_interconnect_classes"
  "ext_interconnect_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_interconnect_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
