# Empty dependencies file for ext_interconnect_classes.
# This may be replaced when dependencies are built.
