file(REMOVE_RECURSE
  "CMakeFiles/micro_bus.dir/micro_bus.cpp.o"
  "CMakeFiles/micro_bus.dir/micro_bus.cpp.o.d"
  "micro_bus"
  "micro_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
