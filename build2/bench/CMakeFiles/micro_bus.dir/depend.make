# Empty dependencies file for micro_bus.
# This may be replaced when dependencies are built.
