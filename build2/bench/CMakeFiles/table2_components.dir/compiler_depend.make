# Empty compiler generated dependencies file for table2_components.
# This may be replaced when dependencies are built.
