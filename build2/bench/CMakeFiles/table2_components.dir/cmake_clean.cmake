file(REMOVE_RECURSE
  "CMakeFiles/table2_components.dir/table2_components.cpp.o"
  "CMakeFiles/table2_components.dir/table2_components.cpp.o.d"
  "table2_components"
  "table2_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
