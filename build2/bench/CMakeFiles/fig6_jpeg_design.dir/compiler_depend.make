# Empty compiler generated dependencies file for fig6_jpeg_design.
# This may be replaced when dependencies are built.
