file(REMOVE_RECURSE
  "CMakeFiles/fig6_jpeg_design.dir/fig6_jpeg_design.cpp.o"
  "CMakeFiles/fig6_jpeg_design.dir/fig6_jpeg_design.cpp.o.d"
  "fig6_jpeg_design"
  "fig6_jpeg_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_jpeg_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
