# Empty dependencies file for table3_fig7_speedup.
# This may be replaced when dependencies are built.
