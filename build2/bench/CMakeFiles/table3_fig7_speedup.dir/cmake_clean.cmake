file(REMOVE_RECURSE
  "CMakeFiles/table3_fig7_speedup.dir/table3_fig7_speedup.cpp.o"
  "CMakeFiles/table3_fig7_speedup.dir/table3_fig7_speedup.cpp.o.d"
  "table3_fig7_speedup"
  "table3_fig7_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fig7_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
