# Empty compiler generated dependencies file for micro_noc.
# This may be replaced when dependencies are built.
