file(REMOVE_RECURSE
  "CMakeFiles/micro_noc.dir/micro_noc.cpp.o"
  "CMakeFiles/micro_noc.dir/micro_noc.cpp.o.d"
  "micro_noc"
  "micro_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
