# Empty dependencies file for hybridic_cli.
# This may be replaced when dependencies are built.
