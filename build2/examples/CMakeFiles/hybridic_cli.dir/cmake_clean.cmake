file(REMOVE_RECURSE
  "CMakeFiles/hybridic_cli.dir/hybridic_cli.cpp.o"
  "CMakeFiles/hybridic_cli.dir/hybridic_cli.cpp.o.d"
  "hybridic_cli"
  "hybridic_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridic_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
