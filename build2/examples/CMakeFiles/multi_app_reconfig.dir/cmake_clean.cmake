file(REMOVE_RECURSE
  "CMakeFiles/multi_app_reconfig.dir/multi_app_reconfig.cpp.o"
  "CMakeFiles/multi_app_reconfig.dir/multi_app_reconfig.cpp.o.d"
  "multi_app_reconfig"
  "multi_app_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_app_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
