# Empty compiler generated dependencies file for multi_app_reconfig.
# This may be replaced when dependencies are built.
