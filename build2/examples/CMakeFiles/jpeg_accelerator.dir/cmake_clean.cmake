file(REMOVE_RECURSE
  "CMakeFiles/jpeg_accelerator.dir/jpeg_accelerator.cpp.o"
  "CMakeFiles/jpeg_accelerator.dir/jpeg_accelerator.cpp.o.d"
  "jpeg_accelerator"
  "jpeg_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpeg_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
