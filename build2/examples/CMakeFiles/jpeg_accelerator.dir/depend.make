# Empty dependencies file for jpeg_accelerator.
# This may be replaced when dependencies are built.
