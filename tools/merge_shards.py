#!/usr/bin/env python3
"""Merge sharded dse_campaign CSVs back into the unsharded byte stream.

A sharded campaign (``dse_campaign --shard i/N``) evaluates the indices
where ``index % N == i`` and writes ``<name>.shardIofN.csv``; every row
keeps its global index, and every cell is a pure function of
(campaign_seed, index), so reassembling the shards in index order
reproduces the unsharded CSV exactly — with two exceptions that are
defined as serial first-seen passes over the *whole* campaign and must
therefore be recomputed here:

  * ``congruent``      — an earlier row shares this row's congruence_key
  * ``profile_reused`` — an earlier row shares this row's profile_key

Both are recomputed in merged index order, which is precisely what the
unsharded binary does, so the output is byte-identical (CI ``cmp``s it).

Usage:
    tools/merge_shards.py -o merged.csv shard0.csv shard1.csv ...

Exit codes: 0 merged, 2 usage, 3 inconsistent shards (mismatched
headers, duplicate or missing indices).
"""

import argparse
import sys


def fail(code, message):
    print("merge_shards: " + message, file=sys.stderr)
    sys.exit(code)


def parse_shard(path):
    try:
        with open(path, "r", newline="") as handle:
            text = handle.read()
    except OSError as err:
        fail(3, "cannot read {}: {}".format(path, err))
    lines = text.split("\n")
    if not lines or not lines[0]:
        fail(3, path + ": empty file")
    # The campaign CSV never quotes cells (commas are sanitised away), so
    # a plain split is an exact inverse of the writer.
    #
    # A header-only shard (with or without a trailing newline) is legal:
    # a drained or narrow shard of a small campaign may own zero indices,
    # and its header still participates in the consistency check.
    header = lines[0]
    rows = [line.split(",") for line in lines[1:] if line]
    return header, rows


def column(header, name):
    cells = header.split(",")
    try:
        return cells.index(name)
    except ValueError:
        fail(3, "column '{}' missing from header".format(name))


# The columns that only appear in a multi-board campaign CSV (the most
# common source of a header mismatch: merging shards from a single-board
# campaign with shards from a --boards>1 campaign).
MULTI_BOARD_COLUMNS = frozenset([
    "boards", "board_topology", "cut_bytes", "multi_total_s",
    "inter_board_bytes", "board_reroutes", "board-byte-conservation",
])


def diagnose_header_mismatch(first_path, first_header, path, shard_header):
    first_cols = set(first_header.split(","))
    shard_cols = set(shard_header.split(","))
    only_first = sorted(first_cols - shard_cols)
    only_shard = sorted(shard_cols - first_cols)
    parts = ["{}: header differs from first shard ({})".format(
        path, first_path)]
    if only_first:
        parts.append("columns only in {}: {}".format(
            first_path, ",".join(only_first)))
    if only_shard:
        parts.append("columns only in {}: {}".format(
            path, ",".join(only_shard)))
    if not only_first and not only_shard:
        parts.append("same columns in a different order")
    diff = set(only_first) | set(only_shard)
    if diff and diff <= MULTI_BOARD_COLUMNS:
        parts.append("this mixes single-board and multi-board campaign "
                     "CSVs; rerun the shards with identical "
                     "--boards/--board-topology flags")
    return "; ".join(parts)


def main():
    parser = argparse.ArgumentParser(
        description="Merge dse_campaign shard CSVs into the unsharded CSV."
    )
    parser.add_argument("shards", nargs="+", help="shard CSV files")
    parser.add_argument("-o", "--output", required=True,
                        help="merged CSV path")
    args = parser.parse_args()
    if len(args.shards) < 1:
        fail(2, "need at least one shard CSV")

    header = None
    first_path = None
    rows = []
    for path in args.shards:
        shard_header, shard_rows = parse_shard(path)
        if header is None:
            header = shard_header
            first_path = path
        elif shard_header != header:
            fail(3, diagnose_header_mismatch(
                first_path, header, path, shard_header))
        rows.extend(shard_rows)

    idx_col = column(header, "index")
    ckey_col = column(header, "congruence_key")
    congruent_col = column(header, "congruent")
    pkey_col = column(header, "profile_key")
    reused_col = column(header, "profile_reused")

    try:
        rows.sort(key=lambda row: int(row[idx_col]))
    except (ValueError, IndexError):
        fail(3, "malformed index cell in a shard row")
    seen = set()
    for row in rows:
        index = int(row[idx_col])
        if index in seen:
            fail(3, "duplicate index {} across shards".format(index))
        seen.add(index)
    if seen != set(range(len(rows))):
        missing = sorted(set(range(len(rows))) - seen)[:5]
        fail(3, "shards do not cover a contiguous index range "
                "(first missing: {})".format(missing))

    # Recompute the two global first-seen flags in merged index order.
    seen_ckeys = set()
    seen_pkeys = set()
    for row in rows:
        ckey = row[ckey_col]
        if ckey != "-":
            row[congruent_col] = "1" if ckey in seen_ckeys else "0"
            seen_ckeys.add(ckey)
        pkey = row[pkey_col]
        row[reused_col] = "1" if pkey in seen_pkeys else "0"
        seen_pkeys.add(pkey)

    out = header + "\n"
    out += "".join(",".join(row) + "\n" for row in rows)
    with open(args.output, "w", newline="") as handle:
        handle.write(out)
    print("merged {} shards, {} rows -> {}".format(
        len(args.shards), len(rows), args.output))
    return 0


if __name__ == "__main__":
    sys.exit(main())
