#!/usr/bin/env python3
"""Check that an auto-tier DSE campaign agrees with the cycle-tier run.

Usage: check_tier_equivalence.py AUTO_CSV CYCLE_CSV

Both files are `dse_campaign` CSVs over the same (seed, count) sweep, one
produced with --tier=auto and one with --tier=cycle. The tier contract
(docs/MODEL.md §14) requires:

  * every row the auto run escalated (tier == "cycle") is byte-identical
    to the cycle run's row for the same index on every column except
    `escalation` (auto says why it climbed, cycle says "requested") —
    escalated rows re-use the same job keys, so timings, oracle verdicts,
    congruence keys and error notes must all match exactly;
  * oracle verdicts on the sim-free oracles (byte-conservation,
    mapping-legality) match on every row, escalated or not — the analytic
    tier runs them too, so auto mode may never flip them;
  * no simulated row in either file violates its analytic band.

Exits 0 when the contract holds, 1 with a per-row diagnosis otherwise.
"""

import csv
import sys

SIM_FREE_ORACLES = ("byte-conservation", "mapping-legality")


def load(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return {row["index"]: row for row in rows}


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    auto = load(sys.argv[1])
    cycle = load(sys.argv[2])
    if auto.keys() != cycle.keys():
        print("tier-equivalence: row index sets differ "
              f"({len(auto)} auto vs {len(cycle)} cycle rows)")
        return 1

    failures = 0
    escalated = 0
    for index, auto_row in auto.items():
        cycle_row = cycle[index]
        if cycle_row["tier"] != "cycle":
            print(f"tier-equivalence: index {index}: cycle run has "
                  f"tier={cycle_row['tier']!r}, expected 'cycle'")
            failures += 1
            continue
        for oracle in SIM_FREE_ORACLES:
            if oracle in auto_row and auto_row[oracle] != cycle_row[oracle]:
                print(f"tier-equivalence: index {index}: sim-free oracle "
                      f"{oracle} flipped ({auto_row[oracle]!r} auto vs "
                      f"{cycle_row[oracle]!r} cycle)")
                failures += 1
        for row, label in ((auto_row, "auto"), (cycle_row, "cycle")):
            if row.get("band_violation") == "1":
                print(f"tier-equivalence: index {index}: band violation "
                      f"in the {label} run")
                failures += 1
        if auto_row["tier"] != "cycle":
            continue  # Analytic row: nothing more to compare.
        escalated += 1
        for column, value in auto_row.items():
            if column == "escalation":
                continue
            if value != cycle_row[column]:
                print(f"tier-equivalence: index {index}: escalated row "
                      f"differs in {column!r}: {value!r} auto vs "
                      f"{cycle_row[column]!r} cycle")
                failures += 1

    if failures:
        print(f"tier-equivalence: FAILED ({failures} mismatches, "
              f"{escalated} escalated rows checked)")
        return 1
    print(f"tier-equivalence: OK ({len(auto)} rows, {escalated} escalated "
          "rows match the cycle run exactly)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
