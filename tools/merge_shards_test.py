#!/usr/bin/env python3
"""Tests for tools/merge_shards.py.

Drives the script as a subprocess (the same way CI does) and checks:

  * two consistent shards merge into the expected byte stream, with the
    global first-seen flags (congruent, profile_reused) recomputed in
    merged index order;
  * shards with different headers fail with exit 3 and a message that
    names the differing columns;
  * a single-board shard mixed with a multi-board shard is called out
    explicitly as a single-/multi-board schema mix;
  * header-only shards (a shard owning zero indices, e.g. after a drain)
    merge cleanly, with or without a trailing newline, including the
    degenerate all-shards-empty case.

Run from anywhere: python3 tools/merge_shards_test.py
"""

import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "merge_shards.py")

HEADER = "index,congruence_key,congruent,profile_key,profile_reused,total_s"
MULTI_HEADER = HEADER + ",boards,board_topology,cut_bytes"


def write(path, text):
    with open(path, "w", newline="") as handle:
        handle.write(text)


def run_merge(out_path, shards):
    return subprocess.run(
        [sys.executable, SCRIPT, "-o", out_path] + shards,
        capture_output=True, text=True)


def check(condition, message):
    if not condition:
        print("FAIL: " + message, file=sys.stderr)
        sys.exit(1)


def test_merge_success(tmp):
    shard0 = os.path.join(tmp, "shard0of2.csv")
    shard1 = os.path.join(tmp, "shard1of2.csv")
    # Shard-local first-seen flags are wrong on purpose: index 2 reuses
    # index 1's keys but shard0 saw them first in its own stream.
    write(shard0, HEADER + "\n"
          "0,ck0,0,pk0,0,1.0\n"
          "2,ck1,0,pk1,0,3.0\n")
    write(shard1, HEADER + "\n"
          "1,ck1,0,pk1,0,2.0\n"
          "3,-,0,pk0,0,4.0\n")
    merged = os.path.join(tmp, "merged.csv")
    proc = run_merge(merged, [shard0, shard1])
    check(proc.returncode == 0,
          "merge exit {} != 0: {}".format(proc.returncode, proc.stderr))
    with open(merged, "r", newline="") as handle:
        got = handle.read()
    want = (HEADER + "\n"
            "0,ck0,0,pk0,0,1.0\n"
            "1,ck1,0,pk1,0,2.0\n"
            "2,ck1,1,pk1,1,3.0\n"
            "3,-,0,pk0,1,4.0\n")
    check(got == want, "merged CSV mismatch:\n{}\nwant:\n{}".format(got, want))
    print("ok merge_success")


def test_header_mismatch_names_columns(tmp):
    shard0 = os.path.join(tmp, "a.csv")
    shard1 = os.path.join(tmp, "b.csv")
    write(shard0, HEADER + ",extra_a\n0,ck0,0,pk0,0,1.0,x\n")
    write(shard1, HEADER + ",extra_b\n1,ck1,0,pk1,0,2.0,y\n")
    proc = run_merge(os.path.join(tmp, "out.csv"), [shard0, shard1])
    check(proc.returncode == 3,
          "mismatch exit {} != 3".format(proc.returncode))
    check("header differs from first shard" in proc.stderr,
          "missing mismatch message: " + proc.stderr)
    check("extra_a" in proc.stderr and "extra_b" in proc.stderr,
          "differing columns not named: " + proc.stderr)
    check("single-board and multi-board" not in proc.stderr,
          "unrelated mismatch mislabelled as board mix: " + proc.stderr)
    print("ok header_mismatch_names_columns")


def test_single_multi_board_mix(tmp):
    shard0 = os.path.join(tmp, "single.csv")
    shard1 = os.path.join(tmp, "multi.csv")
    write(shard0, HEADER + "\n0,ck0,0,pk0,0,1.0\n")
    write(shard1, MULTI_HEADER + "\n1,ck1,0,pk1,0,2.0,2,chain,64\n")
    proc = run_merge(os.path.join(tmp, "out.csv"), [shard0, shard1])
    check(proc.returncode == 3,
          "board-mix exit {} != 3".format(proc.returncode))
    check("single-board and multi-board" in proc.stderr,
          "board mix not called out: " + proc.stderr)
    check("boards" in proc.stderr and "board_topology" in proc.stderr,
          "board columns not named: " + proc.stderr)
    print("ok single_multi_board_mix")


def test_header_only_shard(tmp):
    shard0 = os.path.join(tmp, "full.csv")
    shard1 = os.path.join(tmp, "empty_nl.csv")
    shard2 = os.path.join(tmp, "empty_bare.csv")
    write(shard0, HEADER + "\n0,ck0,0,pk0,0,1.0\n1,ck0,0,pk0,0,2.0\n")
    write(shard1, HEADER + "\n")   # Header only, trailing newline.
    write(shard2, HEADER)          # Header only, no trailing newline.
    merged = os.path.join(tmp, "merged_empty.csv")
    proc = run_merge(merged, [shard0, shard1, shard2])
    check(proc.returncode == 0,
          "header-only exit {} != 0: {}".format(proc.returncode,
                                                proc.stderr))
    with open(merged, "r", newline="") as handle:
        got = handle.read()
    want = HEADER + "\n0,ck0,0,pk0,0,1.0\n1,ck0,1,pk0,1,2.0\n"
    check(got == want,
          "header-only merge mismatch:\n{}\nwant:\n{}".format(got, want))
    print("ok header_only_shard")


def test_all_shards_empty(tmp):
    shard0 = os.path.join(tmp, "e0.csv")
    shard1 = os.path.join(tmp, "e1.csv")
    write(shard0, HEADER + "\n")
    write(shard1, HEADER)
    merged = os.path.join(tmp, "merged_all_empty.csv")
    proc = run_merge(merged, [shard0, shard1])
    check(proc.returncode == 0,
          "all-empty exit {} != 0: {}".format(proc.returncode, proc.stderr))
    with open(merged, "r", newline="") as handle:
        got = handle.read()
    check(got == HEADER + "\n",
          "all-empty merge should be the bare header, got:\n" + got)
    print("ok all_shards_empty")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        test_merge_success(tmp)
        test_header_mismatch_names_columns(tmp)
        test_single_multi_board_mix(tmp)
        test_header_only_shard(tmp)
        test_all_shards_empty(tmp)
    print("merge_shards_test: all tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
