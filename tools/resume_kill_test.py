#!/usr/bin/env python3
"""Crash-safety harness for dse_campaign's journal/resume machinery.

Drives the real binary the way an operator (or a crashing machine) would
and asserts the PR 9 contract:

  * SIGKILL mid-run, then ``--resume`` at a different thread count,
    reproduces the uninterrupted campaign CSV byte for byte;
  * SIGTERM drains cleanly (exit 6) and the drained journal resumes to
    the same byte-identical CSV;
  * a deliberately wedged job (HYBRIDIC_WEDGE_INDEX) is quarantined
    (exit 7) with a ``quarantined`` CSV row and a pinned JSON reproducer,
    while every other design completes; resuming the wedged journal
    reproduces the same CSV.

Usage: python3 tools/resume_kill_test.py /path/to/dse_campaign
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

# --search rides along so the byte-identity checks also cover the
# searched_* columns (a SIGKILL mid-search must restore the annealer's
# incumbent record from the journal, never re-derive it).
SWEEP = ["--smoke", "--count", "48", "--seed", "7", "--tier", "cycle",
         "--search", "anneal", "--search-restarts", "2",
         "--search-iterations", "12"]


def check(condition, message):
    if not condition:
        print("FAIL: " + message, file=sys.stderr)
        sys.exit(1)


def run(binary, cwd, extra, env=None, timeout=600):
    merged_env = dict(os.environ)
    if env:
        merged_env.update(env)
    return subprocess.run(
        [binary] + SWEEP + extra, cwd=cwd, env=merged_env,
        capture_output=True, text=True, timeout=timeout)


def read_csv(cwd):
    with open(os.path.join(cwd, "bench_results", "dse_smoke.csv"),
              "r", newline="") as handle:
        return handle.read()


def journal_lines(path):
    try:
        with open(path, "rb") as handle:
            return handle.read().count(b"\n")
    except OSError:
        return 0


def start_and_signal(binary, cwd, journal, min_lines, sig):
    """Start a journaled run, wait for >= min_lines checkpoints, signal."""
    proc = subprocess.Popen(
        [binary] + SWEEP + ["--threads", "2", "--journal", journal],
        cwd=cwd, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 300
    while journal_lines(journal) < min_lines:
        if proc.poll() is not None:
            print("note: campaign finished before the signal landed; the "
                  "resume still runs but exercised no mid-run recovery",
                  file=sys.stderr)
            return proc.wait()
        check(time.monotonic() < deadline,
              "journal never reached {} lines".format(min_lines))
        time.sleep(0.05)
    proc.send_signal(sig)
    return proc.wait()


def test_sigkill_resume(binary, tmp, reference):
    cwd = os.path.join(tmp, "sigkill")
    os.mkdir(cwd)
    journal = os.path.join(cwd, "run.journal")
    code = start_and_signal(binary, cwd, journal, 2, signal.SIGKILL)
    if code == -signal.SIGKILL:
        check(journal_lines(journal) >= 2,
              "killed run left fewer than 2 journal lines")
    resumed = run(binary, cwd,
                  ["--threads", "1", "--journal", journal, "--resume"])
    check(resumed.returncode == 0,
          "resume after SIGKILL exit {}: {}".format(
              resumed.returncode, resumed.stderr))
    check("resumed=" in resumed.stdout, "resume run did not report journal "
          "stats: " + resumed.stdout)
    check(read_csv(cwd) == reference,
          "CSV after SIGKILL+resume differs from the uninterrupted run")
    print("ok sigkill_resume")


def test_sigterm_drain_resume(binary, tmp, reference):
    cwd = os.path.join(tmp, "sigterm")
    os.mkdir(cwd)
    journal = os.path.join(cwd, "run.journal")
    code = start_and_signal(binary, cwd, journal, 1, signal.SIGTERM)
    if code != 0:
        check(code == 6, "drained run exit {} != 6".format(code))
    resumed = run(binary, cwd,
                  ["--threads", "3", "--journal", journal, "--resume"])
    check(resumed.returncode == 0,
          "resume after drain exit {}: {}".format(
              resumed.returncode, resumed.stderr))
    check(read_csv(cwd) == reference,
          "CSV after SIGTERM drain+resume differs from the uninterrupted "
          "run")
    print("ok sigterm_drain_resume")


def test_wedged_quarantine(binary, tmp):
    cwd = os.path.join(tmp, "wedge")
    os.mkdir(cwd)
    journal = os.path.join(cwd, "wedge.journal")
    env = {"HYBRIDIC_WEDGE_INDEX": "23"}
    wedged = run(binary, cwd,
                 ["--threads", "2", "--journal", journal,
                  "--job-timeout", "2"], env=env)
    check(wedged.returncode == 7,
          "wedged run exit {} != 7: {}".format(
              wedged.returncode, wedged.stderr))
    csv = read_csv(cwd)
    quarantined = [line for line in csv.splitlines()
                   if "quarantined: wall-clock watchdog" in line]
    check(len(quarantined) == 1,
          "expected exactly 1 quarantined row, got {}".format(
              len(quarantined)))
    check(quarantined[0].startswith("23,"),
          "quarantined row is not design 23: " + quarantined[0])
    repro_dir = os.path.join(cwd, "bench_results", "dse_reproducers")
    repros = [name for name in os.listdir(repro_dir)
              if name.startswith("quarantine-timeout-")]
    check(len(repros) == 1,
          "expected one quarantine-timeout reproducer, got {}".format(
              repros))
    # The other 47 designs completed: only the wedged row lacks verdicts.
    rows = csv.splitlines()[1:]
    check(len(rows) == 48, "expected 48 rows, got {}".format(len(rows)))

    # Resuming the wedged journal (wedge still armed) reproduces the CSV:
    # the quarantined row is restored, not re-run, so the resume is fast
    # and byte-identical. --job-timeout must match: the watchdog budget is
    # part of the campaign fingerprint (it shapes the quarantine rows), so
    # a resume under a different budget deliberately ignores the journal.
    resumed = run(binary, cwd,
                  ["--threads", "1", "--journal", journal, "--resume",
                   "--job-timeout", "2"],
                  env=env)
    check(resumed.returncode == 7,
          "resumed wedged run exit {} != 7".format(resumed.returncode))
    check(read_csv(cwd) == csv,
          "CSV after resuming the wedged journal differs")
    print("ok wedged_quarantine")


def main():
    if len(sys.argv) != 2:
        print("usage: resume_kill_test.py /path/to/dse_campaign",
              file=sys.stderr)
        return 2
    binary = os.path.abspath(sys.argv[1])
    with tempfile.TemporaryDirectory() as tmp:
        ref_cwd = os.path.join(tmp, "reference")
        os.mkdir(ref_cwd)
        ref = run(binary, ref_cwd, ["--threads", "2"])
        check(ref.returncode == 0,
              "reference run exit {}: {}".format(ref.returncode, ref.stderr))
        reference = read_csv(ref_cwd)

        test_sigkill_resume(binary, tmp, reference)
        test_sigterm_drain_resume(binary, tmp, reference)
        test_wedged_quarantine(binary, tmp)
    print("resume_kill_test: all tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
