#!/usr/bin/env python3
"""Round-trip smoke for the hybridic_serve JSON-lines front end.

Starts the server, walks one request through every branch of the error
taxonomy — served, usage, config, timeout (quarantined) — checks the
stats counters, checks determinism (the same request twice yields the
same bytes), and verifies the orderly EOF shutdown (exit 0).

Usage: python3 tools/serve_smoke.py /path/to/hybridic_serve
"""

import json
import os
import subprocess
import sys


def check(condition, message):
    if not condition:
        print("FAIL: " + message, file=sys.stderr)
        sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print("usage: serve_smoke.py /path/to/hybridic_serve",
              file=sys.stderr)
        return 2
    binary = os.path.abspath(sys.argv[1])

    requests = [
        {"id": "ok-1", "seed": 5, "kernels": 4},
        {"id": "ok-1-again", "seed": 5, "kernels": 4},
        {"id": "bad-key", "seed": 5, "bogus": 1},
        {"id": "bad-config", "kernels": 0},
        {"id": "wedged", "kernels": 8, "tier": "cycle",
         "timeout_s": 0.0001},
        {"id": "stats", "op": "stats"},
    ]
    stdin = "".join(json.dumps(r) + "\n" for r in requests)
    proc = subprocess.run([binary], input=stdin, capture_output=True,
                          text=True, timeout=600)
    check(proc.returncode == 0,
          "serve exit {} != 0 on EOF: {}".format(proc.returncode,
                                                 proc.stderr))
    lines = proc.stdout.splitlines()
    check(len(lines) == len(requests),
          "expected {} responses, got {}".format(len(requests), len(lines)))
    replies = [json.loads(line) for line in lines]

    ok = replies[0]
    check(ok["id"] == "ok-1" and ok["ok"] is True,
          "design request failed: " + lines[0])
    check("analytic_designed_s" in ok and "solution" in ok,
          "design response missing fields: " + lines[0])

    # Determinism: identical config, identical numbers (only the echoed
    # id differs).
    again = dict(replies[1])
    check(again.pop("id") == "ok-1-again", "bad echo on second request")
    first = dict(replies[0])
    first.pop("id")
    check(first == again, "same request produced different responses:\n"
          + lines[0] + "\n" + lines[1])

    usage = replies[2]
    check(usage["ok"] is False and usage["error"] == "usage"
          and usage["exit_code"] == 2,
          "unknown key not a usage error: " + lines[2])

    config = replies[3]
    check(config["ok"] is False and config["error"] == "config"
          and config["exit_code"] == 3,
          "kernels=0 not a config error: " + lines[3])

    wedged = replies[4]
    check(wedged["ok"] is False and wedged["error"] == "timeout"
          and wedged["exit_code"] == 4,
          "expired watchdog not a timeout error: " + lines[4])
    check("watchdog" in wedged["message"],
          "timeout message does not name the watchdog: " + lines[4])

    stats = replies[5]
    check(stats["ok"] is True and stats["requests"] == 6
          and stats["served"] == 3 and stats["failed"] == 2
          and stats["quarantined"] == 1,
          "counter mismatch: " + lines[5])

    check("eof shutdown" in proc.stderr,
          "missing shutdown summary on stderr: " + proc.stderr)
    print("serve_smoke: all tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
